//! Regression tests pinning the nested try-lock result contract introduced
//! by the PR 1 API redesign (documented in CHANGES.md, asserted nowhere
//! until now):
//!
//! * `None`             — the *outer* lock was busy (nothing ran);
//! * `Some(None)`       — the outer lock was acquired, the *inner* was busy;
//! * `Some(Some(r))`    — both acquired, `r` is the inner thunk's result.
//!
//! The three cases must stay distinguishable in both lock modes: an outer
//! busy signal collapsing into an inner one (or vice versa) silently breaks
//! every caller that backs off differently per level (hand-over-hand
//! traversals retry the whole descent on `None` but only the inner step on
//! `Some(None)`).

use flock::core::{Lock, LockMode, set_lock_mode};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Park a holder inside `lock`'s critical section (the stall hits only the
/// owning thread, so lock-free helpers can still complete the thunk).
/// Returns the holder's join handle; `entered` is waited before returning,
/// so the lock is observably held.
fn park_holder_on(lock: &Arc<Lock>) -> std::thread::JoinHandle<()> {
    let entered = Arc::new(Barrier::new(2));
    let (l, e) = (Arc::clone(lock), Arc::clone(&entered));
    let holder = std::thread::spawn(move || {
        let me = std::thread::current().id();
        let e2 = Arc::clone(&e);
        l.try_lock(move || {
            if std::thread::current().id() == me {
                e2.wait();
                std::thread::park_timeout(Duration::from_secs(120));
            }
        });
    });
    entered.wait();
    holder
}

fn both_modes(test: impl Fn()) {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in [LockMode::LockFree, LockMode::Blocking] {
        set_lock_mode(mode);
        test();
    }
    set_lock_mode(LockMode::LockFree);
}

#[test]
fn both_free_yields_some_some() {
    both_modes(|| {
        let outer = Arc::new(Lock::new());
        let inner = Arc::new(Lock::new());
        let i2 = Arc::clone(&inner);
        assert_eq!(
            outer.try_lock(move || i2.try_lock(|| 7u32)),
            Some(Some(7)),
            "both locks free: the inner result must come through both layers"
        );
        assert!(!outer.is_locked());
        assert!(!inner.is_locked());
    });
}

#[test]
fn inner_busy_yields_some_none() {
    both_modes(|| {
        let outer = Arc::new(Lock::new());
        let inner = Arc::new(Lock::new());
        let holder = park_holder_on(&inner);

        // Outer is free, inner is held by the parked thread: the outer
        // acquisition must succeed and report the inner as busy —
        // `Some(None)`, never `None` (which would claim the *outer* was
        // busy) and never `Some(Some(_))`.
        let i2 = Arc::clone(&inner);
        let r = outer.try_lock(move || i2.try_lock(|| true));
        assert_eq!(
            r,
            Some(None),
            "inner-busy must surface as Some(None): outer acquired, inner busy"
        );
        assert!(
            !outer.is_locked(),
            "outer must be released after its thunk completes"
        );

        holder.thread().unpark();
        let _ = holder.join();
    });
}

#[test]
fn outer_busy_yields_none() {
    both_modes(|| {
        let outer = Arc::new(Lock::new());
        let inner = Arc::new(Lock::new());
        let holder = park_holder_on(&outer);

        // Outer is held: the nested attempt must report `None` — the inner
        // thunk must not run at all.
        let ran_inner = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (i2, ran2) = (Arc::clone(&inner), Arc::clone(&ran_inner));
        let r = outer.try_lock(move || {
            let ran3 = Arc::clone(&ran2);
            i2.try_lock(move || ran3.store(true, std::sync::atomic::Ordering::SeqCst))
        });
        assert_eq!(r, None, "outer-busy must surface as the outer None");
        assert!(
            !ran_inner.load(std::sync::atomic::Ordering::SeqCst),
            "inner thunk must not run when the outer lock was busy"
        );

        holder.thread().unpark();
        let _ = holder.join();
    });
}
