//! Integration tests of the paper's core semantic claims, exercised through
//! the public API:
//!
//! * a stalled lock holder cannot block the system (lock-freedom through
//!   helping);
//! * helped thunks apply exactly once (idempotence), including their
//!   allocations and retires;
//! * thunk results are typed, replay-deterministic, and distinct from the
//!   lock-busy signal;
//! * nested locks compose (atomic multi-structure moves);
//! * early unlock (hand-over-hand) works.

use flock::core::{Lock, LockMode, Locked, Mutable, set_lock_mode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

static MODE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn system_progresses_past_stalled_holders_repeatedly() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    // Several rounds: each round parks a fresh holder inside its critical
    // section and requires another thread to get through.
    for round in 0..5u32 {
        let lock = Arc::new(Lock::new());
        let value = Arc::new(Mutable::new(round));
        let entered = Arc::new(Barrier::new(2));

        let (l, v, e) = (Arc::clone(&lock), Arc::clone(&value), Arc::clone(&entered));
        let holder = std::thread::spawn(move || {
            let me = std::thread::current().id();
            let (v2, e2) = (Arc::clone(&v), Arc::clone(&e));
            l.try_lock(move || {
                v2.store(v2.load() + 1);
                if std::thread::current().id() == me {
                    e2.wait();
                    std::thread::park_timeout(Duration::from_secs(120));
                }
            })
        });
        entered.wait();

        let deadline = Instant::now() + Duration::from_secs(20);
        let mut acquired = false;
        while Instant::now() < deadline {
            let v2 = Arc::clone(&value);
            if lock.try_lock(move || v2.store(v2.load() + 100)).is_some() {
                acquired = true;
                break;
            }
        }
        assert!(acquired, "round {round}: no progress past stalled holder");
        assert_eq!(value.load(), round + 101, "round {round}: effects exact");
        holder.thread().unpark();
        let _ = holder.join();
    }
}

/// The headline API property of the redesign: a helped owner still gets its
/// thunk's typed result back. The owner's thunk computes a value derived
/// from logged loads; even when a helper completed the section first, the
/// owner's replay returns the identical value.
#[test]
fn helped_owner_recovers_typed_result() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    let lock = Arc::new(Lock::new());
    let value = Arc::new(Mutable::new(7u32));
    let entered = Arc::new(Barrier::new(2));

    let (l, v, e) = (Arc::clone(&lock), Arc::clone(&value), Arc::clone(&entered));
    let holder = std::thread::spawn(move || {
        let me = std::thread::current().id();
        let (v2, e2) = (Arc::clone(&v), Arc::clone(&e));
        l.try_lock(move || {
            let before = v2.load();
            v2.store(before + 1);
            if std::thread::current().id() == me {
                e2.wait();
                std::thread::park_timeout(Duration::from_secs(120));
            }
            before * 10 // typed result, derived from a logged load
        })
    });
    entered.wait();

    // Help the parked holder through, then take the lock ourselves.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut ours = None;
    while Instant::now() < deadline {
        let v2 = Arc::clone(&value);
        ours = lock.try_lock(move || v2.load());
        if ours.is_some() {
            break;
        }
    }
    assert_eq!(
        ours,
        Some(8),
        "helper observed the holder's committed store"
    );
    holder.thread().unpark();
    // The stalled owner replays its own thunk: same logged loads, same
    // result — even though a helper ran the section to completion first.
    assert_eq!(holder.join().unwrap(), Some(70));
}

#[test]
fn helped_allocation_is_not_leaked_or_doubled() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    let lock = Arc::new(Lock::new());
    let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
    let stop = Arc::new(AtomicBool::new(false));

    // Writers continuously replace the slot's allocation under the lock;
    // every replaced node is retired exactly once. With helping, thunks are
    // frequently replayed by other threads.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let (lock, slot, stop) = (Arc::clone(&lock), Arc::clone(&slot), Arc::clone(&stop));
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let slot2 = Arc::clone(&slot);
                    let val = t * 1_000_000 + i;
                    let _ = lock.try_lock(move || {
                        let old = slot2.load();
                        let fresh = flock::core::alloc(move || val);
                        slot2.store(fresh);
                        if !old.is_null() {
                            // SAFETY: unlinked by the store, under the lock.
                            unsafe { flock::core::retire(old) };
                        }
                    });
                    i += 1;
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::SeqCst);
    });

    // The final linked node must be intact (failed double-retire would have
    // freed it; debug builds would also catch a double retire directly).
    let last = slot.load();
    assert!(!last.is_null());
    // SAFETY: still linked, never retired.
    let v = unsafe { *last };
    assert!(v < 4_000_000);
    let _pin = flock::core::pin();
    // SAFETY: unlinking it here; single retire.
    unsafe { flock::core::retire(last) };
}

#[test]
fn atomic_move_between_two_structures() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    // Move items between two Flock hash tables atomically via nested locks
    // protecting a shared "transfer" critical section. The invariant: a key
    // is in exactly one of the two tables at every moment.
    let a: Arc<flock::ds::hashtable::HashTable<u64, u64>> =
        Arc::new(flock::ds::hashtable::HashTable::with_capacity(64));
    let b: Arc<flock::ds::hashtable::HashTable<u64, u64>> =
        Arc::new(flock::ds::hashtable::HashTable::with_capacity(64));
    let transfer_locks: Arc<Vec<Lock>> = Arc::new((0..16).map(|_| Lock::new()).collect());
    for k in 0..16u64 {
        a.insert(k, k);
    }

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let (a, b, locks) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&transfer_locks));
            s.spawn(move || {
                let mut state = t + 1;
                for _ in 0..2_000 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let k = state % 16;
                    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                    // Direction depends on where the key currently is;
                    // decided inside the critical section.
                    let _ = locks[k as usize].try_lock(move || {
                        if let Some(v) = a2.get(k) {
                            a2.remove(k);
                            b2.insert(k, v);
                        } else if let Some(v) = b2.get(k) {
                            b2.remove(k);
                            a2.insert(k, v);
                        }
                    });
                }
            });
        }
    });

    // Every key is in exactly one table, with its original value.
    for k in 0..16u64 {
        match (a.get(k), b.get(k)) {
            (Some(v), None) | (None, Some(v)) => assert_eq!(v, k),
            (x, y) => panic!("key {k} in both/neither table: {x:?} {y:?}"),
        }
    }
}

/// The same move scenario through `Locked<T>` cells: a work queue of one
/// slot per key, demonstrating the packaged pattern end to end.
#[test]
fn locked_cells_move_values_atomically() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    struct Pair {
        left: Mutable<u32>,
        right: Mutable<u32>,
    }
    let cell = Arc::new(Locked::new(Pair {
        left: Mutable::new(1_000),
        right: Mutable::new(0),
    }));

    std::thread::scope(|s| {
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            s.spawn(move || {
                let mut moved = 0;
                while moved < 250 {
                    let r = cell.try_with(|p| {
                        let l = p.left.load();
                        if l == 0 {
                            return false;
                        }
                        p.left.store(l - 1);
                        p.right.store(p.right.load() + 1);
                        true
                    });
                    // Some(false) would mean drained; None means busy.
                    if r == Some(true) {
                        moved += 1;
                    }
                }
            });
        }
    });
    assert_eq!(cell.left.load(), 0);
    assert_eq!(cell.right.load(), 1_000);
}

#[test]
fn early_unlock_hand_over_hand() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    let l1 = Arc::new(Lock::new());
    let l2 = Arc::new(Lock::new());
    let log = Arc::new(Mutable::new(0u32));

    let (l1c, l2c, logc) = (Arc::clone(&l1), Arc::clone(&l2), Arc::clone(&log));
    let ok = l1.try_lock(move || {
        logc.store(logc.load() + 1);
        // Couple to the next lock, then release this one early.
        let (l1d, logd) = (Arc::clone(&l1c), Arc::clone(&logc));
        l2c.try_lock(move || {
            l1d.unlock_early();
            logd.store(logd.load() + 10);
            true
        })
    });
    assert_eq!(ok, Some(Some(true)));
    assert!(!l1.is_locked());
    assert!(!l2.is_locked());
    assert_eq!(log.load(), 11);
}

#[test]
fn blocking_mode_excludes_but_does_not_help() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::Blocking);
    let lock = Arc::new(Lock::new());
    let entered = Arc::new(Barrier::new(2));
    let release = Arc::new(Barrier::new(2));

    let (l, e, r) = (
        Arc::clone(&lock),
        Arc::clone(&entered),
        Arc::clone(&release),
    );
    let holder = std::thread::spawn(move || {
        l.try_lock(move || {
            e.wait();
            r.wait();
            true
        })
    });
    entered.wait();
    // While held, try_lock must fail immediately (no helping to steal).
    for _ in 0..100 {
        assert_eq!(lock.try_lock(|| true), None);
    }
    release.wait();
    assert_eq!(holder.join().unwrap(), Some(true));
    assert!(!lock.is_locked());
    set_lock_mode(LockMode::LockFree);
}
