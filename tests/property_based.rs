//! Randomized property tests on the core invariants (self-contained: the
//! container has no third-party crates, so the generator is a seeded
//! splitmix64 sweep rather than proptest — many seeds, deterministic
//! replay by seed):
//!
//! * arbitrary op sequences on every structure match a `BTreeMap` oracle;
//! * packed-word encodings round-trip;
//! * the zipfian generator stays in range;
//! * `Mutable` agrees with a plain variable under arbitrary histories;
//! * structure-specific shape invariants hold after arbitrary histories.

use std::collections::BTreeMap;
use std::sync::Mutex;

use flock::api::Map;
use flock::core::{LockMode, set_lock_mode};
use flock::workload::SplitMix64;

static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Apply a random op sequence to `map` and a `BTreeMap` oracle, asserting
/// identical observable behavior, then sweep the oracle.
fn oracle_case<M: Map<u64, u64>>(map: &M, seed: u64, ops: usize, key_range: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut oracle = BTreeMap::new();
    for i in 0..ops {
        let k = rng.below(key_range);
        // Inline u64 values ride in the 48-bit ValueRepr payload (the
        // documented contract of every packed slot in this workspace);
        // full-range u64 payloads belong in `Indirect` — which the
        // fat-value history test below exercises with all 64 bits.
        let v = rng.next_u64() & ((1u64 << 48) - 1);
        match rng.below(3) {
            0 => {
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, v);
                }
                assert_eq!(map.insert(k, v), expect, "seed {seed} insert({k}) op {i}");
            }
            1 => {
                let expect = oracle.remove(&k).is_some();
                assert_eq!(map.remove(k), expect, "seed {seed} remove({k}) op {i}");
            }
            _ => {
                assert_eq!(
                    map.get(k),
                    oracle.get(&k).copied(),
                    "seed {seed} get({k}) op {i}"
                );
            }
        }
    }
    for (k, v) in &oracle {
        assert_eq!(map.get(*k), Some(*v), "seed {seed} sweep {k}");
    }
}

macro_rules! oracle_prop {
    ($name:ident, $make:expr, $check:expr) => {
        #[test]
        fn $name() {
            let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_lock_mode(LockMode::LockFree);
            for seed in 0..24u64 {
                let m = $make;
                // Vary the history length with the seed, like a shrinking
                // property-test would explore short and long sequences.
                let ops = 40 + (seed as usize * 37) % 260;
                oracle_case(&m, seed, ops, 48);
                #[allow(clippy::redundant_closure_call)]
                ($check)(&m);
            }
        }
    };
}

oracle_prop!(
    dlist_matches_oracle,
    flock::ds::dlist::DList::new(),
    |m: &flock::ds::dlist::DList<u64, u64>| m.check_invariants()
);
oracle_prop!(
    lazylist_matches_oracle,
    flock::ds::lazylist::LazyList::new(),
    |m: &flock::ds::lazylist::LazyList<u64, u64>| m.check_invariants()
);
oracle_prop!(
    hashtable_matches_oracle,
    flock::ds::hashtable::HashTable::with_capacity(16),
    |_m: &flock::ds::hashtable::HashTable<u64, u64>| ()
);
oracle_prop!(
    leaftree_matches_oracle,
    flock::ds::leaftree::LeafTree::new(),
    |m: &flock::ds::leaftree::LeafTree<u64, u64>| m.check_invariants()
);
oracle_prop!(
    leaftreap_matches_oracle,
    flock::ds::leaftreap::LeafTreap::new(),
    |m: &flock::ds::leaftreap::LeafTreap<u64, u64>| m.check_invariants()
);
oracle_prop!(
    abtree_matches_oracle,
    flock::ds::abtree::ABTree::new(),
    |m: &flock::ds::abtree::ABTree<u64, u64>| m.check_invariants()
);
oracle_prop!(
    arttree_matches_oracle,
    flock::ds::arttree::ArtTree::new(),
    |m: &flock::ds::arttree::ArtTree<u64, u64>| m.check_invariants()
);

/// The same randomized histories at a fat, heap-indirected value type: the
/// oracle agreement must be representation-independent.
#[test]
fn fat_value_histories_match_oracle() {
    use flock::api::Indirect;
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    fn fat(v: u64) -> Indirect<[u64; 4]> {
        Indirect([v, !v, v ^ 0xABCD, v.rotate_left(9)])
    }
    fn case<M: Map<u64, Indirect<[u64; 4]>>>(map: &M, seed: u64, ops: usize) {
        let mut rng = SplitMix64::new(seed);
        let mut oracle = BTreeMap::new();
        for i in 0..ops {
            let k = rng.below(48);
            let v = rng.next_u64();
            match rng.below(3) {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    assert_eq!(map.insert(k, fat(v)), expect, "seed {seed} insert op {i}");
                }
                1 => {
                    let expect = oracle.remove(&k).is_some();
                    assert_eq!(map.remove(k), expect, "seed {seed} remove op {i}");
                }
                _ => {
                    assert_eq!(
                        map.get(k),
                        oracle.get(&k).map(|&x| fat(x)),
                        "seed {seed} get op {i}"
                    );
                }
            }
        }
        for (k, v) in &oracle {
            assert_eq!(map.get(*k), Some(fat(*v)), "seed {seed} sweep {k}");
        }
    }
    for seed in 0..8u64 {
        let ops = 60 + (seed as usize * 31) % 200;
        case(&flock::ds::dlist::DList::new(), seed, ops);
        case(
            &flock::ds::hashtable::HashTable::with_capacity(16),
            seed,
            ops,
        );
        case(&flock::ds::leaftreap::LeafTreap::new(), seed, ops);
        case(&flock::baselines::NatarajanBst::new(), seed, ops);
        case(&flock::baselines::BlockingBst::new(), seed, ops);
    }
    flock::epoch::flush_all();
}

#[test]
fn baselines_match_oracle() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    for seed in 0..16u64 {
        let ops = 40 + (seed as usize * 29) % 160;
        oracle_case(&flock::baselines::HarrisList::new(), seed, ops, 48);
        oracle_case(&flock::baselines::HarrisList::new_opt(), seed, ops, 48);
        oracle_case(&flock::baselines::NatarajanBst::new(), seed, ops, 48);
        oracle_case(&flock::baselines::EllenBst::new(), seed, ops, 48);
        oracle_case(&flock::baselines::BlockingBst::new(), seed, ops, 48);
        oracle_case(&flock::baselines::BlockingABTree::new(), seed, ops, 48);
    }
}

#[test]
fn packed_value_roundtrip() {
    use flock::sync::{pack, unpack_tag, unpack_val};
    let mut rng = SplitMix64::new(0xBEEF);
    for _ in 0..10_000 {
        // TAG_LIMIT (0xFFFF) is reserved so u64::MAX can stay the empty-log
        // sentinel; pack() debug-asserts it is never used.
        let tag = (rng.next_u64() % u64::from(flock::sync::TAG_LIMIT)) as u16;
        let val = rng.next_u64() & ((1u64 << 48) - 1);
        let w = pack(tag, val);
        assert_eq!(unpack_tag(w), tag);
        assert_eq!(unpack_val(w), val);
    }
}

#[test]
fn zipfian_in_range() {
    let mut rng = SplitMix64::new(0xCAFE);
    for _ in 0..64 {
        let n = 1 + rng.below(100_000);
        let alpha = (rng.below(999) as f64) / 1000.0;
        let z = flock::workload::Zipfian::new(n, alpha);
        let mut zrng = flock::workload::SplitMix64::new(rng.next_u64());
        for _ in 0..64 {
            assert!(z.next(&mut zrng) < n, "n={n} alpha={alpha}");
        }
    }
}

#[test]
fn sparsify_is_injective_on_small_ranges() {
    // splitmix64's finalizer is a bijection on u64, so distinct keys must
    // stay distinct.
    let mut rng = SplitMix64::new(7);
    for _ in 0..10_000 {
        let a = rng.below(1_000_000);
        let b = rng.below(1_000_000);
        if a != b {
            assert_ne!(flock::workload::sparsify(a), flock::workload::sparsify(b));
        }
    }
}

/// Mutables agree with a plain variable under arbitrary single-threaded
/// operation sequences (load/store/cam).
#[test]
fn mutable_matches_reference() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let m = flock::core::Mutable::new(0u32);
        let mut reference = 0u32;
        for _ in 0..100 {
            let a = rng.next_u64() as u32;
            let b = rng.next_u64() as u32;
            match rng.below(3) {
                0 => {
                    m.store(a);
                    reference = a;
                }
                1 => {
                    m.cam(a, b);
                    if reference == a {
                        reference = b;
                    }
                }
                _ => assert_eq!(m.load(), reference, "seed {seed}"),
            }
        }
        assert_eq!(m.load(), reference, "seed {seed}");
    }
}
