//! Property-based tests (proptest) on the core invariants:
//!
//! * arbitrary op sequences on every structure match a `BTreeMap` oracle;
//! * packed-word encodings round-trip;
//! * the zipfian generator stays in range and orders head mass by α;
//! * structure-specific shape invariants hold after arbitrary histories.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

use flock::core::{set_lock_mode, LockMode};

static MODE_LOCK: Mutex<()> = Mutex::new(());

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_range).prop_map(Op::Remove),
        (0..key_range).prop_map(Op::Get),
    ]
}

fn check_against_oracle(
    ops: &[Op],
    insert: impl Fn(u64, u64) -> bool,
    remove: impl Fn(u64) -> bool,
    get: impl Fn(u64) -> Option<u64>,
) {
    let mut oracle = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, v);
                }
                assert_eq!(insert(k, v), expect, "insert({k})");
            }
            Op::Remove(k) => {
                let expect = oracle.remove(&k).is_some();
                assert_eq!(remove(k), expect, "remove({k})");
            }
            Op::Get(k) => {
                assert_eq!(get(k), oracle.get(&k).copied(), "get({k})");
            }
        }
    }
    for (k, v) in &oracle {
        assert_eq!(get(*k), Some(*v), "sweep {k}");
    }
}

macro_rules! oracle_prop {
    ($name:ident, $make:expr, $check:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(48), 1..300)) {
                let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                set_lock_mode(LockMode::LockFree);
                let m = $make;
                check_against_oracle(
                    &ops,
                    |k, v| m.insert(k, v),
                    |k| m.remove(k),
                    |k| m.get(k),
                );
                #[allow(clippy::redundant_closure_call)]
                ($check)(&m);
            }
        }
    };
}

oracle_prop!(
    dlist_matches_oracle,
    flock::ds::dlist::DList::new(),
    |m: &flock::ds::dlist::DList| m.check_invariants()
);
oracle_prop!(
    lazylist_matches_oracle,
    flock::ds::lazylist::LazyList::new(),
    |m: &flock::ds::lazylist::LazyList| m.check_invariants()
);
oracle_prop!(
    hashtable_matches_oracle,
    flock::ds::hashtable::HashTable::with_capacity(16),
    |_m: &flock::ds::hashtable::HashTable| ()
);
oracle_prop!(
    leaftree_matches_oracle,
    flock::ds::leaftree::LeafTree::new(),
    |m: &flock::ds::leaftree::LeafTree| m.check_invariants()
);
oracle_prop!(
    leaftreap_matches_oracle,
    flock::ds::leaftreap::LeafTreap::new(),
    |m: &flock::ds::leaftreap::LeafTreap| m.check_invariants()
);
oracle_prop!(
    abtree_matches_oracle,
    flock::ds::abtree::ABTree::new(),
    |m: &flock::ds::abtree::ABTree| m.check_invariants()
);
oracle_prop!(
    arttree_matches_oracle,
    flock::ds::arttree::ArtTree::new(),
    |m: &flock::ds::arttree::ArtTree| m.check_invariants()
);

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]
    #[test]
    fn baselines_match_oracle(ops in proptest::collection::vec(op_strategy(48), 1..200)) {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        {
            let m = flock::baselines::HarrisList::new();
            check_against_oracle(&ops, |k, v| m.insert(k, v), |k| m.remove(k), |k| m.get(k));
        }
        {
            let m = flock::baselines::NatarajanBst::new();
            check_against_oracle(&ops, |k, v| m.insert(k, v), |k| m.remove(k), |k| m.get(k));
        }
        {
            let m = flock::baselines::EllenBst::new();
            check_against_oracle(&ops, |k, v| m.insert(k, v), |k| m.remove(k), |k| m.get(k));
        }
        {
            let m = flock::baselines::BlockingBst::new();
            check_against_oracle(&ops, |k, v| m.insert(k, v), |k| m.remove(k), |k| m.get(k));
        }
        {
            let m = flock::baselines::BlockingABTree::new();
            check_against_oracle(&ops, |k, v| m.insert(k, v), |k| m.remove(k), |k| m.get(k));
        }
    }

    #[test]
    fn packed_value_roundtrip(tag in 0u16..u16::MAX, val in 0u64..(1u64 << 48)) {
        use flock::sync::{pack, unpack_tag, unpack_val};
        let w = pack(tag, val);
        prop_assert_eq!(unpack_tag(w), tag);
        prop_assert_eq!(unpack_val(w), val);
    }

    #[test]
    fn zipfian_in_range(n in 1u64..100_000, alpha in 0.0f64..0.999, seed in any::<u64>()) {
        let z = flock::workload::Zipfian::new(n, alpha);
        let mut rng = flock::workload::SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(z.next(&mut rng) < n);
        }
    }

    #[test]
    fn sparsify_is_injective_on_small_ranges(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        // splitmix64's finalizer is a bijection on u64, so distinct keys
        // must stay distinct.
        if a != b {
            prop_assert_ne!(flock::workload::sparsify(a), flock::workload::sparsify(b));
        }
    }

    /// Mutables agree with a plain variable under arbitrary single-threaded
    /// operation sequences (load/store/cam).
    #[test]
    fn mutable_matches_reference(ops in proptest::collection::vec((0u8..3, any::<u32>(), any::<u32>()), 1..100)) {
        let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        let m = flock::core::Mutable::new(0u32);
        let mut reference = 0u32;
        for (op, a, b) in ops {
            match op {
                0 => {
                    m.store(a);
                    reference = a;
                }
                1 => {
                    m.cam(a, b);
                    if reference == a {
                        reference = b;
                    }
                }
                _ => prop_assert_eq!(m.load(), reference),
            }
        }
        prop_assert_eq!(m.load(), reference);
    }
}
