//! Cross-crate integration tests: every Flock structure and every baseline
//! hammered through the one `flock_api::Map` interface, in both lock modes,
//! against a sequential oracle (per-thread key partitions make per-thread
//! sequential semantics exact even under full concurrency).

use std::sync::Mutex;

use flock::api::Map;
use flock::api::testing::{default_methods_check, partition_stress};
use flock::core::{LockMode, set_lock_mode};

/// Serialize tests that flip the global lock mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn with_mode(mode: LockMode, f: impl FnOnce()) {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(mode);
    f();
    set_lock_mode(LockMode::LockFree);
}

fn flock_structures() -> Vec<Box<dyn Map<u64, u64>>> {
    vec![
        Box::new(flock::ds::dlist::DList::new()),
        Box::new(flock::ds::lazylist::LazyList::new()),
        Box::new(flock::ds::hashtable::HashTable::with_capacity(1024)),
        Box::new(flock::ds::leaftree::LeafTree::new()),
        Box::new(flock::ds::leaftree::LeafTree::new_strict()),
        Box::new(flock::ds::leaftreap::LeafTreap::new()),
        Box::new(flock::ds::abtree::ABTree::new()),
        Box::new(flock::ds::arttree::ArtTree::new()),
    ]
}

fn baseline_structures() -> Vec<Box<dyn Map<u64, u64>>> {
    vec![
        Box::new(flock::baselines::HarrisList::new()),
        Box::new(flock::baselines::HarrisList::new_opt()),
        Box::new(flock::baselines::NatarajanBst::new()),
        Box::new(flock::baselines::EllenBst::new()),
        Box::new(flock::baselines::BlockingBst::new()),
        Box::new(flock::baselines::BlockingABTree::new()),
    ]
}

#[test]
fn all_flock_structures_lock_free() {
    with_mode(LockMode::LockFree, || {
        for map in flock_structures() {
            partition_stress(&*map, 4, 800);
        }
    });
}

#[test]
fn all_flock_structures_blocking() {
    with_mode(LockMode::Blocking, || {
        for map in flock_structures() {
            partition_stress(&*map, 4, 800);
        }
    });
}

#[test]
fn all_baselines() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for map in baseline_structures() {
        partition_stress(&*map, 4, 800);
    }
}

/// The provided-method surface works uniformly across all 14 registry
/// entries (12 distinct structures + 2 variants).
#[test]
fn default_methods_across_all_structures() {
    with_mode(LockMode::LockFree, || {
        for map in flock_structures().into_iter().chain(baseline_structures()) {
            default_methods_check(&*map);
        }
    });
}

/// High-contention smoke test: every structure, all threads on 16 keys.
#[test]
fn contention_smoke_all_structures() {
    with_mode(LockMode::LockFree, || {
        for map in flock_structures().into_iter().chain(baseline_structures()) {
            let name = map.name();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let map = &map;
                    s.spawn(move || {
                        let mut state = t + 1;
                        for _ in 0..2_000 {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            let k = state % 16;
                            match state % 3 {
                                0 => {
                                    map.insert(k, k);
                                }
                                1 => {
                                    map.remove(k);
                                }
                                _ => {
                                    if let Some(v) = map.get(k) {
                                        assert_eq!(v, k, "{name}: value corrupted");
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
    });
}
