//! Cross-crate integration tests: every Flock structure and every baseline
//! hammered through a common interface, in both lock modes, against a
//! sequential oracle (per-thread key partitions make per-thread sequential
//! semantics exact even under full concurrency).

use std::collections::BTreeMap;
use std::sync::Mutex;

use flock::baselines::BaselineMap;
use flock::core::{set_lock_mode, LockMode};
use flock::ds::ConcurrentMap;

/// Serialize tests that flip the global lock mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn with_mode(mode: LockMode, f: impl FnOnce()) {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(mode);
    f();
    set_lock_mode(LockMode::LockFree);
}

trait AnyMap: Send + Sync {
    fn insert(&self, k: u64, v: u64) -> bool;
    fn remove(&self, k: u64) -> bool;
    fn get(&self, k: u64) -> Option<u64>;
}

struct Ds<M: ConcurrentMap>(M);
impl<M: ConcurrentMap> AnyMap for Ds<M> {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn remove(&self, k: u64) -> bool {
        self.0.remove(k)
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.0.get(k)
    }
}

struct Bl<M: BaselineMap>(M);
impl<M: BaselineMap> AnyMap for Bl<M> {
    fn insert(&self, k: u64, v: u64) -> bool {
        self.0.insert(k, v)
    }
    fn remove(&self, k: u64) -> bool {
        self.0.remove(k)
    }
    fn get(&self, k: u64) -> Option<u64> {
        self.0.get(k)
    }
}

fn flock_structures() -> Vec<(&'static str, Box<dyn AnyMap>)> {
    vec![
        ("dlist", Box::new(Ds(flock::ds::dlist::DList::new()))),
        ("lazylist", Box::new(Ds(flock::ds::lazylist::LazyList::new()))),
        (
            "hashtable",
            Box::new(Ds(flock::ds::hashtable::HashTable::with_capacity(1024))),
        ),
        ("leaftree", Box::new(Ds(flock::ds::leaftree::LeafTree::new()))),
        (
            "leaftree-strict",
            Box::new(Ds(flock::ds::leaftree::LeafTree::new_strict())),
        ),
        ("leaftreap", Box::new(Ds(flock::ds::leaftreap::LeafTreap::new()))),
        ("abtree", Box::new(Ds(flock::ds::abtree::ABTree::new()))),
        ("arttree", Box::new(Ds(flock::ds::arttree::ArtTree::new()))),
    ]
}

fn baseline_structures() -> Vec<(&'static str, Box<dyn AnyMap>)> {
    vec![
        ("harris_list", Box::new(Bl(flock::baselines::HarrisList::new()))),
        (
            "harris_list_opt",
            Box::new(Bl(flock::baselines::HarrisList::new_opt())),
        ),
        ("natarajan", Box::new(Bl(flock::baselines::NatarajanBst::new()))),
        ("ellen", Box::new(Bl(flock::baselines::EllenBst::new()))),
        (
            "bronson_style_bst",
            Box::new(Bl(flock::baselines::BlockingBst::new())),
        ),
        (
            "srivastava_abtree",
            Box::new(Bl(flock::baselines::BlockingABTree::new())),
        ),
    ]
}

fn stress(map: &dyn AnyMap, name: &str, threads: u64, ops: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let map = &*map;
            let name = &*name;
            s.spawn(move || {
                let mut present = BTreeMap::new();
                let mut state = (t + 1) * 0x1234_5677;
                let mut rng = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for i in 0..ops {
                    let k = (rng() % 256) * threads + t;
                    let v = i as u64;
                    match rng() % 3 {
                        0 => {
                            let expect = !present.contains_key(&k);
                            if expect {
                                present.insert(k, v);
                            }
                            assert_eq!(map.insert(k, v), expect, "{name} t{t} insert({k}) op{i}");
                        }
                        1 => {
                            let expect = present.remove(&k).is_some();
                            assert_eq!(map.remove(k), expect, "{name} t{t} remove({k}) op{i}");
                        }
                        _ => {
                            assert_eq!(
                                map.get(k),
                                present.get(&k).copied(),
                                "{name} t{t} get({k}) op{i}"
                            );
                        }
                    }
                }
                for (k, v) in &present {
                    assert_eq!(map.get(*k), Some(*v), "{name} t{t} sweep {k}");
                }
            });
        }
    });
}

#[test]
fn all_flock_structures_lock_free() {
    with_mode(LockMode::LockFree, || {
        for (name, map) in flock_structures() {
            stress(&*map, name, 4, 800);
        }
    });
}

#[test]
fn all_flock_structures_blocking() {
    with_mode(LockMode::Blocking, || {
        for (name, map) in flock_structures() {
            stress(&*map, name, 4, 800);
        }
    });
}

#[test]
fn all_baselines() {
    let _g = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for (name, map) in baseline_structures() {
        stress(&*map, name, 4, 800);
    }
}

/// High-contention smoke test: every structure, all threads on 16 keys.
#[test]
fn contention_smoke_all_structures() {
    with_mode(LockMode::LockFree, || {
        for (name, map) in flock_structures().into_iter().chain(baseline_structures()) {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let map = &*map;
                    s.spawn(move || {
                        let mut state = t + 1;
                        for _ in 0..2_000 {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            let k = state % 16;
                            match state % 3 {
                                0 => {
                                    map.insert(k, k);
                                }
                                1 => {
                                    map.remove(k);
                                }
                                _ => {
                                    if let Some(v) = map.get(k) {
                                        assert_eq!(v, k, "{name}: value corrupted");
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
    });
}
