//! Quickstart: write lock-based code once, run it lock-free or blocking.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flock::core::{set_lock_mode, LockMode};
use flock::ds::dlist::DList;
use std::sync::Arc;
use std::time::Instant;

fn hammer(list: &Arc<DList>, threads: usize, ops_per_thread: u64) -> std::time::Duration {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let list = Arc::clone(list);
            s.spawn(move || {
                let mut state = t + 1;
                for _ in 0..ops_per_thread {
                    // xorshift
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let k = state % 512;
                    match state % 3 {
                        0 => {
                            list.insert(k, k);
                        }
                        1 => {
                            list.remove(k);
                        }
                        _ => {
                            list.get(k);
                        }
                    }
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    // The same data structure code runs in either mode; the switch is a
    // runtime flag (change it only while no operations are in flight).
    for (label, mode) in [
        ("lock-free (helping)", LockMode::LockFree),
        ("blocking  (spin)", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        let list = Arc::new(DList::new());

        // Basic single-threaded usage.
        assert!(list.insert(10, 100));
        assert!(list.insert(20, 200));
        assert_eq!(list.get(10), Some(100));
        assert!(list.remove(10));
        assert_eq!(list.get(10), None);

        // Concurrent usage.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get() * 2) // deliberately oversubscribed
            .unwrap_or(4);
        let elapsed = hammer(&list, threads, 50_000);
        list.check_invariants();
        println!(
            "{label:>20}: {threads} threads x 50k ops in {elapsed:?} — final size {}",
            list.len()
        );
    }
    set_lock_mode(LockMode::LockFree);
    println!("ok: both modes produced a consistent list");
}
