//! Quickstart: write lock-based code once, run it lock-free or blocking.
//!
//! Two layers are shown: the packaged `Locked<T>` cell for your own
//! critical sections, and a ready-made map structure driven through the
//! workspace-wide `flock::api::Map` interface.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flock::api::Map;
use flock::core::{LockMode, Locked, Mutable, set_lock_mode};
use flock::ds::dlist::DList;
use std::sync::Arc;
use std::time::Instant;

/// A tiny stats record guarded by one lock — the `Locked<T>` pattern.
struct Stats {
    ops: Mutable<u64>,
    max_key: Mutable<u64>,
}

fn hammer(
    list: &Arc<DList<u64, u64>>,
    stats: &Arc<Locked<Stats>>,
    threads: usize,
    ops_per_thread: u64,
) -> std::time::Duration {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let list = Arc::clone(list);
            let stats = Arc::clone(stats);
            s.spawn(move || {
                let mut state = t + 1;
                for _ in 0..ops_per_thread {
                    // xorshift
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let k = state % 512;
                    match state % 3 {
                        0 => {
                            if list.insert(k, k) {
                                // `with` waits for the lock (helping the
                                // holder in lock-free mode), then runs the
                                // closure over the protected record.
                                stats.with(move |st| {
                                    st.ops.store(st.ops.load() + 1);
                                    if k > st.max_key.load() {
                                        st.max_key.store(k);
                                    }
                                });
                            }
                        }
                        1 => {
                            list.remove(k);
                        }
                        _ => {
                            list.get(k);
                        }
                    }
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    // The same data structure code runs in either mode; the switch is a
    // runtime flag (change it only while no operations are in flight).
    for (label, mode) in [
        ("lock-free (helping)", LockMode::LockFree),
        ("blocking  (spin)", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        let list: Arc<DList<u64, u64>> = Arc::new(DList::new());
        let stats = Arc::new(Locked::new(Stats {
            ops: Mutable::new(0),
            max_key: Mutable::new(0),
        }));

        // Basic single-threaded usage through the one map interface.
        assert!(list.insert(10, 100));
        assert!(list.insert(20, 200));
        assert_eq!(list.get(10), Some(100));
        assert!(list.contains(&20));
        assert!(list.update(20, 201), "in-place value replacement");
        assert_eq!(list.get(20), Some(201));
        assert!(list.remove(10));
        assert!(list.remove(20));

        // Concurrent usage.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get() * 2) // deliberately oversubscribed
            .unwrap_or(4);
        let elapsed = hammer(&list, &stats, threads, 50_000);
        list.check_invariants();
        println!(
            "{label:>20}: {threads} threads x 50k ops in {elapsed:?} — final size {:?}, {} tracked inserts (max key {})",
            list.len_approx(),
            stats.ops.load(),
            stats.max_key.load(),
        );
    }
    set_lock_mode(LockMode::LockFree);
    println!("ok: both modes produced a consistent list");
}
