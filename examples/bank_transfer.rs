//! Atomic transfers between accounts with two-cell `Locked<T>` sections.
//!
//! The paper's motivation for general lock-free locks: "if one needs to
//! atomically move data among structures, lock-free algorithms become
//! particularly tricky" — with Flock it is one `Locked::try_with2` call.
//! The cell picks the lock order itself (by address — the "simply nested"
//! discipline the paper's lock-freedom theorem requires), debits, and
//! credits, atomically even when the transferring thread is descheduled
//! mid-way (another contender finishes its critical section).
//!
//! `None` means a lock was busy; `Some(false)` means insufficient funds;
//! `Some(true)` means the money moved.
//!
//! ```sh
//! cargo run --release --example bank_transfer
//! ```

use flock::core::{LockMode, Locked, Mutable, set_lock_mode};
use std::sync::Arc;

/// One account: its balance, guarded by the cell's lock.
type Account = Locked<Mutable<u32>>;

struct Bank {
    accounts: Vec<Arc<Account>>,
}

impl Bank {
    fn new(n: usize, initial: u32) -> Self {
        Self {
            accounts: (0..n)
                .map(|_| Arc::new(Locked::new(Mutable::new(initial))))
                .collect(),
        }
    }

    /// Try to move `amount` from account `from` to account `to`; returns
    /// false if either lock is busy or funds are insufficient.
    fn try_transfer(&self, from: usize, to: usize, amount: u32) -> bool {
        assert_ne!(from, to);
        // try_with2 acquires both locks in address order internally, so
        // callers no longer hand-write the nested locking.
        let outcome =
            Locked::try_with2(&self.accounts[from], &self.accounts[to], move |src, dst| {
                let f = src.load();
                if f < amount {
                    return false;
                }
                src.store(f - amount);
                dst.store(dst.load() + amount);
                true
            });
        outcome == Some(true)
    }

    fn total(&self) -> u64 {
        self.accounts.iter().map(|a| a.load() as u64).sum()
    }
}

fn main() {
    set_lock_mode(LockMode::LockFree);
    const ACCOUNTS: usize = 64;
    const INITIAL: u32 = 1_000;
    let bank = Arc::new(Bank::new(ACCOUNTS, INITIAL));
    let expected_total = (ACCOUNTS as u64) * (INITIAL as u64);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get() * 2)
        .unwrap_or(4);
    let transfers: u64 = std::thread::scope(|s| {
        (0..threads as u64)
            .map(|t| {
                let bank = Arc::clone(&bank);
                s.spawn(move || {
                    let mut done = 0u64;
                    let mut state = t * 7 + 1;
                    for _ in 0..20_000 {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let a = (state % ACCOUNTS as u64) as usize;
                        let b = ((state >> 16) % ACCOUNTS as u64) as usize;
                        if a != b && bank.try_transfer(a, b, (state % 50) as u32 + 1) {
                            done += 1;
                        }
                    }
                    done
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });

    let total = bank.total();
    println!("{transfers} transfers completed across {threads} threads");
    println!("total money: {total} (expected {expected_total})");
    assert_eq!(total, expected_total, "money must be conserved");
    println!("ok: atomic two-account transfers conserved the total");
}
