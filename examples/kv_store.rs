//! A small ordered key-value store on the Flock (a,b)-tree, driven by a
//! YCSB-style zipfian workload — the OLTP-index scenario the paper's
//! evaluation mimics.
//!
//! The tree implements `flock_api::Map` directly, so it plugs into the
//! workload driver with no adapter.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use flock::core::{LockMode, set_lock_mode};
use flock::ds::abtree::ABTree;
use flock::workload::{Config, SplitMix64, Zipfian, run_experiment};
use std::time::Duration;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);

    // Show what zipfian skew means concretely.
    let z = Zipfian::new(1000, 0.99);
    let mut rng = SplitMix64::new(42);
    let mut head = 0;
    for _ in 0..10_000 {
        if z.next(&mut rng) < 10 {
            head += 1;
        }
    }
    println!(
        "zipf(0.99): the hottest 1% of keys receive {}% of accesses",
        head / 100
    );

    // YCSB workload A (50% updates) and B (5% updates) on the store,
    // in both lock modes.
    for (workload, update_pct) in [("YCSB-A (50% upd)", 50), ("YCSB-B (5% upd)", 5)] {
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            set_lock_mode(mode);
            let store: ABTree<u64, u64> = ABTree::new();
            let cfg = Config {
                threads,
                key_range: 100_000,
                update_percent: update_pct,
                zipf_alpha: 0.99,
                run_duration: Duration::from_millis(400),
                repeats: 2,
                sparsify_keys: false,
                seed: 99,
            };
            let m = run_experiment(&store, &cfg);
            println!(
                "{workload} | {:9} | {:6.2} ± {:4.2} Mop/s",
                if mode == LockMode::LockFree {
                    "lock-free"
                } else {
                    "blocking"
                },
                m.mops_mean,
                m.mops_stddev
            );
        }
    }
    set_lock_mode(LockMode::LockFree);
}
