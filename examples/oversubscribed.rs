//! The paper's headline phenomenon, live: under oversubscription (more
//! threads than cores), blocking locks collapse — a descheduled lock holder
//! stalls everyone — while lock-free locks keep the system moving because
//! contenders help the holder finish.
//!
//! This example measures the same hash table in both modes at 1× and 8×
//! the core count and prints the throughput ratio, then demonstrates the
//! robustness property directly by parking a lock holder mid-critical-
//! section and timing how long another thread needs to get the lock.
//!
//! ```sh
//! cargo run --release --example oversubscribed
//! ```

use flock::core::{Lock, LockMode, Mutable, set_lock_mode};
use flock::ds::hashtable::HashTable;
use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn throughput(mode: LockMode, threads: usize, secs: f64) -> f64 {
    set_lock_mode(mode);
    let table: Arc<HashTable<u64, u64>> = Arc::new(HashTable::with_capacity(1024));
    for k in 0..1024 {
        table.insert(k, k);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let (table, stop, ops) = (Arc::clone(&table), Arc::clone(&stop), Arc::clone(&ops));
            s.spawn(move || {
                let mut state = t + 1;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let k = state % 2048;
                    if state % 2 == 0 {
                        table.insert(k, k);
                    } else {
                        table.remove(k);
                    }
                    n += 1;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::SeqCst);
    });
    ops.load(Ordering::Relaxed) as f64 / secs / 1e6
}

fn stalled_holder_demo() -> Duration {
    set_lock_mode(LockMode::LockFree);
    let lock = Arc::new(Lock::new());
    let value = Arc::new(Mutable::new(0u32));
    let entered = Arc::new(std::sync::Barrier::new(2));

    let (l, v, e) = (Arc::clone(&lock), Arc::clone(&value), Arc::clone(&entered));
    let holder = std::thread::spawn(move || {
        let owner = std::thread::current().id();
        let (v2, e2) = (Arc::clone(&v), Arc::clone(&e));
        l.try_lock(move || {
            v2.store(v2.load() + 1);
            // Simulate the owner being descheduled indefinitely: only the
            // owning thread parks; helpers replaying the thunk skip this.
            if std::thread::current().id() == owner {
                e2.wait();
                std::thread::park_timeout(Duration::from_secs(300));
            }
        })
    });

    entered.wait();
    // The holder is now parked *inside* its critical section. Time how
    // long another thread needs to acquire the lock: in lock-free mode it
    // helps the stalled thunk to completion and proceeds immediately.
    // (`Some(())` = acquired; `None` = busy, i.e. helping hasn't finished.)
    let t0 = Instant::now();
    let mut waited = Duration::ZERO;
    loop {
        let v2 = Arc::clone(&value);
        if lock.try_lock(move || v2.store(v2.load() + 10)).is_some() {
            waited = t0.elapsed();
            break;
        }
        if t0.elapsed() > Duration::from_secs(30) {
            break;
        }
    }
    assert_eq!(value.load(), 11, "stalled thunk applied exactly once");
    holder.thread().unpark();
    let _ = holder.join();
    waited
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    println!("host parallelism: {cores}");

    for threads in [cores, 8 * cores] {
        let lf = throughput(LockMode::LockFree, threads, 0.5);
        let bl = throughput(LockMode::Blocking, threads, 0.5);
        let tag = if threads > cores {
            "oversubscribed"
        } else {
            "1x cores"
        };
        println!(
            "{threads:>4} threads ({tag:>14}): lock-free {lf:8.2} Mop/s | blocking {bl:8.2} Mop/s | lf/bl = {:.2}x",
            lf / bl
        );
    }

    let waited = stalled_holder_demo();
    println!("time to acquire a lock whose holder is parked mid-section: {waited:?}");
    println!("(blocking locks would wait the full 300s park)");
    set_lock_mode(LockMode::LockFree);
}
