//! # Flock — lock-free locks for Rust
//!
//! A Rust reproduction of *"Lock-Free Locks Revisited"* (Ben-David, Blelloch,
//! Wei — PPoPP 2022). Write ordinary fine-grained-locking code against the
//! [`core`] API and run it either **lock-free** (contenders *help* the lock
//! holder finish its critical section, so a stalled or descheduled thread
//! never blocks the system) or **blocking** (plain test-and-test-and-set spin
//! locks), switchable at runtime.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`flock_core`]) — the paper's contribution: idempotent thunks
//!   via shared logs, `Mutable<V>`, try-locks and strict locks with typed
//!   results, and the [`Locked<T>`](core::Locked) cell fusing a lock with
//!   the data it protects.
//! * [`api`] ([`flock_api`]) — the one public [`Map`](api::Map) interface
//!   every structure in the workspace implements — generically over
//!   `(K, V)`, with fat values via [`Indirect`](api::Indirect) — plus the
//!   `map_conformance!` test harness (three `(K, V)` instantiations,
//!   drop-exactly-once reclamation, update-atomicity capability checks).
//! * [`sync`] ([`flock_sync`]) — tagged-word atomics and spin primitives.
//! * [`epoch`] ([`flock_epoch`]) — epoch-based memory reclamation.
//! * [`ds`] ([`flock_ds`]) — seven lock-based data structures that run
//!   lock-free: doubly/singly linked lists, hash table, three trees, and the
//!   first lock-free adaptive radix tree.
//! * [`baselines`] ([`flock_baselines`]) — hand-crafted lock-free and blocking
//!   comparators used by the paper's evaluation.
//! * [`workload`] ([`flock_workload`]) — the YCSB-style benchmark driver.
//!
//! ## Quickstart: a map, through the one interface
//!
//! ```
//! use flock::api::Map;
//! use flock::core::LockMode;
//!
//! // Run critical sections lock-free (helping + logging)…
//! flock::core::set_lock_mode(LockMode::LockFree);
//!
//! let list: flock::ds::dlist::DList<u64, u64> = flock::ds::dlist::DList::new();
//! assert!(list.insert(1, 10));
//! assert_eq!(list.get(1), Some(10));
//! assert!(list.contains(&1));
//! assert!(list.remove(1));
//!
//! // …or with classic blocking spin locks — same code, runtime switch.
//! flock::core::set_lock_mode(LockMode::Blocking);
//! assert!(list.insert(2, 20));
//! # flock::core::set_lock_mode(LockMode::LockFree);
//! ```
//!
//! ## Quickstart: your own critical sections with `Locked<T>`
//!
//! ```
//! use flock::core::{Locked, Mutable};
//!
//! struct Counter { hits: Mutable<u64> }
//! let counter = Locked::new(Counter { hits: Mutable::new(0) });
//!
//! // `None` = lock busy; `Some(r)` carries the closure's typed result.
//! let after = counter.try_with(|c| {
//!     let n = c.hits.load() + 1;
//!     c.hits.store(n);
//!     n
//! });
//! assert_eq!(after, Some(1));
//! assert_eq!(counter.hits.load(), 1); // unlocked read via Deref
//! ```

pub use flock_api as api;
pub use flock_baselines as baselines;
pub use flock_core as core;
pub use flock_ds as ds;
pub use flock_epoch as epoch;
pub use flock_sync as sync;
pub use flock_workload as workload;
