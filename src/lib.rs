//! # Flock — lock-free locks for Rust
//!
//! A Rust reproduction of *"Lock-Free Locks Revisited"* (Ben-David, Blelloch,
//! Wei — PPoPP 2022). Write ordinary fine-grained-locking code against the
//! [`core`] API and run it either **lock-free** (contenders *help* the lock
//! holder finish its critical section, so a stalled or descheduled thread
//! never blocks the system) or **blocking** (plain test-and-test-and-set spin
//! locks), switchable at runtime.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] ([`flock_core`]) — the paper's contribution: idempotent thunks
//!   via shared logs, `Mutable<V>`, try-locks and strict locks.
//! * [`sync`] ([`flock_sync`]) — tagged-word atomics and spin primitives.
//! * [`epoch`] ([`flock_epoch`]) — epoch-based memory reclamation.
//! * [`ds`] ([`flock_ds`]) — seven lock-based data structures that run
//!   lock-free: doubly/singly linked lists, hash table, three trees, and the
//!   first lock-free adaptive radix tree.
//! * [`baselines`] ([`flock_baselines`]) — hand-crafted lock-free and blocking
//!   comparators used by the paper's evaluation.
//! * [`workload`] ([`flock_workload`]) — the YCSB-style benchmark driver.
//!
//! ## Quickstart
//!
//! ```
//! use flock::ds::dlist::DList;
//! use flock::core::LockMode;
//!
//! // Run critical sections lock-free (helping + logging)…
//! flock::core::set_lock_mode(LockMode::LockFree);
//!
//! let list = DList::new();
//! assert!(list.insert(1, 10));
//! assert_eq!(list.get(1), Some(10));
//! assert!(list.remove(1));
//!
//! // …or with classic blocking spin locks — same code, runtime switch.
//! flock::core::set_lock_mode(LockMode::Blocking);
//! assert!(list.insert(2, 20));
//! ```

pub use flock_baselines as baselines;
pub use flock_core as core;
pub use flock_ds as ds;
pub use flock_epoch as epoch;
pub use flock_sync as sync;
pub use flock_workload as workload;
