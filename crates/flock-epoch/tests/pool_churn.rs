//! Thread-churn conformance for the paged slab pool.
//!
//! Mirrors the `flock_chaos::churn` shape — rounds of spawn/join batches,
//! every thread allocating and retiring through the pool — and asserts the
//! two properties that make the pool safe to run under churning threads:
//!
//! 1. **No page leaks.** Pages are immortal by design, so the invariant is
//!    that the page count *stabilizes*: after a warm-up round establishes
//!    the steady-state footprint, further churn rounds must not grow it —
//!    exiting threads hand their magazines back to the global pool rather
//!    than stranding slots (which would force later rounds onto fresh
//!    pages).
//! 2. **Drop exactly once.** Values routed through alloc/retire/free_now
//!    from churning threads are dropped exactly once, pool or no pool.
//!
//! Kept as a single `#[test]` so the page-count phase is not perturbed by
//! a sibling test's allocations running on another test-harness thread.

use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

use flock_epoch::{alloc, flush_all, free_now, pin, pool_stats, retire};

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 500;

/// One spawn/join batch: every thread mixes the three reclamation paths —
/// magazine recycling (`free_now`), collector-routed frees (`retire`) and
/// a fat-value-sized class — then exits with a warm magazine.
fn churn_round(constructed: &Arc<AtomicUsize>, dropped: &Arc<AtomicUsize>) {
    struct Tracked {
        dropped: Arc<AtomicUsize>,
        _payload: [u64; 4],
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.dropped.fetch_add(1, Relaxed);
        }
    }

    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let constructed = Arc::clone(constructed);
            let dropped = Arc::clone(dropped);
            std::thread::spawn(move || {
                for i in 0..OPS_PER_THREAD {
                    // Idempotent-loser path: never published, recycled via
                    // the magazine.
                    let p = alloc(i as u64);
                    // SAFETY: fresh private allocation.
                    unsafe { free_now(p) };
                    // Collector path: retired under a pin, freed later on
                    // whichever thread collects.
                    constructed.fetch_add(1, Relaxed);
                    let g = pin();
                    let q = alloc(Tracked {
                        dropped: Arc::clone(&dropped),
                        _payload: [i as u64; 4],
                    });
                    // SAFETY: fresh private allocation, retired once.
                    unsafe { retire(q) };
                    drop(g);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn churn_rounds_leak_no_pages_and_drop_exactly_once() {
    let constructed = Arc::new(AtomicUsize::new(0));
    let dropped = Arc::new(AtomicUsize::new(0));

    const ROUNDS: usize = 24;
    for _ in 0..ROUNDS {
        churn_round(&constructed, &dropped);
        // All threads joined → nothing pinned: reclaim everything so no
        // in-flight retires leak demand into the next round.
        flush_all();
    }

    let stats = pool_stats();
    // No page leak: pages are immortal, so the invariant is that the
    // footprint is bounded by ONE round's peak concurrent demand,
    // independent of how many rounds ran. Worst case per round (a thread
    // descheduled while pinned stalls the reclamation floor, so every
    // retire of the round can be in flight at once): all `Tracked`
    // retires live simultaneously, plus full magazines on every thread.
    // That is ~2500 slots of the 64-byte class (256 per 16 KiB page) and
    // some float in the small class — comfortably under 16 pages; we
    // assert 2x that. Stranded magazines from exited threads would
    // instead lose ~780 slots per round — 40+ pages by round 24 — so the
    // bound separates leak from burst with a wide margin.
    assert!(
        stats.pages_live <= 32,
        "page footprint not bounded by one round's demand after {ROUNDS} rounds: {stats:?}"
    );
    // Every exited thread's magazine went back to the pool: the cached
    // gauge now only covers live threads (us), bounded well below one
    // churn round's traffic.
    assert!(
        stats.slots_cached <= pool_magazine_bound(),
        "exited threads left slots cached: {stats:?}"
    );
    // Drop exactly once, across all rounds and threads.
    let c = constructed.load(Relaxed);
    let d = dropped.load(Relaxed);
    assert_eq!(c, ROUNDS * THREADS * OPS_PER_THREAD);
    assert_eq!(d, c, "pooled retire dropped {d} of {c} values");
}

/// Upper bound for slots the *current* (main) thread may legitimately hold
/// cached after `flush_all` repatriated collector frees into its
/// magazines: magazine capacity plus one refill batch per class, for each
/// of the 7 classes.
fn pool_magazine_bound() -> usize {
    7 * (64 + 33)
}
