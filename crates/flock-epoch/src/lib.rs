//! # flock-epoch — epoch-based memory reclamation for Flock
//!
//! Flock retires memory through an epoch-based collector (paper §6,
//! "Epoch-based collection"): every operation runs inside an *epoch*; retired
//! objects are stamped with the epoch at retire time and freed only once every
//! in-flight operation has moved past that epoch.
//!
//! Two Flock-specific requirements shape this implementation:
//!
//! 1. **Epoch adoption while helping.** When a thread helps another thread's
//!    critical section it takes on the helped thunk's responsibilities, so it
//!    must also take on its epoch: the helper lowers its reservation to
//!    `min(own, thunk's birth epoch)` for the duration of the help and
//!    restores it afterwards ([`EpochGuard::adopt`]). The adopt publishes the
//!    lowered reservation with a `SeqCst` fence *before* the caller
//!    revalidates that the descriptor is still installed, which is what makes
//!    the hand-off sound (see DESIGN.md §3).
//! 2. **Reservation-aware retire/alloc from inside idempotent code.** The
//!    thunk-log machinery in `flock-core` guarantees each logical retire
//!    reaches [`retire`] at most once; this crate only has to stamp, bag and
//!    eventually drop.
//!
//! The collector is the classic three-epoch scheme: a global epoch counter,
//! one published reservation per thread, per-thread retire bags, and the rule
//! that an object stamped `e` is dropped once every active reservation is at
//! least `e + 2`.

#![warn(missing_docs)]

mod collector;
mod guard;
mod indirect;
mod pool;

pub use collector::{
    CollectorStats, EpochStats, QUIESCENT, collector_stats, epoch_stats, try_advance,
};
#[cfg(feature = "model")]
pub use guard::mutants;
pub use guard::{AdoptGuard, EpochGuard, pin, pin_with, pinned_epoch};
pub use indirect::Indirect;
pub use pool::{PoolStats, pool_stats};

use flock_sync::atomic::Ordering;

/// Model-checker support (see `flock-model`): reset the collector to a
/// deterministic state between executions. Caller contract: no thread is
/// pinned and no model threads are live.
#[cfg(feature = "model")]
pub fn model_reset() {
    collector::model_reset();
}

/// Model-checker support: run one local collection pass now (the cadence
/// heuristics that normally trigger it are too coarse for model scope).
/// Must be called with the calling thread unpinned or about to re-validate.
#[cfg(feature = "model")]
pub fn collect_now() {
    collector::collect_local();
}

/// Model-engine worker reset: drain the calling thread's retire bag to the
/// orphans, as its TLS destructor would. See `model_reset`.
#[cfg(feature = "model")]
pub fn model_drain_local_bag() {
    collector::model_drain_local_bag();
    pool::model_drain_magazines();
}

/// Allocate `value` for use with [`retire`].
///
/// Served from the paged slab pool (`pool` module) when a size class fits
/// `T` — a pure thread-local magazine pop in the steady state — and from a
/// plain `Box` otherwise. The choice is per-`T` at compile time, so the
/// matching free paths ([`free_now`], [`retire`]) return the memory the
/// same way without any runtime provenance check.
#[inline]
pub fn alloc<T>(value: T) -> *mut T {
    let p: *mut T = match const { pool::class_for::<T>() } {
        Some(class) => {
            let slot = pool::alloc_slot(class).cast::<T>();
            // SAFETY: a fresh class-`class` slot is exclusively ours,
            // class-sized and class-aligned, which covers `T`'s layout
            // (see `pool::CLASS_SIZES`); the write initializes it.
            unsafe { slot.write(value) };
            slot
        }
        None => {
            pool::count_fallback_alloc();
            Box::into_raw(Box::new(value))
        }
    };
    #[cfg(debug_assertions)]
    collector::debug_track::on_alloc(p as usize);
    p
}

/// Immediately free an object allocated with [`alloc`] that was **never
/// shared** with other threads (e.g. the loser of an idempotent-allocate
/// race, which was never published to the log). Pooled slots go straight
/// back to the calling thread's magazine, so idempotent replays recycle
/// the same slot instead of hitting the heap.
///
/// # Safety
///
/// `ptr` must come from [`alloc`], must not have been freed or retired, and
/// no other thread may hold a reference to it.
#[inline]
pub unsafe fn free_now<T>(ptr: *mut T) {
    #[cfg(debug_assertions)]
    collector::debug_track::on_dealloc(ptr as usize, "free_now");
    match const { pool::class_for::<T>() } {
        Some(class) => {
            // SAFETY: exclusive access per contract; dropped exactly once.
            unsafe { std::ptr::drop_in_place(ptr) };
            pool::free_slot(ptr.cast::<u8>(), class);
        }
        // SAFETY: fallback `T`s came from `Box::new` (see `alloc`).
        None => drop(unsafe { Box::from_raw(ptr) }),
    }
}

/// Retire an object: it will be dropped once no in-flight operation can still
/// hold a reference.
///
/// Must be called while pinned (inside an [`EpochGuard`]); debug builds
/// assert this.
///
/// # Safety
///
/// `ptr` must come from [`alloc`], be retired at most once, and be
/// unreachable for new readers (unlinked from all shared structures) at call
/// time.
#[inline]
pub unsafe fn retire<T>(ptr: *mut T) {
    debug_assert!(
        guard::is_pinned(),
        "flock-epoch: retire called outside an epoch guard"
    );
    // Ordering: Relaxed is enough for the stamp *because the caller is
    // pinned*: read-read coherence means this load returns at least the
    // epoch this thread re-validated at pin time, and our own reservation
    // blocks the global epoch from advancing more than one past it — so the
    // stamp is stale by at most one epoch, which the two-epoch reclamation
    // slack absorbs (an object is freed only once every active reservation
    // exceeds `stamp + 1`, and any thread still holding a reference is
    // reserved at `true retire epoch - 1` or older).
    let stamp = collector::global_epoch().load(Ordering::Relaxed);
    collector::bag_retired(collector::Retired {
        ptr: ptr.cast::<u8>(),
        // Drop glue and slot routing are chosen per `T` at compile time:
        // the collector drops in place (when `T` needs it) and returns
        // pooled slots to the *freeing* thread's magazine in a batched
        // push; fallback items are boxed back to the heap by the dropper.
        dropper: const { pool::retired_dropper::<T>() },
        class: const { pool::retired_class::<T>() },
        stamp,
        bytes: std::mem::size_of::<T>() as u32,
    });
}

/// Retire an object without touching any thread-local state: the item goes
/// straight to the global orphan bag. For use from TLS destructors (e.g. a
/// per-thread pool draining at thread exit), where ordinary [`retire`] could
/// trip over already-destroyed thread-locals.
///
/// # Safety
///
/// Same contract as [`retire`], minus the pinning requirement: `ptr` must
/// come from [`alloc`], be retired at most once, and be unreachable for
/// new readers.
pub unsafe fn retire_orphan<T>(ptr: *mut T) {
    // Ordering: SeqCst — unlike `retire`, the caller is *not* pinned, so
    // the coherence argument bounding stamp staleness does not apply; keep
    // the strongest order on this cold (thread-exit) path.
    let stamp = collector::global_epoch().load(Ordering::SeqCst);
    collector::bag_retired_global(collector::Retired {
        ptr: ptr.cast::<u8>(),
        dropper: const { pool::retired_dropper::<T>() },
        class: const { pool::retired_class::<T>() },
        stamp,
        bytes: std::mem::size_of::<T>() as u32,
    });
}

/// Drive the collector until every already-retired object has been freed.
///
/// Requires that no thread is pinned; intended for tests and teardown.
pub fn flush_all() {
    collector::flush_all();
}

/// Debug-build bookkeeping hook: record a heap allocation that will later be
/// handed to [`retire`] without having come from [`alloc`] (e.g. pooled
/// descriptors). No-op in release builds.
#[inline]
pub fn debug_track_alloc<T>(ptr: *mut T) {
    #[cfg(debug_assertions)]
    collector::debug_track::on_alloc(ptr as usize);
    #[cfg(not(debug_assertions))]
    let _ = ptr;
}

/// Debug-build bookkeeping hook: record that a tracked allocation is being
/// freed outside the collector (e.g. returned to a pool). Panics on double
/// free in debug builds; no-op in release builds.
#[inline]
pub fn debug_track_dealloc<T>(ptr: *mut T, who: &str) {
    #[cfg(debug_assertions)]
    collector::debug_track::on_dealloc(ptr as usize, who);
    #[cfg(not(debug_assertions))]
    let _ = (ptr, who);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Relaxed);
        }
    }

    #[test]
    fn retired_object_is_not_freed_while_pinned_elsewhere() {
        let drops = Arc::new(AtomicUsize::new(0));
        let obj = alloc(DropCounter(Arc::clone(&drops)));

        let g_other = pin(); // a second guard on this thread keeps epoch pinned
        {
            let _g = pin();
            // SAFETY: obj from alloc, never shared, retired once.
            unsafe { retire(obj) };
        }
        // Still pinned by g_other: hammering advance must not drop it.
        for _ in 0..64 {
            try_advance();
        }
        assert_eq!(drops.load(Relaxed), 0, "freed under an active reservation");
        drop(g_other);
        flush_all();
        assert_eq!(drops.load(Relaxed), 1);
    }

    #[test]
    fn flush_drops_everything() {
        let drops = Arc::new(AtomicUsize::new(0));
        const N: usize = 100;
        {
            let _g = pin();
            for _ in 0..N {
                let p = alloc(DropCounter(Arc::clone(&drops)));
                // SAFETY: fresh private allocation, retired once.
                unsafe { retire(p) };
            }
        }
        flush_all();
        assert_eq!(drops.load(Relaxed), N);
    }

    #[test]
    fn free_now_drops_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let p = alloc(DropCounter(Arc::clone(&drops)));
        // SAFETY: fresh private allocation.
        unsafe { free_now(p) };
        assert_eq!(drops.load(Relaxed), 1);
    }

    /// `epoch_stats` reflects pinning pressure and bag growth: a pinned
    /// thread shows up in `pinned_threads`, retires accumulate in
    /// `retire_bag_bytes` while the pin blocks reclamation, and an aging
    /// reservation registers a nonzero `oldest_reservation_age`; everything
    /// recovers once the pin drops.
    #[test]
    fn epoch_stats_tracks_pin_and_bag_pressure() {
        let g = pin();
        let stats = epoch_stats();
        assert!(stats.pinned_threads >= 1, "own pin not counted: {stats:?}");
        {
            let _inner = pin();
            for _ in 0..4 {
                let p = alloc([0u8; 256]);
                // SAFETY: fresh private allocation, retired once.
                unsafe { retire(p) };
            }
        }
        // Our own reservation blocks the reclamation floor, so our retires
        // must still be sitting in a bag — other test threads can free
        // *their* older items concurrently, but never these, so the global
        // byte gauge is at least our contribution.
        let stats = epoch_stats();
        assert!(
            stats.retire_bag_bytes >= 4 * 256,
            "retires not reflected in bag bytes: {stats:?}"
        );
        // Age the reservation: the one advance our pin permits moves the
        // epoch past the floor we hold; further advances are blocked.
        for _ in 0..3 {
            try_advance();
        }
        let stats = epoch_stats();
        assert!(
            stats.oldest_reservation_age >= 1,
            "aged pin shows no reservation age: {stats:?}"
        );
        drop(g);
        flush_all();
    }

    /// The pool counters ride along in `epoch_stats()`: pool traffic shows
    /// up in pages/hit-rate, and a retired pooled slot comes back to the
    /// allocator (cached or global) once the collector frees it.
    #[test]
    fn epoch_stats_surface_pool_counters() {
        // Generate warm pool traffic: the second alloc of the same class
        // must be a magazine hit.
        let p = alloc(7u64);
        // SAFETY: fresh private allocation.
        unsafe { free_now(p) };
        let q = alloc(9u64);
        // SAFETY: fresh private allocation.
        unsafe { free_now(q) };
        let stats = epoch_stats();
        assert!(stats.pool.pages_live >= 1, "no page carved: {stats:?}");
        assert!(
            stats.pool.magazine_hits >= 1,
            "warm alloc did not hit the magazine: {stats:?}"
        );
        assert!(stats.pool.global_refills >= 1);
        assert!(stats.pool.magazine_hit_rate() > 0.0);
        // Retired slots return to the pool once freed.
        {
            let _g = pin();
            let r = alloc(11u64);
            // SAFETY: fresh private allocation, retired once.
            unsafe { retire(r) };
        }
        flush_all();
        let stats = epoch_stats();
        assert!(stats.pool.slots_cached + stats.pool.slots_free_global >= 1);
    }

    #[test]
    fn stats_count_retires_and_frees() {
        let before = collector_stats();
        {
            let _g = pin();
            let p = alloc(17u64);
            // SAFETY: fresh private allocation, retired once.
            unsafe { retire(p) };
        }
        flush_all();
        let after = collector_stats();
        assert!(after.retired > before.retired);
        assert!(after.freed > before.freed);
    }
}
