//! RAII epoch pinning and helper epoch adoption.
//!
//! The per-thread pin state (`pin_depth`, `ops_since_collect`) lives in
//! [`flock_sync::ThreadCtx`] — the workspace-wide single thread-local — so
//! a caller that already holds the context can pin with [`pin_with`]
//! without another TLS access.

use flock_sync::atomic::{Ordering, fence};
use flock_sync::{ThreadCtx, thread_ctx, tid};

use crate::collector::{self, QUIESCENT};

/// Model-only sanity mutants (see `flock-model`). Compiled out of every
/// non-`model` build.
#[cfg(feature = "model")]
pub mod mutants {
    use core::sync::atomic::{AtomicBool, Ordering};

    /// Skip the pin-publication `SeqCst` fence (and its post-fence
    /// re-validation): the reservation store stays in the pinning thread's
    /// store buffer, a concurrent collector scan misses it, and an object
    /// the pinned thread still references gets freed — the exact
    /// use-after-free the fence pairing exists to exclude.
    pub static SKIP_PIN_FENCE: AtomicBool = AtomicBool::new(false);

    pub(crate) fn skip_pin_fence() -> bool {
        SKIP_PIN_FENCE.load(Ordering::Relaxed)
    }
}

/// Collect this thread's bag every N outermost unpins.
const COLLECT_PERIOD: usize = 128;

pub(crate) fn is_pinned() -> bool {
    thread_ctx::with(|tc| tc.pin_depth.get() > 0)
}

/// RAII guard marking the calling thread as *inside an operation*.
///
/// While any guard lives, objects that were reachable when the outermost
/// guard was created will not be freed. Guards nest; only the outermost one
/// publishes and clears the reservation.
///
/// `!Send`/`!Sync` (the raw-pointer marker): the guard owns a slice of the
/// *creating* thread's state — its `ThreadCtx` pin depth and its
/// reservation slot — so dropping it from another thread would decrement
/// the wrong thread's pin depth and clear a reservation that still
/// protects the first thread's accesses.
#[derive(Debug)]
pub struct EpochGuard {
    tid: tid::ThreadId,
    outermost: bool,
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pin the current thread: enter the current global epoch.
pub fn pin() -> EpochGuard {
    thread_ctx::with(pin_with)
}

/// [`pin`] for callers that already fetched the thread context (the lock
/// hot path does exactly one TLS access per operation and passes the
/// context down by reference).
pub fn pin_with(tc: &ThreadCtx) -> EpochGuard {
    let depth = tc.pin_depth.get();
    tc.pin_depth.set(depth + 1);
    let me = tc.tid();
    if depth == 0 {
        let res = collector::reservation_of(me);
        // Publish a reservation equal to the epoch we observe; re-read to
        // make sure the published value was current when published.
        //
        // Ordering: the store can be Relaxed because the SeqCst fence is
        // the linearization point of pin publication — a collector scan
        // whose own SeqCst fence follows ours must observe the reservation
        // (store is sequenced before our fence), and a scan that precedes
        // ours may miss it but then its epoch-advance CAS (SeqCst) is
        // observed by the post-fence re-read below, which retries. Either
        // way no advance can outrun a returned pin by more than the one
        // epoch the two-epoch reclamation slack already budgets for.
        loop {
            let e = collector::global_epoch().load(Ordering::Relaxed);
            res.store(e, Ordering::Relaxed);
            #[cfg(feature = "model")]
            if mutants::skip_pin_fence() {
                break;
            }
            fence(Ordering::SeqCst);
            // Post-fence re-read: sees every epoch-advance CAS that is
            // SeqCst-ordered before our fence (C++20 fence rule).
            if collector::global_epoch().load(Ordering::Relaxed) == e {
                break;
            }
        }
        // Chaos seam: reservation just published — a stall here is a
        // forever-pinned thread, the case the collector must degrade
        // gracefully under (bags grow bounded-and-reported, never freed
        // out from under the reservation). No-op in default builds.
        flock_sync::chaos::probe(flock_sync::chaos::Seam::EpochPinned);
    }
    EpochGuard {
        tid: me,
        outermost: depth == 0,
        _not_send: std::marker::PhantomData,
    }
}

/// The epoch currently reserved by this thread, if pinned.
pub fn pinned_epoch() -> Option<u64> {
    if !is_pinned() {
        return None;
    }
    // Ordering: Relaxed — reading our own thread's reservation (coherence
    // guarantees we see our own latest store).
    let v = collector::reservation_of(tid::current()).load(Ordering::Relaxed);
    (v != QUIESCENT).then_some(v)
}

impl EpochGuard {
    /// The epoch this thread has reserved.
    #[inline]
    pub fn epoch(&self) -> u64 {
        // Ordering: Relaxed — own-thread reservation (see pinned_epoch).
        collector::reservation_of(self.tid).load(Ordering::Relaxed)
    }

    /// Temporarily lower this thread's reservation to
    /// `min(current, target_epoch)` — *epoch adoption* for helping.
    ///
    /// The returned [`AdoptGuard`] restores the previous reservation on drop.
    /// A `SeqCst` fence is issued after publishing the lowered reservation;
    /// the caller **must revalidate** (re-read the lock word / descriptor
    /// state) after this call and before dereferencing anything protected by
    /// the adopted epoch.
    #[inline]
    pub fn adopt(&self, target_epoch: u64) -> AdoptGuard {
        let res = collector::reservation_of(self.tid);
        // Ordering: Relaxed load (own reservation) and Relaxed store — the
        // SeqCst fence below is the publication point, exactly as in
        // `pin_with`: any collector scan that must not miss the lowered
        // reservation has a fence ordered after ours; one that precedes
        // ours is answered by the caller's mandatory revalidation read.
        let prev = res.load(Ordering::Relaxed);
        let lowered = prev.min(target_epoch);
        if lowered != prev {
            res.store(lowered, Ordering::Relaxed);
        }
        fence(Ordering::SeqCst);
        AdoptGuard {
            tid: self.tid,
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        let due = thread_ctx::with(|tc| {
            tc.pin_depth.set(tc.pin_depth.get() - 1);
            if !self.outermost {
                return false;
            }
            // Ordering: Release — the operation's reads and writes of
            // protected objects are sequenced before this clear; a
            // collector that observes QUIESCENT acquires them (via the
            // trailing acquire fence of its scan) before freeing, so no
            // free can race an in-flight access from this section.
            collector::reservation_of(self.tid).store(QUIESCENT, Ordering::Release);
            let v = tc.ops_since_collect.get() + 1;
            if v >= COLLECT_PERIOD {
                tc.ops_since_collect.set(0);
                true
            } else {
                tc.ops_since_collect.set(v);
                false
            }
        });
        if due {
            collector::try_advance();
            collector::collect_local();
        }
    }
}

/// Restores the pre-adoption reservation on drop. See [`EpochGuard::adopt`].
///
/// `!Send`/`!Sync` for the same reason as [`EpochGuard`]: its drop writes
/// the creating thread's reservation slot.
#[derive(Debug)]
pub struct AdoptGuard {
    tid: tid::ThreadId,
    prev: u64,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        // Ordering: Release — raising the reservation back must not become
        // visible before the helping section's accesses are done, same
        // argument as the EpochGuard unpin store.
        collector::reservation_of(self.tid).store(self.prev, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_publishes_and_clears() {
        assert_eq!(pinned_epoch(), None);
        {
            let g = pin();
            assert!(pinned_epoch().is_some());
            assert_eq!(pinned_epoch(), Some(g.epoch()));
        }
        assert_eq!(pinned_epoch(), None);
    }

    #[test]
    fn nested_pins_share_reservation() {
        let g1 = pin();
        let e1 = g1.epoch();
        {
            let g2 = pin();
            assert_eq!(g2.epoch(), e1, "inner guard must not re-reserve");
        }
        assert!(is_pinned());
        drop(g1);
        assert!(!is_pinned());
    }

    #[test]
    fn pin_with_context_matches_pin() {
        let g = flock_sync::thread_ctx::with(pin_with);
        assert!(is_pinned());
        assert_eq!(pinned_epoch(), Some(g.epoch()));
        drop(g);
        assert!(!is_pinned());
    }

    #[test]
    fn adopt_lowers_then_restores() {
        let g = pin();
        let e = g.epoch();
        {
            let _a = g.adopt(e.saturating_sub(2));
            assert_eq!(g.epoch(), e.saturating_sub(2));
            {
                // Nested adoption (helping chains) keeps the minimum.
                let _a2 = g.adopt(e); // higher target: no-op
                assert_eq!(g.epoch(), e.saturating_sub(2));
            }
            assert_eq!(g.epoch(), e.saturating_sub(2));
        }
        assert_eq!(g.epoch(), e, "restored after adoption ends");
    }

    #[test]
    fn adopt_never_raises() {
        let g = pin();
        let e = g.epoch();
        let _a = g.adopt(e + 10);
        assert_eq!(g.epoch(), e);
    }
}
