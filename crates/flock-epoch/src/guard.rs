//! RAII epoch pinning and helper epoch adoption.

use std::cell::Cell;
use std::sync::atomic::{Ordering, fence};

use flock_sync::tid;

use crate::collector::{self, QUIESCENT};

thread_local! {
    /// Nesting depth of `pin()` on this thread.
    static PIN_DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Operations completed since the last collection attempt.
    static OPS_SINCE_COLLECT: Cell<usize> = const { Cell::new(0) };
}

/// Collect this thread's bag every N outermost unpins.
const COLLECT_PERIOD: usize = 128;

pub(crate) fn is_pinned() -> bool {
    PIN_DEPTH.with(|d| d.get() > 0)
}

/// RAII guard marking the calling thread as *inside an operation*.
///
/// While any guard lives, objects that were reachable when the outermost
/// guard was created will not be freed. Guards nest; only the outermost one
/// publishes and clears the reservation.
#[derive(Debug)]
pub struct EpochGuard {
    tid: tid::ThreadId,
    outermost: bool,
}

/// Pin the current thread: enter the current global epoch.
pub fn pin() -> EpochGuard {
    let me = tid::current();
    let depth = PIN_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    if depth == 0 {
        let res = collector::reservation_of(me);
        // Publish a reservation equal to the epoch we observe; re-read to
        // make sure the published value was current when published.
        loop {
            let e = collector::global_epoch().load(Ordering::SeqCst);
            res.store(e, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            if collector::global_epoch().load(Ordering::SeqCst) == e {
                break;
            }
        }
    }
    EpochGuard {
        tid: me,
        outermost: depth == 0,
    }
}

/// The epoch currently reserved by this thread, if pinned.
pub fn pinned_epoch() -> Option<u64> {
    if !is_pinned() {
        return None;
    }
    let v = collector::reservation_of(tid::current()).load(Ordering::SeqCst);
    (v != QUIESCENT).then_some(v)
}

impl EpochGuard {
    /// The epoch this thread has reserved.
    #[inline]
    pub fn epoch(&self) -> u64 {
        collector::reservation_of(self.tid).load(Ordering::SeqCst)
    }

    /// Temporarily lower this thread's reservation to
    /// `min(current, target_epoch)` — *epoch adoption* for helping.
    ///
    /// The returned [`AdoptGuard`] restores the previous reservation on drop.
    /// A `SeqCst` fence is issued after publishing the lowered reservation;
    /// the caller **must revalidate** (re-read the lock word / descriptor
    /// state) after this call and before dereferencing anything protected by
    /// the adopted epoch.
    #[inline]
    pub fn adopt(&self, target_epoch: u64) -> AdoptGuard {
        let res = collector::reservation_of(self.tid);
        let prev = res.load(Ordering::SeqCst);
        let lowered = prev.min(target_epoch);
        if lowered != prev {
            res.store(lowered, Ordering::SeqCst);
        }
        fence(Ordering::SeqCst);
        AdoptGuard {
            tid: self.tid,
            prev,
        }
    }
}

impl Drop for EpochGuard {
    fn drop(&mut self) {
        PIN_DEPTH.with(|d| d.set(d.get() - 1));
        if self.outermost {
            collector::reservation_of(self.tid).store(QUIESCENT, Ordering::SeqCst);
            let due = OPS_SINCE_COLLECT.with(|c| {
                let v = c.get() + 1;
                if v >= COLLECT_PERIOD {
                    c.set(0);
                    true
                } else {
                    c.set(v);
                    false
                }
            });
            if due {
                collector::try_advance();
                collector::collect_local();
            }
        }
    }
}

/// Restores the pre-adoption reservation on drop. See [`EpochGuard::adopt`].
#[derive(Debug)]
pub struct AdoptGuard {
    tid: tid::ThreadId,
    prev: u64,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        collector::reservation_of(self.tid).store(self.prev, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_publishes_and_clears() {
        assert_eq!(pinned_epoch(), None);
        {
            let g = pin();
            assert!(pinned_epoch().is_some());
            assert_eq!(pinned_epoch(), Some(g.epoch()));
        }
        assert_eq!(pinned_epoch(), None);
    }

    #[test]
    fn nested_pins_share_reservation() {
        let g1 = pin();
        let e1 = g1.epoch();
        {
            let g2 = pin();
            assert_eq!(g2.epoch(), e1, "inner guard must not re-reserve");
        }
        assert!(is_pinned());
        drop(g1);
        assert!(!is_pinned());
    }

    #[test]
    fn adopt_lowers_then_restores() {
        let g = pin();
        let e = g.epoch();
        {
            let _a = g.adopt(e.saturating_sub(2));
            assert_eq!(g.epoch(), e.saturating_sub(2));
            {
                // Nested adoption (helping chains) keeps the minimum.
                let _a2 = g.adopt(e); // higher target: no-op
                assert_eq!(g.epoch(), e.saturating_sub(2));
            }
            assert_eq!(g.epoch(), e.saturating_sub(2));
        }
        assert_eq!(g.epoch(), e, "restored after adoption ends");
    }

    #[test]
    fn adopt_never_raises() {
        let g = pin();
        let e = g.epoch();
        let _a = g.adopt(e + 10);
        assert_eq!(g.epoch(), e);
    }
}
