//! Epoch-managed indirection: the *fat value* strategy of the
//! [`flock_sync::ValueRepr`] representation layer.
//!
//! A value wrapped in [`Indirect<T>`] is stored behind a pointer in the
//! 48-bit payload of a packed word: `encode` boxes the value through this
//! crate's [`alloc`](crate::alloc) choke point, `decode` clones a snapshot
//! out of the live allocation, and the reclamation hooks route through the
//! epoch collector. The grace period is what makes overwrite-in-place sound
//! in the presence of the paper's helping protocol: a helper replaying a
//! thunk re-reads the *committed* packed word from the log and decodes the
//! allocation it points to — which therefore must survive until every
//! thread that could replay (all epoch-pinned at or before the overwrite)
//! has moved on. `retire_bits` provides exactly that; `dealloc_bits` is the
//! immediate path for encodings that never escaped (losers of an
//! idempotent-encode race, exclusive teardown).
//!
//! Decision rule (also in EXPERIMENTS.md §6): if your value type fits 48
//! bits, use it directly (inline repr, zero cost — the historical fast
//! path); otherwise wrap it in `Indirect<T>` and pay one allocation per
//! stored value plus a clone per read.

use flock_sync::{VAL_MASK, ValueRepr};

/// Wrapper selecting the indirect (heap, epoch-reclaimed) value
/// representation for `T`. See the module docs.
///
/// `Indirect<T>` is a transparent newtype: construct with `Indirect(v)`,
/// read through `.0`. It derives the comparison/printing traits from `T`,
/// so any `Clone + PartialEq + Debug + Send + Sync + 'static` payload — a
/// 32-byte struct, a `String`, a `Vec` — can serve as a map value.
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Indirect<T>(pub T);

impl<T> Indirect<T> {
    /// Consume the wrapper, returning the payload.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> From<T> for Indirect<T> {
    fn from(v: T) -> Self {
        Indirect(v)
    }
}

// SAFETY: `encode` boxes through `alloc` and returns the (≤48-bit,
// debug-checked) address; `decode` clones from the allocation, which the
// contract keeps alive (un-reclaimed + caller epoch-pinned); `retire_bits`
// defers the drop past every possible reader via the collector and
// `dealloc_bits` drops immediately, each consuming the single ownership of
// the allocation — so every encoding is dropped exactly once.
unsafe impl<T: Clone + PartialEq + Send + Sync + 'static> ValueRepr for Indirect<T> {
    const INDIRECT: bool = true;

    #[inline]
    fn encode(v: Self) -> u64 {
        let bits = crate::alloc(v.0) as u64;
        debug_assert!(bits <= VAL_MASK, "allocation {bits:#x} exceeds 48 bits");
        bits
    }

    #[inline]
    unsafe fn decode(bits: u64) -> Self {
        // SAFETY: `bits` is an `alloc::<T>` address per the trait contract,
        // alive because the caller is pinned and the encoding un-reclaimed.
        Indirect(unsafe { &*(bits as usize as *const T) }.clone())
    }

    #[inline]
    unsafe fn retire_bits(bits: u64) {
        // SAFETY: forwarded contract (unlinked, retired once, caller
        // pinned).
        unsafe { crate::retire(bits as usize as *mut T) };
    }

    #[inline]
    unsafe fn dealloc_bits(bits: u64) {
        // SAFETY: forwarded contract (never published / exclusively owned).
        unsafe { crate::free_now(bits as usize as *mut T) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

    #[test]
    fn encode_decode_roundtrip_fat_payload() {
        let v = Indirect([1u64, 2, 3, 4]);
        let bits = <Indirect<[u64; 4]> as ValueRepr>::encode(v.clone());
        // SAFETY: bits from encode, not yet reclaimed.
        let back = unsafe { <Indirect<[u64; 4]> as ValueRepr>::decode(bits) };
        assert_eq!(back, v);
        // SAFETY: bits from encode, never published.
        unsafe { <Indirect<[u64; 4]> as ValueRepr>::dealloc_bits(bits) };
    }

    #[test]
    fn retire_defers_drop_until_flush() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone, PartialEq)]
        struct Bomb(u64);
        impl Drop for Bomb {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Relaxed);
            }
        }
        let before = DROPS.load(Relaxed);
        let bits = <Indirect<Bomb> as ValueRepr>::encode(Indirect(Bomb(9)));
        {
            let _g = crate::pin();
            // SAFETY: bits from encode, unlinked, retired once, pinned.
            unsafe { <Indirect<Bomb> as ValueRepr>::retire_bits(bits) };
        }
        crate::flush_all();
        assert_eq!(DROPS.load(Relaxed), before + 1, "dropped exactly once");
    }

    #[test]
    fn heap_values_work() {
        let v = Indirect(String::from("a value that cannot fit 48 bits"));
        let bits = <Indirect<String> as ValueRepr>::encode(v.clone());
        // SAFETY: bits from encode, not yet reclaimed.
        assert_eq!(unsafe { <Indirect<String> as ValueRepr>::decode(bits) }, v);
        // SAFETY: never published.
        unsafe { <Indirect<String> as ValueRepr>::dealloc_bits(bits) };
    }
}
