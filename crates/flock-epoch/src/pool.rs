//! Paged slab pool with per-thread magazine caches.
//!
//! Every Flock node and every `Indirect<T>` fat value used to round-trip
//! the global heap (`Box::new` on alloc, `Box::from_raw` on free), so
//! allocator traffic dominated the very paths the paper's approach makes
//! cheap. This module replaces the heap round-trip with a two-level pool:
//!
//! * **Pages.** A global pool per size class hands out [`PAGE_SIZE`] pages
//!   (from `std::alloc`, [`PAGE_ALIGN`]-aligned) carved into fixed-size
//!   slots. Pages are immortal: once carved, their slots circulate between
//!   magazines and the global free stacks forever. A static registry keeps
//!   every page reachable, which bounds the design to "pages live ==
//!   high-water concurrent footprint" and keeps miri's leak check honest.
//! * **Magazines.** Each thread caches up to [`MAG_CAP`] free slots per
//!   class as an intrusive singly-linked list hung off the one-TLS
//!   [`ThreadCtx`] in `flock-sync` (a free slot's first word stores the
//!   next pointer). The steady state is a pure TLS pop/push with zero
//!   shared-memory traffic; the global pool is touched only in batches of
//!   [`BATCH`] on magazine underflow/overflow, and a thread's magazines
//!   are flushed to the global pool when it exits (via the registered
//!   `thread_ctx` exit hook), so churning threads leak nothing.
//!
//! Size classes are selected **at compile time** per `T`
//! ([`class_for`] is a `const fn` used in inline-`const` position), so the
//! alloc/free/retire fast paths carry no size dispatch. Types larger than
//! the biggest class (or zero-sized) fall back to plain `Box` — the
//! fallback is encoded in the same compile-time choice, so a `T` is
//! always freed the way it was allocated.
//!
//! ## Why pooled slots are safe under idempotent replay
//!
//! `flock_core::idemp::alloc` lets every runner of a thunk allocate and
//! then CAS-commits exactly one pointer into the log; losers call
//! [`crate::free_now`] on their never-published copy. With the pool, a
//! loser's slot goes straight back into its magazine and is typically
//! handed out again by the *next* replayed allocation — that is fine
//! precisely because the loser's copy was never published: no other
//! thread can hold a reference to it. Published slots still ride the
//! epoch collector ([`crate::retire`]) and only return to a magazine once
//! no in-flight operation can reach them, exactly as before. The pool
//! changes where bytes come from, never when they become reusable.

use std::sync::Mutex;
use std::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize, Ordering};

use flock_sync::ThreadCtx;
use flock_sync::thread_ctx::{self, POOL_CLASSES};

/// Slot sizes in bytes, one global free stack + per-thread magazine each.
/// Powers of two, so any `T` with `size <= class` also has
/// `align <= class` (Rust guarantees `align <= size` for sized types and
/// both are powers of two), and slots at class-multiple offsets within a
/// [`PAGE_ALIGN`]-aligned page are automatically aligned for `T`.
pub(crate) const CLASS_SIZES: [usize; POOL_CLASSES] = [16, 32, 64, 128, 256, 512, 1024];

/// Bytes per page handed out by the global pool.
const PAGE_SIZE: usize = 16 * 1024;
/// Page alignment; ≥ every class size so slot alignment comes for free.
const PAGE_ALIGN: usize = 4096;
/// Magazine capacity per class: past this, a push flushes a batch.
const MAG_CAP: u32 = 64;
/// Slots moved per magazine refill/flush against the global pool.
const BATCH: u32 = 32;

/// Compile-time size-class choice for `T`: `Some(class)` when `T` is
/// pooled, `None` when it falls back to `Box` (zero-sized or larger than
/// the biggest class). Callers evaluate this in inline-`const` position so
/// the dispatch is free at runtime.
pub(crate) const fn class_for<T>() -> Option<usize> {
    let (size, align) = (size_of::<T>(), align_of::<T>());
    if size == 0 {
        return None;
    }
    let mut c = 0;
    while c < POOL_CLASSES {
        if size <= CLASS_SIZES[c] && align <= CLASS_SIZES[c] {
            return Some(c);
        }
        c += 1;
    }
    None
}

/// A slot or page pointer parked in a global container.
struct Ptr(*mut u8);
// SAFETY: a parked slot/page is free memory owned by the pool; the
// containers are lock-protected and pointers are handed to one thread at
// a time.
unsafe impl Send for Ptr {}

struct GlobalPool {
    /// Free slots per class, fed by magazine flushes and fresh pages.
    free: [Mutex<Vec<Ptr>>; POOL_CLASSES],
    /// Every page ever allocated (never freed): stats + leak-check root.
    pages: Mutex<Vec<Ptr>>,
}

static GLOBAL_POOL: GlobalPool = GlobalPool {
    free: [const { Mutex::new(Vec::new()) }; POOL_CLASSES],
    pages: Mutex::new(Vec::new()),
};

// Pool counters. None is touched on the magazine hit path: gauges move at
// refill/flush batch boundaries, hits accumulate in a `ThreadCtx` cell
// and are published at those same boundaries (and at thread exit).
static PAGES_LIVE: AtomicUsize = AtomicUsize::new(0);
/// Signed: between publish boundaries the per-thread deltas are unknown,
/// so concurrent publishes can transiently dip the sum below zero;
/// reporting clamps at 0.
static SLOTS_CACHED: AtomicIsize = AtomicIsize::new(0);
static GLOBAL_REFILLS: AtomicUsize = AtomicUsize::new(0);
static MAG_HITS: AtomicU64 = AtomicU64::new(0);
static MAG_MISSES: AtomicU64 = AtomicU64::new(0);
static FALLBACK_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Allocate one slot of `class`. Magazine pop on the fast path; refills
/// from the global pool (carving a fresh page if needed) on miss.
#[inline]
pub(crate) fn alloc_slot(class: usize) -> *mut u8 {
    thread_ctx::try_with(|tc| {
        let head = tc.pool_heads[class].get();
        if head.is_null() {
            refill_and_pop(tc, class)
        } else {
            // SAFETY: a chained free slot stores the next pointer in its
            // first word (every class is ≥ pointer-sized and -aligned).
            let next = unsafe { head.cast::<*mut u8>().read() };
            tc.pool_heads[class].set(next);
            tc.pool_counts[class].set(tc.pool_counts[class].get() - 1);
            tc.pool_hits.set(tc.pool_hits.get() + 1);
            head
        }
    })
    // TLS teardown (e.g. an allocation from another destructor): skip the
    // magazine and take one slot straight from the global pool.
    .unwrap_or_else(|| {
        take_global(class, 1)
            .pop()
            .map_or_else(std::ptr::null_mut, |p| p.0)
    })
}

/// Return one slot of `class`. Magazine push on the fast path; flushes a
/// batch to the global pool past [`MAG_CAP`], or goes straight to the
/// global pool during TLS teardown.
#[inline]
pub(crate) fn free_slot(p: *mut u8, class: usize) {
    let pushed = thread_ctx::try_with(|tc| {
        // A free-only thread can fill a magazine without ever refilling,
        // so the exit-flush hook must be ensured here too (cheap: one
        // `Relaxed` load once registered).
        thread_ctx::register_thread_exit_hook(flush_thread_magazines);
        let head = tc.pool_heads[class].get();
        // SAFETY: `p` is a dead slot of `class` (caller contract); writing
        // the next pointer into its first word is the intrusive-list link.
        unsafe { p.cast::<*mut u8>().write(head) };
        tc.pool_heads[class].set(p);
        let n = tc.pool_counts[class].get() + 1;
        tc.pool_counts[class].set(n);
        if n > MAG_CAP {
            flush_batch(tc, class);
        }
    });
    if pushed.is_none() {
        let mut free = GLOBAL_POOL.free[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        free.push(Ptr(p));
    }
}

/// Magazine miss: publish stats, pull a batch from the global pool
/// (carving a page if it runs dry) and hand one slot out.
#[cold]
fn refill_and_pop(tc: &ThreadCtx, class: usize) -> *mut u8 {
    thread_ctx::register_thread_exit_hook(flush_thread_magazines);
    MAG_MISSES.fetch_add(1, Ordering::Relaxed);
    GLOBAL_REFILLS.fetch_add(1, Ordering::Relaxed);
    let batch = take_global(class, BATCH as usize + 1);
    debug_assert!(!batch.is_empty());
    let mut out: *mut u8 = std::ptr::null_mut();
    let mut cached = 0u32;
    for Ptr(slot) in batch {
        if out.is_null() {
            out = slot;
            continue;
        }
        // SAFETY: free slot owned by us; first word is the list link.
        unsafe { slot.cast::<*mut u8>().write(tc.pool_heads[class].get()) };
        tc.pool_heads[class].set(slot);
        cached += 1;
    }
    tc.pool_counts[class].set(tc.pool_counts[class].get() + cached);
    publish_counters(tc);
    out
}

/// Pop up to `want` slots from the global free stack, carving a fresh
/// page into it first when it holds fewer.
fn take_global(class: usize, want: usize) -> Vec<Ptr> {
    let mut free = GLOBAL_POOL.free[class]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if free.len() < want {
        carve_page(class, &mut free);
    }
    let n = want.min(free.len());
    let at = free.len() - n;
    free.split_off(at)
}

/// Allocate one page and push its slots onto `free` (lock held by caller).
fn carve_page(class: usize, free: &mut Vec<Ptr>) {
    let layout = std::alloc::Layout::from_size_align(PAGE_SIZE, PAGE_ALIGN)
        .expect("flock-epoch pool: bad page layout");
    // SAFETY: non-zero-sized, valid layout.
    let page = unsafe { std::alloc::alloc(layout) };
    assert!(!page.is_null(), "flock-epoch pool: page allocation failed");
    let slot_size = CLASS_SIZES[class];
    let slots = PAGE_SIZE / slot_size;
    free.reserve(slots);
    for i in 0..slots {
        // SAFETY: offsets stay within the PAGE_SIZE allocation.
        free.push(Ptr(unsafe { page.add(i * slot_size) }));
    }
    GLOBAL_POOL
        .pages
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Ptr(page));
    PAGES_LIVE.fetch_add(1, Ordering::Relaxed);
}

/// Flush one [`BATCH`] of slots from a magazine to the global pool.
#[cold]
fn flush_batch(tc: &ThreadCtx, class: usize) {
    let mut moved = Vec::with_capacity(BATCH as usize);
    let mut head = tc.pool_heads[class].get();
    while moved.len() < BATCH as usize && !head.is_null() {
        // SAFETY: chained free slot; first word is the list link.
        let next = unsafe { head.cast::<*mut u8>().read() };
        moved.push(Ptr(head));
        head = next;
    }
    tc.pool_heads[class].set(head);
    tc.pool_counts[class].set(tc.pool_counts[class].get() - moved.len() as u32);
    publish_counters(tc);
    GLOBAL_POOL.free[class]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .append(&mut moved);
}

/// Thread-exit hook (registered with `flock_sync::thread_ctx`): hand every
/// cached slot back to the global pool so exiting threads leak nothing.
fn flush_thread_magazines(tc: &ThreadCtx) {
    for class in 0..POOL_CLASSES {
        let mut head = tc.pool_heads[class].get();
        if head.is_null() {
            continue;
        }
        let mut moved = Vec::with_capacity(tc.pool_counts[class].get() as usize);
        while !head.is_null() {
            // SAFETY: chained free slot; first word is the list link.
            let next = unsafe { head.cast::<*mut u8>().read() };
            moved.push(Ptr(head));
            head = next;
        }
        tc.pool_heads[class].set(std::ptr::null_mut());
        tc.pool_counts[class].set(0);
        GLOBAL_POOL.free[class]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(&mut moved);
    }
    publish_counters(tc);
}

/// Publish this thread's pending hit count and cached-slot gauge delta.
/// Called at batch boundaries (refill/flush) and thread exit, so the hot
/// magazine paths touch no shared counters; the global gauges trail a live
/// thread by at most one magazine's worth.
fn publish_counters(tc: &ThreadCtx) {
    let h = tc.pool_hits.replace(0);
    if h > 0 {
        MAG_HITS.fetch_add(h, Ordering::Relaxed);
    }
    let now: usize = tc.pool_counts.iter().map(|c| c.get() as usize).sum();
    let was = tc.pool_cached_published.replace(now);
    if now != was {
        SLOTS_CACHED.fetch_add(now as isize - was as isize, Ordering::Relaxed);
    }
}

/// Count one `Box` fallback allocation (type outside every size class).
#[inline]
pub(crate) fn count_fallback_alloc() {
    FALLBACK_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Class byte meaning "not pooled": the item's dropper frees the heap
/// allocation itself and the collector returns no slot.
pub(crate) const NO_CLASS: u8 = u8::MAX;

/// Compile-time class byte for a retired `T`: its pool class, or
/// [`NO_CLASS`] for `Box`-fallback types. The collector uses this to route
/// freed slots into the batched magazine return without any per-item type
/// dispatch.
pub(crate) const fn retired_class<T>() -> u8 {
    match class_for::<T>() {
        Some(c) => c as u8,
        None => NO_CLASS,
    }
}

unsafe fn drop_in_slot<T>(p: *mut u8) {
    // SAFETY: `p` came from `alloc_slot` via `crate::alloc` (retire's
    // contract) and holds a valid `T`; dropped once. The slot itself is
    // returned by the collector via `retired_class`.
    unsafe { std::ptr::drop_in_place(p.cast::<T>()) }
}

unsafe fn drop_boxed<T>(p: *mut u8) {
    // SAFETY: fallback `T`s were allocated with `Box::new` (see
    // `crate::alloc`); this both drops and frees.
    drop(unsafe { Box::from_raw(p.cast::<T>()) })
}

/// Compile-time drop glue for a retired `T`. `None` for pooled types with
/// no drop glue — the common node case — so the collector's free loop
/// skips the indirect call entirely and just reclaims the slot.
pub(crate) const fn retired_dropper<T>() -> Option<unsafe fn(*mut u8)> {
    match class_for::<T>() {
        Some(_) => {
            if std::mem::needs_drop::<T>() {
                Some(drop_in_slot::<T>)
            } else {
                None
            }
        }
        None => Some(drop_boxed::<T>),
    }
}

/// Point-in-time pool counters; see [`crate::EpochStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Pages carved so far (pages are immortal, so this is the footprint
    /// high-water mark in [`PAGE_SIZE`]-byte units).
    pub pages_live: usize,
    /// Slots currently cached in thread magazines, across all threads and
    /// classes (gauge, maintained at refill/flush/exit boundaries).
    pub slots_cached: usize,
    /// Slots currently parked in the global free stacks.
    pub slots_free_global: usize,
    /// Magazine refills served from the global pool since process start.
    pub global_refills: usize,
    /// Allocations served from a magazine (published at batch boundaries,
    /// so trailing by at most one batch per thread).
    pub magazine_hits: u64,
    /// Allocations that missed the magazine and refilled.
    pub magazine_misses: u64,
    /// Allocations that bypassed the pool entirely (no size class fits).
    pub fallback_allocs: usize,
}

impl PoolStats {
    /// Fraction of pool allocations served from a thread magazine.
    pub fn magazine_hit_rate(&self) -> f64 {
        let total = self.magazine_hits + self.magazine_misses;
        if total == 0 {
            0.0
        } else {
            self.magazine_hits as f64 / total as f64
        }
    }
}

/// Snapshot of the slab pool counters.
pub fn pool_stats() -> PoolStats {
    // Publish the calling thread's pending counters so single-threaded
    // tests see their own traffic without forcing a batch boundary.
    let _ = thread_ctx::try_with(publish_counters);
    let slots_free_global = GLOBAL_POOL
        .free
        .iter()
        .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).len())
        .sum();
    PoolStats {
        pages_live: PAGES_LIVE.load(Ordering::Relaxed),
        slots_cached: SLOTS_CACHED.load(Ordering::Relaxed).max(0) as usize,
        slots_free_global,
        global_refills: GLOBAL_REFILLS.load(Ordering::Relaxed),
        magazine_hits: MAG_HITS.load(Ordering::Relaxed),
        magazine_misses: MAG_MISSES.load(Ordering::Relaxed),
        fallback_allocs: FALLBACK_ALLOCS.load(Ordering::Relaxed),
    }
}

/// Model-engine worker reset: drain the calling thread's magazines to the
/// global pool (as thread exit would), so every model execution starts
/// with empty magazines and the DFS replays deterministically.
#[cfg(feature = "model")]
pub(crate) fn model_drain_magazines() {
    let _ = thread_ctx::try_with(flush_thread_magazines);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_matches_thread_ctx() {
        assert_eq!(CLASS_SIZES.len(), POOL_CLASSES);
        // Monotone powers of two: the alignment-for-free argument needs it.
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for c in CLASS_SIZES {
            assert!(c.is_power_of_two() && c >= size_of::<*mut u8>());
        }
    }

    #[test]
    fn class_selection_covers_the_interesting_types() {
        assert_eq!(class_for::<u64>(), Some(0));
        assert_eq!(class_for::<[u64; 2]>(), Some(0));
        assert_eq!(class_for::<[u64; 4]>(), Some(1));
        assert_eq!(class_for::<[u8; 1024]>(), Some(6));
        assert_eq!(class_for::<[u8; 1025]>(), None, "past the biggest class");
        assert_eq!(class_for::<()>(), None, "zero-sized");
        #[repr(align(2048))]
        struct Over(#[allow(dead_code)] [u8; 16]);
        assert_eq!(class_for::<Over>(), None, "over-aligned");
    }

    #[test]
    fn magazine_recycles_lifo() {
        let a = alloc_slot(2);
        free_slot(a, 2);
        let b = alloc_slot(2);
        assert_eq!(a, b, "freed slot should be the next handed out");
        free_slot(b, 2);
    }

    #[test]
    fn magazine_overflow_flushes_to_global() {
        // Move more than MAG_CAP slots through free: the magazine must
        // shed batches to the global pool rather than grow unboundedly.
        let class = 3;
        let slots: Vec<_> = (0..(MAG_CAP as usize * 2))
            .map(|_| alloc_slot(class))
            .collect();
        for s in slots {
            free_slot(s, class);
        }
        let cap = thread_ctx::with(|tc| tc.pool_counts[class].get());
        assert!(cap <= MAG_CAP, "magazine kept {cap} slots, cap {MAG_CAP}");
    }

    #[test]
    fn stats_track_pages_hits_and_refills() {
        let before = pool_stats();
        let mut slots = Vec::new();
        for _ in 0..8 {
            slots.push(alloc_slot(1));
        }
        for s in slots.drain(..) {
            free_slot(s, 1);
        }
        // Warm traffic after the first refill is all magazine hits.
        for _ in 0..8 {
            slots.push(alloc_slot(1));
        }
        for s in slots {
            free_slot(s, 1);
        }
        let after = pool_stats();
        assert!(after.pages_live >= 1);
        assert!(after.global_refills >= before.global_refills);
        assert!(
            after.magazine_hits > before.magazine_hits,
            "warm allocs should hit the magazine: {after:?}"
        );
        assert!(after.magazine_hit_rate() > 0.0);
    }

    #[test]
    fn exiting_thread_flushes_magazines_to_global_pool() {
        let class = 4;
        std::thread::spawn(move || {
            let slots: Vec<_> = (0..16).map(|_| alloc_slot(class)).collect();
            for s in slots {
                free_slot(s, class);
            }
            assert!(thread_ctx::with(|tc| tc.pool_counts[class].get()) >= 16);
        })
        .join()
        .unwrap();
        // The exited thread's slots must be back in the global pool (its
        // magazine count no longer exists to check, but the cached gauge
        // excludes them and the global stack gained them).
        let stats = pool_stats();
        assert!(
            stats.slots_free_global >= 16,
            "exited thread's magazine not flushed: {stats:?}"
        );
    }

    #[test]
    fn teardown_free_goes_to_global_pool() {
        // Simulate the TLS-teardown path: free_slot must not panic and the
        // slot must land in the global pool even without a magazine. We
        // can't easily destroy our own ThreadCtx here, so exercise the
        // fallback arm directly.
        let p = alloc_slot(0);
        let before = pool_stats().slots_free_global;
        let mut free = GLOBAL_POOL.free[0]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        free.push(Ptr(p));
        drop(free);
        assert_eq!(pool_stats().slots_free_global, before + 1);
    }
}
