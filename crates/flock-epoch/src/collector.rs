//! The global collector: epoch counter, reservations, retire bags.

use std::sync::Mutex;
// The retired/freed statistics counters stay plain std atomics: they are
// reporting state plus a cadence heuristic, not part of any reclamation
// safety argument, so the model checker does not schedule around them.
use std::sync::atomic::AtomicUsize;

use flock_sync::atomic::{AtomicU64, Ordering, fence};
use flock_sync::{CachePadded, MAX_THREADS, tid};

/// Reservation value meaning "thread not inside any operation".
pub const QUIESCENT: u64 = u64::MAX;

/// A retired allocation awaiting reclamation.
pub(crate) struct Retired {
    pub(crate) ptr: *mut u8,
    /// Drop glue only (`None` when `T` has none — the free loop then skips
    /// the indirect call). For pooled items the slot return is driven by
    /// `class`; for fallback items the dropper frees the heap allocation.
    pub(crate) dropper: Option<unsafe fn(*mut u8)>,
    /// Pool size class, or `pool::NO_CLASS` for `Box`-fallback items.
    /// Freed pooled slots are returned in one batched magazine push per
    /// collect pass instead of a TLS round-trip per item.
    pub(crate) class: u8,
    /// Global epoch at retire time.
    pub(crate) stamp: u64,
    /// `size_of` the retired allocation, for the bag-growth accounting in
    /// [`epoch_stats`] (heap payload only — boxes of a `T` count
    /// `size_of::<T>()`; any transitive owned memory is not walked).
    pub(crate) bytes: u32,
}

// SAFETY: a Retired is an owned, unlinked allocation; the collector is the
// only holder, and drop_fn is called exactly once on whichever thread frees.
unsafe impl Send for Retired {}

/// Collect (attempt free) once the local bag exceeds this many items.
const BAG_COLLECT_THRESHOLD: usize = 64;
/// Attempt a global epoch advance every this many retires.
const ADVANCE_PERIOD: usize = 32;

pub(crate) struct Global {
    epoch: CachePadded<AtomicU64>,
    reservations: [CachePadded<AtomicU64>; MAX_THREADS],
    /// Bags abandoned by exiting threads, reclaimed by anyone.
    orphans: Mutex<Vec<Retired>>,
    retired_count: AtomicUsize,
    freed_count: AtomicUsize,
    /// Bytes currently sitting in retire bags (local + orphan), i.e.
    /// retired-not-yet-freed. Grows without bound only while a reservation
    /// is stuck — which is exactly what [`epoch_stats`] exists to report.
    /// Like `retired_count`, fed from per-bag pending cells at collect
    /// boundaries (see [`LocalBag`]), so another thread's newest retires
    /// may lag by up to one collect threshold.
    bag_bytes: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const QUIESCENT_CELL: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(QUIESCENT));

static GLOBAL: Global = Global {
    epoch: CachePadded::new(AtomicU64::new(2)), // start > 0 so stamp-2 never underflows semantics
    reservations: [QUIESCENT_CELL; MAX_THREADS],
    orphans: Mutex::new(Vec::new()),
    retired_count: AtomicUsize::new(0),
    freed_count: AtomicUsize::new(0),
    bag_bytes: AtomicUsize::new(0),
};

pub(crate) fn global_epoch() -> &'static AtomicU64 {
    &GLOBAL.epoch
}

pub(crate) fn reservation_of(tid: tid::ThreadId) -> &'static AtomicU64 {
    &GLOBAL.reservations[tid.0]
}

/// Smallest active reservation, or the current global epoch if none.
///
/// ## Scan ordering
///
/// Reservation scans are bracketed by two fences instead of paying an
/// ordered load per slot:
///
/// * A leading `SeqCst` fence pairs with the `SeqCst` fence every pin /
///   adopt issues after publishing its reservation: whichever fence comes
///   first in the `SeqCst` total order decides — either our relaxed loads
///   must observe the published reservation, or the pinner's post-fence
///   re-validation observes our epoch state (see `guard::pin_with`).
/// * A trailing `Acquire` fence pairs with the `Release` stores that raise
///   or clear reservations on unpin: once a relaxed load here has seen a
///   thread leave an epoch, the fence makes that thread's preceding object
///   accesses happen-before anything we free afterwards.
///
/// Scans cover only `tid::scan_bound()` slots — the live bound of the
/// active-thread registry. A slot above the bound has no claimed thread; a
/// thread claiming it concurrently raises the bound (`SeqCst`) before its
/// pin fence, so the leading-fence case analysis covers the bound read too.
fn min_active_reservation() -> u64 {
    fence(Ordering::SeqCst);
    let bound = tid::scan_bound().min(MAX_THREADS);
    let mut min = GLOBAL.epoch.load(Ordering::Relaxed);
    for r in &GLOBAL.reservations[..bound] {
        let v = r.load(Ordering::Relaxed);
        if v != QUIESCENT && v < min {
            min = v;
        }
    }
    fence(Ordering::Acquire);
    min
}

/// Advance the global epoch if every active reservation has caught up with it.
///
/// Returns the (possibly advanced) global epoch. Scan ordering: see
/// [`min_active_reservation`].
pub fn try_advance() -> u64 {
    fence(Ordering::SeqCst);
    let e = GLOBAL.epoch.load(Ordering::Relaxed);
    let bound = tid::scan_bound().min(MAX_THREADS);
    for r in &GLOBAL.reservations[..bound] {
        let v = r.load(Ordering::Relaxed);
        if v != QUIESCENT && v < e {
            return e; // someone is still in an older epoch
        }
    }
    fence(Ordering::Acquire);
    // Single step; losing the race is fine (someone else advanced). The
    // SeqCst CAS keeps epoch advances in the total order the pin/adopt
    // re-validation reads rely on.
    let _ = GLOBAL
        .epoch
        .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
    GLOBAL.epoch.load(Ordering::Relaxed)
}

thread_local! {
    static LOCAL_BAG: LocalBag = const {
        LocalBag {
            items: std::cell::RefCell::new(Vec::new()),
            last_failed_safe: std::cell::Cell::new(0),
            pending_retired: std::cell::Cell::new(0),
            pending_bytes: std::cell::Cell::new(0),
            since_advance: std::cell::Cell::new(0),
        }
    };
}

struct LocalBag {
    items: std::cell::RefCell<Vec<Retired>>,
    /// Highest `safe_before` for which a full scan of this bag freed
    /// nothing. While the reservation floor is stuck (a stalled or
    /// forever-pinned thread), `safe_before` stays at this value and every
    /// new retire would otherwise rescan the whole growing bag — quadratic
    /// work for zero frees. Skipping re-scans at an already-failed floor is
    /// sound: items retire with `stamp >=` the epoch at retire time
    /// `>= safe_before`, so nothing addable later becomes freeable at the
    /// same floor.
    last_failed_safe: std::cell::Cell<u64>,
    /// Retires (count / bytes) bagged here but not yet published to the
    /// global counters. The hot retire path only touches these cells; the
    /// global `fetch_add`s happen at collect boundaries, stats snapshots
    /// and thread exit, so a retire pays no cross-thread RMW. Items leave
    /// this bag only through paths that publish first (`collect_local`,
    /// `Drop`), so the global byte gauge never sees a free before its
    /// retire.
    pending_retired: std::cell::Cell<usize>,
    pending_bytes: std::cell::Cell<usize>,
    /// Retires since this thread last attempted a global epoch advance
    /// (the `ADVANCE_PERIOD` cadence, kept thread-local for the same
    /// no-RMW reason).
    since_advance: std::cell::Cell<usize>,
}

/// Move a bag's pending retire counters into the global gauges.
fn publish_pending(bag: &LocalBag) {
    let n = bag.pending_retired.replace(0);
    if n > 0 {
        GLOBAL.retired_count.fetch_add(n, Ordering::Relaxed);
    }
    let b = bag.pending_bytes.replace(0);
    if b > 0 {
        GLOBAL.bag_bytes.fetch_add(b, Ordering::Relaxed);
    }
}

/// Publish the *calling thread's* pending retire counters, so stats
/// snapshots taken on this thread reflect its own retires immediately
/// (other threads' pending counts drain at their collect boundaries).
/// TLS-teardown-safe: a dead bag has already published via its `Drop`.
pub(crate) fn publish_local_pending() {
    let _ = LOCAL_BAG.try_with(publish_pending);
}

impl Drop for LocalBag {
    fn drop(&mut self) {
        publish_pending(self);
        // Thread exiting: orphan whatever is left so other threads free it.
        let mut items = self.items.borrow_mut();
        if !items.is_empty()
            && let Ok(mut orphans) = GLOBAL.orphans.lock()
        {
            orphans.append(&mut items);
        }
    }
}

#[cfg(debug_assertions)]
pub(crate) mod debug_track {
    use std::collections::HashSet;
    use std::sync::Mutex;
    pub(crate) static LIVE_RETIRED: Mutex<Option<HashSet<usize>>> = Mutex::new(None);
    pub(crate) static LIVE_ALLOCS: Mutex<Option<HashSet<usize>>> = Mutex::new(None);

    pub(crate) fn on_retire(ptr: usize) {
        let mut g = LIVE_RETIRED.lock().unwrap_or_else(|e| e.into_inner());
        let set = g.get_or_insert_with(HashSet::new);
        assert!(
            set.insert(ptr),
            "flock-epoch: double retire of {ptr:#x} detected"
        );
    }

    pub(crate) fn on_free(ptr: usize) {
        if let Some(set) = LIVE_RETIRED
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            set.remove(&ptr);
        }
        on_dealloc(ptr, "collector");
    }

    pub(crate) fn on_alloc(ptr: usize) {
        let mut g = LIVE_ALLOCS.lock().unwrap_or_else(|e| e.into_inner());
        g.get_or_insert_with(HashSet::new).insert(ptr);
    }

    pub(crate) fn on_dealloc(ptr: usize, who: &str) {
        let mut g = LIVE_ALLOCS.lock().unwrap_or_else(|e| e.into_inner());
        let set = g.get_or_insert_with(HashSet::new);
        assert!(
            set.remove(&ptr),
            "flock-epoch: {who} freeing {ptr:#x} which is not a live epoch allocation (double free or foreign pointer)"
        );
    }
}

/// Retire without thread-local involvement (TLS-destructor-safe).
pub(crate) fn bag_retired_global(item: Retired) {
    #[cfg(debug_assertions)]
    debug_track::on_retire(item.ptr as usize);
    GLOBAL.retired_count.fetch_add(1, Ordering::Relaxed);
    GLOBAL
        .bag_bytes
        .fetch_add(item.bytes as usize, Ordering::Relaxed);
    if let Ok(mut orphans) = GLOBAL.orphans.lock() {
        orphans.push(item);
    }
}

pub(crate) fn bag_retired(item: Retired) {
    #[cfg(debug_assertions)]
    debug_track::on_retire(item.ptr as usize);
    // One TLS access, zero global RMWs: counts accumulate in the bag's
    // cells and publish at the collect/advance boundaries below.
    let (should_advance, should_collect) = LOCAL_BAG.with(|bag| {
        bag.pending_retired.set(bag.pending_retired.get() + 1);
        bag.pending_bytes
            .set(bag.pending_bytes.get() + item.bytes as usize);
        let adv = bag.since_advance.get() + 1;
        let should_advance = adv >= ADVANCE_PERIOD;
        bag.since_advance.set(if should_advance { 0 } else { adv });
        let mut items = bag.items.borrow_mut();
        items.push(item);
        (should_advance, items.len() >= BAG_COLLECT_THRESHOLD)
    });
    if should_advance {
        try_advance();
    }
    if should_collect {
        collect_local();
    }
}

/// Drop one reclaimable item and return its memory: pooled slots go back
/// to the freeing thread's magazine, fallback items are fully freed by
/// their dropper. Pooled types without drop glue (`dropper == None`, the
/// common node case) skip the indirect call entirely.
///
/// # Safety
///
/// The item must be past its grace period: `stamp + 2 <=` every active
/// reservation, so no in-flight operation can still reach it; the retire
/// contract says it was unlinked and retired once.
unsafe fn free_one(it: &Retired) {
    #[cfg(debug_assertions)]
    debug_track::on_free(it.ptr as usize);
    if let Some(drop_fn) = it.dropper {
        // SAFETY: forwarded contract; dropped exactly once.
        unsafe { drop_fn(it.ptr) };
    }
    if it.class != crate::pool::NO_CLASS {
        crate::pool::free_slot(it.ptr, it.class as usize);
    }
}

/// Free everything in the local bag (and a slice of the orphans) that has
/// fallen at least two epochs behind every active reservation.
pub(crate) fn collect_local() {
    let safe_before = min_active_reservation().saturating_sub(1);
    let mut freed = 0usize;
    let mut freed_bytes = 0usize;
    LOCAL_BAG.with(|bag| {
        // Publish before anything can be freed (and before the early
        // return, so a stuck floor still reports its growing bag).
        publish_pending(bag);
        // Stuck-reservation guard: a full scan at this floor (or a higher
        // one) already freed nothing, and nothing retired since can be
        // older — skip the rescan so a stalled pinner costs O(1) per
        // retire instead of O(bag).
        if safe_before <= bag.last_failed_safe.get() {
            return;
        }
        let mut items = bag.items.borrow_mut();
        let before = items.len();
        items.retain(|it| {
            if it.stamp < safe_before {
                // SAFETY: stamp + 2 <= every active reservation (see
                // `free_one`).
                unsafe { free_one(it) };
                freed += 1;
                freed_bytes += it.bytes as usize;
                false
            } else {
                true
            }
        });
        if freed == 0 && before > 0 {
            bag.last_failed_safe.set(safe_before);
        }
    });
    // Opportunistically drain orphans too; try_lock so we never spin here.
    if let Ok(mut orphans) = GLOBAL.orphans.try_lock() {
        orphans.retain(|it| {
            if it.stamp < safe_before {
                // SAFETY: as above.
                unsafe { free_one(it) };
                freed += 1;
                freed_bytes += it.bytes as usize;
                false
            } else {
                true
            }
        });
    }
    if freed > 0 {
        GLOBAL.freed_count.fetch_add(freed, Ordering::Relaxed);
        GLOBAL.bag_bytes.fetch_sub(freed_bytes, Ordering::Relaxed);
    }
}

/// Drive advancement until local + orphan bags are empty. Requires no pinned
/// threads (used by tests/teardown); gives up after a bounded number of
/// rounds to avoid hanging when a thread is stuck pinned.
pub(crate) fn flush_all() {
    for _ in 0..8 {
        try_advance();
        try_advance();
        collect_local();
        let empty_local = LOCAL_BAG.with(|b| b.items.borrow().is_empty());
        let empty_orphans = GLOBAL.orphans.lock().map(|o| o.is_empty()).unwrap_or(true);
        if empty_local && empty_orphans {
            return;
        }
    }
}

/// Model-checker support: reset the collector to a deterministic state
/// between executions.
///
/// The DFS scheduler replays schedule prefixes and requires every execution
/// to start from identical collector state; the retire-count cadence
/// (`ADVANCE_PERIOD`) would otherwise fire `try_advance` at different
/// points across executions. Caller contract (upheld by `flock-model`): no
/// thread is pinned and no model threads exist when this runs, so every
/// bagged object is force-freeable regardless of stamp.
/// Model-engine worker reset: move the calling thread's local retire bag to
/// the orphans (as its TLS destructor would), so pooled model workers start
/// every execution with an empty bag. The engine's `model_reset` then frees
/// the orphans.
#[cfg(feature = "model")]
pub(crate) fn model_drain_local_bag() {
    LOCAL_BAG.with(|bag| {
        publish_pending(bag);
        // Cadence state must be identical at the start of every execution
        // (the advance-attempt points are schedule-visible).
        bag.since_advance.set(0);
        let mut items = bag.items.borrow_mut();
        if !items.is_empty()
            && let Ok(mut orphans) = GLOBAL.orphans.lock()
        {
            orphans.append(&mut items);
        }
    });
}

#[cfg(feature = "model")]
pub(crate) fn model_reset() {
    fn free_all(items: &mut Vec<Retired>) {
        for it in items.drain(..) {
            GLOBAL
                .bag_bytes
                .fetch_sub(it.bytes as usize, Ordering::Relaxed);
            // SAFETY: nothing is pinned (caller contract), so no in-flight
            // operation can reach a retired object; retired exactly once.
            unsafe { free_one(&it) };
        }
    }
    LOCAL_BAG.with(|bag| {
        publish_pending(bag);
        bag.since_advance.set(0);
        free_all(&mut bag.items.borrow_mut());
    });
    if let Ok(mut orphans) = GLOBAL.orphans.lock() {
        free_all(&mut orphans);
    }
    // A model thread that died mid-unwind may have left a reservation set;
    // clear them all (no model threads are live — caller contract).
    for r in GLOBAL.reservations.iter() {
        r.store(QUIESCENT, Ordering::SeqCst);
    }
    GLOBAL
        .retired_count
        .store(0, std::sync::atomic::Ordering::SeqCst);
    GLOBAL
        .freed_count
        .store(0, std::sync::atomic::Ordering::SeqCst);
}

/// Monotone counters describing collector activity; for tests and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Objects handed to [`crate::retire`] since process start.
    pub retired: usize,
    /// Objects actually dropped since process start.
    pub freed: usize,
    /// Current global epoch.
    pub epoch: u64,
}

/// Snapshot of the collector counters.
pub fn collector_stats() -> CollectorStats {
    publish_local_pending();
    CollectorStats {
        retired: GLOBAL.retired_count.load(Ordering::Relaxed),
        freed: GLOBAL.freed_count.load(Ordering::Relaxed),
        epoch: GLOBAL.epoch.load(Ordering::Relaxed),
    }
}

/// Degradation snapshot: how far reclamation has fallen behind and why.
///
/// Where [`CollectorStats`] counts activity, this reports *pressure* — the
/// quantities that grow when a thread stalls while pinned. The collector's
/// degradation contract under a forever-pinned thread is "bounded by what
/// the live threads retire, and reported": retire bags grow (`bag_bytes`),
/// the reservation floor stops (`oldest_reservation_age` climbs), and
/// nothing is ever freed out from under the stuck reservation. The chaos
/// runner asserts `bag_bytes` stays proportional to work done and that the
/// stats recover to ~zero once the stall is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStats {
    /// Threads currently holding an active (non-quiescent) reservation.
    pub pinned_threads: usize,
    /// Global epoch minus the oldest active reservation, in epochs — how
    /// many advance cycles the slowest pinned thread is holding back. Zero
    /// when nothing is pinned.
    pub oldest_reservation_age: u64,
    /// Bytes retired but not yet freed, across all local bags and the
    /// orphan bag (heap payloads only, as stamped at retire time).
    pub retire_bag_bytes: usize,
    /// Slab-pool counters: pages live, slots cached in magazines, refill
    /// traffic and magazine hit rate. See [`crate::PoolStats`].
    pub pool: crate::PoolStats,
}

/// Snapshot of the collector's degradation pressure. See [`EpochStats`].
pub fn epoch_stats() -> EpochStats {
    publish_local_pending();
    fence(Ordering::SeqCst);
    let epoch = GLOBAL.epoch.load(Ordering::Relaxed);
    let bound = tid::scan_bound().min(MAX_THREADS);
    let mut pinned = 0usize;
    let mut min = epoch;
    for r in &GLOBAL.reservations[..bound] {
        let v = r.load(Ordering::Relaxed);
        if v != QUIESCENT {
            pinned += 1;
            if v < min {
                min = v;
            }
        }
    }
    EpochStats {
        pinned_threads: pinned,
        oldest_reservation_age: epoch.saturating_sub(min),
        retire_bag_bytes: GLOBAL.bag_bytes.load(Ordering::Relaxed),
        pool: crate::pool::pool_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_starts_at_two_and_advances() {
        let e0 = GLOBAL.epoch.load(Ordering::SeqCst);
        assert!(e0 >= 2);
        let e1 = try_advance();
        assert!(e1 >= e0);
    }

    #[test]
    fn reservation_blocks_advance() {
        let me = tid::current();
        let e = GLOBAL.epoch.load(Ordering::SeqCst);
        reservation_of(me).store(e.saturating_sub(1), Ordering::SeqCst);
        let after = try_advance();
        assert_eq!(after, e, "advance must not pass an older reservation");
        reservation_of(me).store(QUIESCENT, Ordering::SeqCst);
    }
}
