//! # flock-api — the one public map interface of the Flock workspace
//!
//! Every concurrent map in this workspace — the seven Flock structures in
//! `flock-ds` and the five hand-crafted comparators in `flock-baselines` —
//! implements the single [`Map`] trait defined here. The benchmark driver
//! (`flock-workload`), the figure harness (`flock-bench`), the examples and
//! the integration tests are all written against this trait, so adding a
//! structure means implementing one interface, once.
//!
//! The trait is generic over [`Key`] and [`Value`], and — since the
//! `ValueRepr` refactor — so is **every structure in the registry**: the
//! paper's evaluation shape `Map<u64, u64>` is just one instantiation.
//! Keys need `Clone + Ord + Hash`; values need the
//! [`ValueRepr`](flock_sync::ValueRepr) representation layer — satisfied
//! directly by anything that fits a 48-bit payload (integers, flags), and
//! by [`Indirect<T>`](flock_epoch::Indirect) for *fat* values (structs,
//! strings, vectors), which ride behind an epoch-managed pointer. The
//! bench registry hands out `Box<dyn Map<u64, u64>>` for the paper's
//! workloads and `Box<dyn Map<u64, Indirect<[u64; 4]>>>` for the fat-value
//! workload; user code can instantiate any structure at any conforming
//! `(K, V)` pair.
//!
//! ## Conformance harness
//!
//! [`map_conformance!`] stamps out the shared test suite for one structure:
//! a sequential differential check against [`std::collections::BTreeMap`],
//! a partitioned multi-thread stress and an oversubscribed helping stress —
//! each in **both** lock modes where applicable — at three `(K, V)`
//! instantiations (`(u64, u64)`, a small-inline combo `(u32, u16)`, and a
//! heap-indirected fat combo `(u64, Indirect<[u64; 4]>)`), plus a
//! drop-exactly-once reclamation check for the indirect path and a native
//! `update` atomicity check (gated on [`Map::has_atomic_update`]) at the
//! same three instantiations — the fat one exercising the indirect-value
//! RMW end to end. Structures that ignore the lock mode (the baselines)
//! simply run the mode-sensitive suites twice:
//!
//! ```ignore
//! flock_api::map_conformance!(dlist, flock_ds::dlist::DList::new());
//! ```
//!
//! The `$make` expression must therefore be instantiable at every `(K, V)`
//! combination above — true for every registry structure since they are
//! generic.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Bound;

pub use flock_epoch::Indirect;
pub use flock_epoch::{EpochStats, PoolStats, epoch_stats, pool_stats};
pub use flock_sync::ValueRepr;

/// Marker bound for map keys: cheap to clone, totally ordered, hashable,
/// printable in assertions, and shareable across helper threads.
///
/// `Clone` (not `Copy`): fat keys — heap-owning types included — are
/// allowed wherever a structure's traversal only needs comparisons.
/// Structures clone keys into their nodes and into thunk captures.
pub trait Key: Clone + Ord + Hash + Debug + Send + Sync + 'static {}
impl<T: Clone + Ord + Hash + Debug + Send + Sync + 'static> Key for T {}

/// Marker bound for map values: anything with a 48-bit slot representation
/// ([`ValueRepr`], which implies `Clone + PartialEq`), printable in
/// assertions, and shareable across helper threads.
///
/// Inline types (integers, flags, anything ≤ 48 bits) qualify directly;
/// wrap anything bigger in [`Indirect<T>`] to store it behind an
/// epoch-managed pointer.
///
/// **48-bit contract for inline `u64`/`usize`:** the inline strategies for
/// the word-sized integers keep the long-standing packed-slot contract —
/// payloads must fit 48 bits (debug builds assert, release builds mask).
/// Structures that place values in packed slots (`hashtable`'s mutable
/// value slot, `blocking_bst`'s revive word) inherit it; use
/// `Indirect<u64>` when you need the full 64-bit range.
pub trait Value: ValueRepr + Debug + Send + Sync + 'static {}
impl<T: ValueRepr + Debug + Send + Sync + 'static> Value for T {}

/// A linearizable concurrent map.
///
/// All operations take `&self` and are safe to call from any number of
/// threads. The trait is object-safe at each instantiation: the bench
/// registry moves structures around as `Box<dyn Map<u64, u64>>` (paper
/// workloads) and `Box<dyn Map<u64, Indirect<[u64; 4]>>>` (fat-value
/// workload).
pub trait Map<K: Key, V: Value>: Send + Sync {
    /// Insert `(key, value)`. Returns `false` (leaving the map unchanged)
    /// if `key` was already present.
    fn insert(&self, key: K, value: V) -> bool;

    /// Remove `key`. Returns `false` if it was not present.
    fn remove(&self, key: K) -> bool;

    /// Look up `key`.
    fn get(&self, key: K) -> Option<V>;

    /// A short name for reports (e.g. `"dlist"`).
    fn name(&self) -> &'static str;

    /// Is `key` present?
    ///
    /// Provided in terms of [`Map::get`] — which **materializes the
    /// value**: for [`Indirect<V>`] fat values the default decodes and
    /// clones the boxed payload just to discard it. Structures with a
    /// presence-only existence check (no value decode, no clone) should
    /// override; every structure in this workspace's registry does, and
    /// the conformance harness's `contains_no_materialize` test pins it.
    fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Replace the value stored under an existing `key`. Returns `false`
    /// (inserting nothing) if `key` was absent.
    ///
    /// The default is the remove-then-insert composite, which is **not
    /// atomic**: a concurrent reader can observe the key absent mid-update,
    /// and a concurrent insert of the same key can win the re-insert race
    /// (in which case the update is dropped, matching a linearization where
    /// the remove and the concurrent insert both took effect). Structures
    /// should override this with a native in-place update where they can —
    /// and report the stronger contract through
    /// [`Map::has_atomic_update`]. **Every structure in this workspace's
    /// registry does**: all 7 Flock structures update a per-node value slot
    /// in place inside the owning lock's thunk
    /// (`flock_core::ValueSlot`), and all 5 baselines swap an atomic
    /// encoded-value word (or copy-on-write-replace the leaf under its
    /// lock) — so the composite below is reachable only from external
    /// `Map` implementations, never from the registry.
    fn update(&self, key: K, value: V) -> bool {
        if self.remove(key.clone()) {
            let _ = self.insert(key, value);
            true
        } else {
            false
        }
    }

    /// Capability probe: does [`Map::update`] linearize as a single atomic
    /// in-place replacement (no observable absence window, no lost-update
    /// race with concurrent inserts)?
    ///
    /// `false` (the default) means the composite contract documented on
    /// [`Map::update`] applies. Structures overriding `update` with a
    /// native read-modify-write must override this too; the conformance
    /// harness verifies the claim under concurrency at all three `(K, V)`
    /// instantiations. Every registry structure returns `true` (enforced
    /// by flock-bench's `composite_update_unreachable_from_registry`).
    fn has_atomic_update(&self) -> bool {
        false
    }

    /// Approximate element count, if the structure offers one.
    ///
    /// `None` (the default) means "not supported"; implementations that keep
    /// or can compute a count return `Some`. Concurrent mutations make any
    /// returned number a snapshot approximation.
    fn len_approx(&self) -> Option<usize> {
        None
    }
}

impl<K: Key, V: Value, M: Map<K, V> + ?Sized> Map<K, V> for &M {
    fn insert(&self, key: K, value: V) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: K) -> bool {
        (**self).remove(key)
    }
    fn get(&self, key: K) -> Option<V> {
        (**self).get(key)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn contains(&self, key: K) -> bool {
        (**self).contains(key)
    }
    fn update(&self, key: K, value: V) -> bool {
        (**self).update(key, value)
    }
    fn has_atomic_update(&self) -> bool {
        (**self).has_atomic_update()
    }
    fn len_approx(&self) -> Option<usize> {
        (**self).len_approx()
    }
}

impl<K: Key, V: Value, M: Map<K, V> + ?Sized> Map<K, V> for Box<M> {
    fn insert(&self, key: K, value: V) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: K) -> bool {
        (**self).remove(key)
    }
    fn get(&self, key: K) -> Option<V> {
        (**self).get(key)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn contains(&self, key: K) -> bool {
        (**self).contains(key)
    }
    fn update(&self, key: K, value: V) -> bool {
        (**self).update(key, value)
    }
    fn has_atomic_update(&self) -> bool {
        (**self).has_atomic_update()
    }
    fn len_approx(&self) -> Option<usize> {
        (**self).len_approx()
    }
}

/// Does `k` satisfy the lower bound of a range?
#[inline]
pub fn key_above_lower<K: Ord + ?Sized>(k: &K, lo: Bound<&K>) -> bool {
    match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => k >= l,
        Bound::Excluded(l) => k > l,
    }
}

/// Does `k` satisfy the upper bound of a range?
#[inline]
pub fn key_below_upper<K: Ord + ?Sized>(k: &K, hi: Bound<&K>) -> bool {
    match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => k <= h,
        Bound::Excluded(h) => k < h,
    }
}

/// Is `k` inside both bounds of a range?
#[inline]
pub fn key_in_range<K: Ord + ?Sized>(k: &K, lo: Bound<&K>, hi: Bound<&K>) -> bool {
    key_above_lower(k, lo) && key_below_upper(k, hi)
}

/// A [`Map`] whose keys support ordered traversal: range scans and full
/// ordered iteration.
///
/// ## Scan consistency contract
///
/// Range scans take **no locks**. Every implementation in this workspace
/// gives the same two-level guarantee (EXPERIMENTS.md §9 tabulates the
/// per-structure mechanism), checked for every ordered structure at three
/// `(K, V)` shapes by [`ordered_map_conformance!`]:
///
/// * **Per-entry atomicity** — each returned `(key, value)` pair was
///   simultaneously present in the map at some instant during the scan.
///   Entries are read through the version-validated optimistic path
///   (a `flock_core::read_validated`-style bracket under the entry's
///   owning lock), falling back to per-slot committed reads after a
///   bounded number of validation failures; either way a scan never
///   returns a torn value or a `(key, value)` pairing that never
///   coexisted.
/// * **Cross-entry weak consistency** — the scan as a whole is *not* an
///   atomic snapshot. Keys come back in strictly increasing order, each at
///   most once; a key present for the entire duration of the scan is
///   returned; keys inserted or removed mid-scan may or may not appear.
///   No key outside the requested bounds is ever returned.
pub trait OrderedMap<K: Key, V: Value>: Map<K, V> {
    /// All entries within the bounds, in ascending key order.
    fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)>;

    /// Ordered snapshot of the whole map — equivalent to
    /// `range(Bound::Unbounded, Bound::Unbounded)`.
    fn iter(&self) -> Vec<(K, V)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Convenience form of [`OrderedMap::range`] over the standard range
    /// syntax: `map.scan(10..20)`, `map.scan(..=9)`, `map.scan(..)`.
    fn scan<R: std::ops::RangeBounds<K>>(&self, r: R) -> Vec<(K, V)>
    where
        Self: Sized,
    {
        self.range(r.start_bound(), r.end_bound())
    }
}

impl<K: Key, V: Value, M: OrderedMap<K, V> + ?Sized> OrderedMap<K, V> for &M {
    fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        (**self).range(lo, hi)
    }
    fn iter(&self) -> Vec<(K, V)> {
        (**self).iter()
    }
}

impl<K: Key, V: Value, M: OrderedMap<K, V> + ?Sized> OrderedMap<K, V> for Box<M> {
    fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        (**self).range(lo, hi)
    }
    fn iter(&self) -> Vec<(K, V)> {
        (**self).iter()
    }
}

pub mod testing {
    //! The shared conformance-test harness behind [`map_conformance!`]
    //! (also usable directly from hand-written tests).
    //!
    //! This module is compiled into the crate (not `#[cfg(test)]`) because
    //! downstream crates invoke it from *their* test builds.

    use super::{Indirect, Key, Map, OrderedMap, Value};
    use std::collections::BTreeMap;
    use std::ops::Bound;
    use std::sync::atomic::{AtomicIsize, Ordering::Relaxed};

    /// Process-wide lock serializing tests that touch the global lock mode:
    /// switching modes while another test's operations are in flight is
    /// unsupported (as in the paper's library), so mode-sensitive tests must
    /// not overlap within one test process.
    static MODE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Run `test` under the full lock-mode × admission-policy matrix
    /// (lock-free/`Race` first), restoring lock-free + `Race` afterwards.
    /// Structures built inside `test` via their plain `::new()` constructors
    /// read [`flock_core::default_admission`] at construction, so every
    /// combination exercises locks actually stamped with that policy.
    /// Serialized against every other mode-touching test in the process.
    pub fn both_modes(test: impl Fn()) {
        use flock_core::{Admission, LockMode, set_default_admission, set_lock_mode};
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            for admission in [Admission::Race, Admission::Fifo] {
                set_lock_mode(mode);
                set_default_admission(admission);
                test();
            }
        }
        set_lock_mode(LockMode::LockFree);
        set_default_admission(Admission::Race);
    }

    /// Run `test` in the default configuration (lock-free mode, `Race`
    /// admission) while holding the same exclusion as [`both_modes`].
    pub fn exclusive(test: impl Fn()) {
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        flock_core::set_lock_mode(flock_core::LockMode::LockFree);
        flock_core::set_default_admission(flock_core::Admission::Race);
        test();
    }

    /// A tiny xorshift generator so the harness needs no external crates.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The harness's fat value constructor: four words derived from `x`, so
    /// a decode of the wrong allocation (or a torn snapshot) cannot pass
    /// the equality checks. Cannot fit a 48-bit payload — it exercises the
    /// heap-indirected representation end to end.
    pub fn fat_value(x: u64) -> Indirect<[u64; 4]> {
        Indirect([x, x ^ 0xA5A5_A5A5_A5A5_A5A5, !x, x.rotate_left(17)])
    }

    /// Single-threaded differential test against a `BTreeMap` oracle, at an
    /// arbitrary `(K, V)` instantiation: `kf`/`vf` map the oracle's dense
    /// `u64` key ids and value stamps into the map's domain (`kf` must be
    /// injective on `0..key_range`).
    pub fn oracle_check_as<K, V, M, KF, VF>(
        map: &M,
        ops: usize,
        key_range: u64,
        seed: u64,
        kf: KF,
        vf: VF,
    ) where
        K: Key,
        V: Value,
        M: Map<K, V> + ?Sized,
        KF: Fn(u64) -> K,
        VF: Fn(u64) -> V,
    {
        let mut oracle = BTreeMap::new();
        let mut state = seed | 1;
        for i in 0..ops {
            let k = xorshift(&mut state) % key_range;
            let v = i as u64;
            match xorshift(&mut state) % 3 {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    assert_eq!(
                        map.insert(kf(k), vf(v)),
                        expect,
                        "insert({k}) disagreed with oracle at op {i}"
                    );
                }
                1 => {
                    let expect = oracle.remove(&k).is_some();
                    assert_eq!(
                        map.remove(kf(k)),
                        expect,
                        "remove({k}) disagreed with oracle at op {i}"
                    );
                }
                _ => {
                    assert_eq!(
                        map.get(kf(k)),
                        oracle.get(&k).map(|&x| vf(x)),
                        "get({k}) disagreed with oracle at op {i}"
                    );
                }
            }
        }
        // Final sweep: every oracle key must be present with the right value.
        for (k, v) in &oracle {
            assert_eq!(
                map.get(kf(*k)),
                Some(vf(*v)),
                "final sweep mismatch at key {k}"
            );
        }
        // Maintained/computed counters must be exact when quiescent.
        if let Some(n) = map.len_approx() {
            assert_eq!(
                n,
                oracle.len(),
                "quiescent len_approx disagrees with the oracle size"
            );
        }
    }

    /// Single-threaded differential test at the paper's `(u64, u64)` shape.
    pub fn oracle_check<M: Map<u64, u64> + ?Sized>(map: &M, ops: usize, key_range: u64, seed: u64) {
        oracle_check_as(map, ops, key_range, seed, |k| k, |v| v);
    }

    /// Multi-threaded stress test: per-key-partition determinism, at an
    /// arbitrary `(K, V)` instantiation (see [`oracle_check_as`] for the
    /// `kf`/`vf` contract; `kf` must be injective on the generated ids).
    ///
    /// Each thread owns a disjoint key partition (`id % threads == tid`),
    /// so per-thread sequential semantics must hold exactly even under full
    /// concurrency.
    pub fn partition_stress_as<K, V, M, KF, VF>(map: &M, threads: u64, ops: usize, kf: KF, vf: VF)
    where
        K: Key,
        V: Value,
        M: Map<K, V> + ?Sized,
        KF: Fn(u64) -> K + Sync,
        VF: Fn(u64) -> V + Sync,
    {
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                let kf = &kf;
                let vf = &vf;
                s.spawn(move || {
                    let mut present = BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    for i in 0..ops {
                        let k = (xorshift(&mut state) % 512) * threads + t;
                        let v = i as u64;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(
                                    map.insert(kf(k), vf(v)),
                                    expect,
                                    "t{t} insert({k}) op {i}"
                                );
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(kf(k)), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(kf(k)),
                                    present.get(&k).map(|&x| vf(x)),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(kf(*k)), Some(vf(*v)), "t{t} final sweep key {k}");
                    }
                });
            }
        });
    }

    /// Multi-threaded partitioned stress at the paper's `(u64, u64)` shape.
    pub fn partition_stress<M: Map<u64, u64> + ?Sized>(map: &M, threads: u64, ops: usize) {
        partition_stress_as(map, threads, ops, |k| k, |v| v);
    }

    /// Oversubscribed stress: more threads than cores, so lock holders get
    /// descheduled mid-critical-section and (in lock-free mode) contenders
    /// must *help* them — the paper's headline path, exercised here by the
    /// tier-1 conformance suite rather than only by an example binary.
    ///
    /// Two phases per thread: a partitioned phase with exact per-partition
    /// oracle semantics, and a shared-hot-key phase (every thread hammers
    /// the same few keys, maximizing lock collisions) checked by invariant
    /// rather than oracle. Caller should run this in lock-free mode; it is
    /// also valid (just less interesting) under blocking locks.
    pub fn oversubscribed_stress<M: Map<u64, u64> + ?Sized>(map: &M, ops: usize) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        // At least 4x oversubscription on small CI boxes, bounded so giant
        // dev machines do not turn the test into a thread-spawn benchmark.
        let threads = (2 * cores).clamp(8, 24) as u64;
        const HOT_KEYS: u64 = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let mut present = BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    for i in 0..ops {
                        // Shared phase: all threads fight over HOT_KEYS
                        // keys; return values are racy but every op must
                        // complete (helping keeps the system moving past
                        // descheduled holders).
                        let hot = xorshift(&mut state) % HOT_KEYS;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let _ = map.insert(hot, t);
                            }
                            1 => {
                                let _ = map.remove(hot);
                            }
                            _ => {
                                let _ = map.get(hot);
                            }
                        }
                        // Partitioned phase: exact sequential semantics on
                        // this thread's own keys, concurrently with the
                        // contention above.
                        let k = HOT_KEYS + (xorshift(&mut state) % 64) * threads + t;
                        let v = i as u64;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(map.insert(k, v), expect, "t{t} insert({k}) op {i}");
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(k), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(k),
                                    present.get(&k).copied(),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(*k), Some(*v), "t{t} final sweep key {k}");
                    }
                });
            }
        });
        // Quiescent cleanup of the contended keys: they must be in a
        // coherent present-or-absent state.
        for k in 0..HOT_KEYS {
            let present = map.contains(k);
            assert_eq!(map.remove(k), present, "hot key {k} in incoherent state");
            assert!(!map.contains(k), "hot key {k} still present after removal");
        }
    }

    /// Hot-lock fairness storm: `threads` workers hammer **one** strict
    /// [`flock_core::Locked`] cell (built with `admission`) for `window`,
    /// returning each worker's completed-op count. All workers rendezvous on
    /// a barrier before the clock starts, so the counts measure admission
    /// order under contention, not spawn skew. Run it inside [`exclusive`]:
    /// the strict acquisitions must happen in lock-free mode for the
    /// admission policy (and helping) to be in play.
    ///
    /// `cs_spin` is a pure compute loop run inside the critical section
    /// (iterations of a dependent multiply-add; ~1ns each). It controls
    /// what the counts measure: with an empty critical section on an
    /// oversubscribed host, the scheduled thread completes thousands of
    /// solo acquisitions per timeslice (every other thread's single pending
    /// arrival is long since drained), so per-thread counts degenerate into
    /// CPU-share accounting and say nothing about admission. A critical
    /// section long enough that draining the published arrivals fills a
    /// timeslice keeps the lock saturated: completions then flow through
    /// helping and handoff in admission order, which is the thing a lock
    /// fairness benchmark is supposed to observe.
    ///
    /// `think` is an out-of-lock sleep between operations (pass
    /// `Duration::ZERO` for a pure back-to-back storm). Think time is what
    /// decouples completed-op counts from raw CPU share on an
    /// oversubscribed host: a sleeping thread is not runnable, so its count
    /// is bounded by cycles of `think + wait-for-service`, not by timeslice
    /// accounting. Under FIFO admission the wait is uniform — a published
    /// arrival is served in ticket order by handoff and helping even while
    /// its owner is descheduled — while under Race admission a thread only
    /// wins by being *scheduled at an unlocked instant*, a lottery whose
    /// repeated losers show up directly in the count spread.
    pub fn hot_lock_storm(
        admission: flock_core::Admission,
        threads: usize,
        window: std::time::Duration,
        cs_spin: u32,
        think: std::time::Duration,
    ) -> Vec<u64> {
        use std::sync::{Arc, Barrier};
        use std::time::Instant;
        let cell = Arc::new(flock_core::Locked::new_with(
            flock_core::Mutable::new(0u64),
            admission,
        ));
        let start = Arc::new(Barrier::new(threads));
        let mut counts = vec![0u64; threads];
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    let start = Arc::clone(&start);
                    s.spawn(move || {
                        start.wait();
                        let deadline = Instant::now() + window;
                        let mut n = 0u64;
                        while Instant::now() < deadline {
                            cell.with(move |c| {
                                let cur = c.load();
                                // Pure local compute (replay-safe: no logged
                                // effects); black_box keeps it material.
                                let mut x = cur;
                                for i in 0..cs_spin as u64 {
                                    x = std::hint::black_box(
                                        x.wrapping_mul(6364136223846793005).wrapping_add(i),
                                    );
                                }
                                std::hint::black_box(x);
                                c.store(cur + 1);
                            });
                            n += 1;
                            if !think.is_zero() {
                                std::thread::sleep(think);
                            }
                        }
                        n
                    })
                })
                .collect();
            for (slot, h) in counts.iter_mut().zip(handles) {
                *slot = h.join().expect("storm worker panicked");
            }
        });
        let total: u64 = counts.iter().sum();
        let observed = cell.with(|c| c.load());
        assert_eq!(observed, total, "hot cell lost increments under the storm");
        counts
    }

    /// Max/min completed-op ratio of a [`hot_lock_storm`] count vector.
    /// A starved thread (count 0) maps to `f64::INFINITY`.
    pub fn fairness_ratio(counts: &[u64]) -> f64 {
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let min = counts.iter().copied().min().unwrap_or(0) as f64;
        if min == 0.0 { f64::INFINITY } else { max / min }
    }

    /// Exercise the provided-method surface (`contains`, `update`,
    /// `len_approx`) against the primary operations.
    pub fn default_methods_check<M: Map<u64, u64> + ?Sized>(map: &M) {
        assert!(!map.contains(7));
        assert!(
            !map.update(7, 70),
            "update of an absent key must be a no-op"
        );
        assert!(!map.contains(7), "failed update must not insert");
        assert!(map.insert(7, 70));
        assert!(map.contains(7));
        assert!(map.update(7, 71));
        assert_eq!(map.get(7), Some(71));
        assert!(map.insert(8, 80));
        if let Some(n) = map.len_approx() {
            assert_eq!(n, 2, "quiescent len_approx must be exact");
        }
        assert!(map.remove(7));
        assert!(map.remove(8));
        assert!(!map.contains(7));
        assert!(!map.name().is_empty());
    }

    /// Verify a structure's [`Map::has_atomic_update`] claim under
    /// concurrency, at an arbitrary `(K, V)` instantiation (see
    /// [`oracle_check_as`] for the `kf`/`vf` contract — additionally `vf`
    /// must be injective on the value stamps used here, so a torn or stale
    /// decode cannot masquerade as a legal value): while one thread flips a
    /// key's value through `update`, readers must never observe the key
    /// absent nor any value outside the two being written. Structures on
    /// the composite default are skipped — their (non-atomic) contract is
    /// pinned by flock-api's own
    /// `default_update_composite_exposes_absence_window` test (and the
    /// bench registry asserts no registry structure falls back to it).
    pub fn update_atomicity_check_as<K, V, M, KF, VF>(map: &M, kf: KF, vf: VF)
    where
        K: Key,
        V: Value,
        M: Map<K, V> + ?Sized,
        KF: Fn(u64) -> K + Sync,
        VF: Fn(u64) -> V + Sync,
    {
        use std::sync::atomic::AtomicUsize;
        if !map.has_atomic_update() {
            return;
        }
        const KEY: u64 = 7;
        assert!(map.insert(kf(KEY), vf(1)));
        const READERS: usize = 3;
        let readers_done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..READERS {
                let map = &map;
                let kf = &kf;
                let vf = &vf;
                let readers_done = &readers_done;
                s.spawn(move || {
                    let (a, b) = (vf(1), vf(2));
                    for i in 0..3_000 {
                        let got = map.get(kf(KEY));
                        assert!(
                            got.as_ref() == Some(&a) || got.as_ref() == Some(&b),
                            "atomic update exposed {got:?} at read {i}"
                        );
                    }
                    readers_done.fetch_add(1, Relaxed);
                });
            }
            // Writer: flip 1 <-> 2 until every reader has finished.
            let mut v = 1u64;
            while readers_done.load(Relaxed) < READERS {
                v = 3 - v;
                assert!(map.update(kf(KEY), vf(v)), "native update of a present key");
            }
        });
        assert!(map.remove(kf(KEY)));
        assert!(
            !map.update(kf(KEY), vf(9)),
            "update of an absent key stays a no-op"
        );
        assert!(!map.contains(kf(KEY)), "failed update must not insert");
    }

    /// [`update_atomicity_check_as`] at the paper's `(u64, u64)` shape.
    pub fn update_atomicity_check<M: Map<u64, u64> + ?Sized>(map: &M) {
        update_atomicity_check_as(map, |k| k, |v| v);
    }

    /// Net count of live [`DropTracked`] instances (creations minus drops).
    static TRACKED_LIVE: AtomicIsize = AtomicIsize::new(0);

    /// Total constructions of [`DropTracked`] (including clones) — the
    /// materialization probe behind [`contains_no_materialize_check`].
    static TRACKED_CONSTRUCTED: AtomicIsize = AtomicIsize::new(0);

    /// Process-global, monotone count of [`DropTracked`] constructions so
    /// far (clones included). Diff two snapshots around an operation to
    /// count the payload materializations it performed; take them under
    /// [`exclusive`] so parallel tests cannot perturb the counter.
    pub fn tracked_constructions() -> isize {
        TRACKED_CONSTRUCTED.load(Relaxed)
    }

    /// A drop-counting payload for the indirect-path reclamation check:
    /// every construction (including clones) bumps a process-global
    /// counter, every drop decrements it, so leaks and double drops show up
    /// as a non-zero balance. Use only inside [`exclusive`]-serialized
    /// tests — the counter is global.
    #[derive(Debug)]
    pub struct DropTracked(pub u64);

    impl DropTracked {
        /// A new tracked instance carrying `v`.
        pub fn new(v: u64) -> Self {
            TRACKED_LIVE.fetch_add(1, Relaxed);
            TRACKED_CONSTRUCTED.fetch_add(1, Relaxed);
            DropTracked(v)
        }
    }

    impl Clone for DropTracked {
        fn clone(&self) -> Self {
            DropTracked::new(self.0)
        }
    }

    impl PartialEq for DropTracked {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0
        }
    }

    impl Drop for DropTracked {
        fn drop(&mut self) {
            TRACKED_LIVE.fetch_sub(1, Relaxed);
        }
    }

    /// Reclamation check for the indirect (fat value) path: hammer a map of
    /// `Indirect<DropTracked>` values with contended inserts, removes,
    /// updates and reads, drain it, drop it, flush the collector — and
    /// assert every tracked instance was dropped exactly once (a positive
    /// balance is a leak, a negative one a double drop).
    ///
    /// Takes a builder (not a reference) because the map itself must be
    /// dropped before the balance is taken. Call under [`exclusive`]: the
    /// drop counter is process-global.
    pub fn indirect_drop_check<M>(make: impl FnOnce() -> M)
    where
        M: Map<u64, Indirect<DropTracked>>,
    {
        let before = TRACKED_LIVE.load(Relaxed);
        {
            let map = make();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let map = &map;
                    s.spawn(move || {
                        let mut state = (t + 1) * 0x9E37_79B9;
                        for i in 0..400u64 {
                            let hot = xorshift(&mut state) % 16;
                            match xorshift(&mut state) % 4 {
                                0 => {
                                    let _ = map.insert(hot, Indirect(DropTracked::new(i)));
                                }
                                1 => {
                                    let _ = map.remove(hot);
                                }
                                2 => {
                                    let _ = map.update(hot, Indirect(DropTracked::new(i + 1_000)));
                                }
                                _ => {
                                    let _ = map.get(hot);
                                }
                            }
                        }
                    });
                }
            });
            for k in 0..16 {
                let _ = map.remove(k);
            }
            drop(map);
        }
        // The worker threads above were scope-joined, which waits for their
        // closures but NOT for their TLS destructors — and the destructor
        // is what hands a thread's epoch retire bag to the global orphan
        // list. Retry the flush until the stragglers have landed (bounded,
        // so a genuine leak still fails fast).
        for _ in 0..400 {
            flock_epoch::flush_all();
            if TRACKED_LIVE.load(Relaxed) == before {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(
            TRACKED_LIVE.load(Relaxed),
            before,
            "indirect reclamation imbalance: every retired fat value must be \
             dropped exactly once (positive = leak, negative = double drop)"
        );
    }

    /// Pin the presence-only `contains` contract on the fat-value path:
    /// [`Map::contains`] must not decode and clone an [`Indirect`] payload
    /// it only needs to *observe* — the default `get`-based composite does
    /// exactly that, so every registry structure overrides it. Call under
    /// [`exclusive`]: the construction counter is process-global.
    pub fn contains_no_materialize_check<M>(map: &M)
    where
        M: Map<u64, Indirect<DropTracked>>,
    {
        assert!(map.insert(5, Indirect(DropTracked::new(50))));
        let base = tracked_constructions();
        for _ in 0..64 {
            assert!(map.contains(5), "present key");
            assert!(!map.contains(6), "absent key");
        }
        assert_eq!(
            tracked_constructions() - base,
            0,
            "contains must be presence-only: no fat-value payload may be \
             decoded or cloned on the existence path"
        );
        let got = map.get(5);
        assert!(
            tracked_constructions() > base,
            "get must still materialize the value"
        );
        assert_eq!(got.map(|Indirect(d)| d.0), Some(50));
        assert!(map.remove(5));
        flock_epoch::flush_all();
    }

    /// Sequential differential check of [`OrderedMap::range`] and
    /// [`OrderedMap::iter`] against a `BTreeMap` oracle over a mix of bound
    /// shapes. `kf` must be strictly monotone (order-preserving) on
    /// `0..key_range`; `vf` injective on the value stamps.
    pub fn range_oracle_check_as<K, V, M, KF, VF>(
        map: &M,
        ops: usize,
        key_range: u64,
        seed: u64,
        kf: KF,
        vf: VF,
    ) where
        K: Key,
        V: Value,
        M: OrderedMap<K, V> + ?Sized,
        KF: Fn(u64) -> K,
        VF: Fn(u64) -> V,
    {
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = seed | 1;
        let expect = |oracle: &BTreeMap<u64, u64>, lo: Bound<u64>, hi: Bound<u64>| -> Vec<(K, V)> {
            oracle
                .range((lo, hi))
                .map(|(k, v)| (kf(*k), vf(*v)))
                .collect()
        };
        for i in 0..ops {
            let k = xorshift(&mut state) % key_range;
            match xorshift(&mut state) % 4 {
                0 => {
                    let expect_new = !oracle.contains_key(&k);
                    if expect_new {
                        oracle.insert(k, i as u64);
                    }
                    assert_eq!(map.insert(kf(k), vf(i as u64)), expect_new, "insert({k})");
                }
                1 => {
                    let expect_hit = oracle.remove(&k).is_some();
                    assert_eq!(map.remove(kf(k)), expect_hit, "remove({k})");
                }
                _ => {
                    let a = xorshift(&mut state) % key_range;
                    let b = xorshift(&mut state) % key_range;
                    let (lo_id, hi_id) = (a.min(b), a.max(b));
                    let (klo, khi) = (kf(lo_id), kf(hi_id));
                    let (got, want) = match xorshift(&mut state) % 4 {
                        0 => (
                            map.range(Bound::Included(&klo), Bound::Excluded(&khi)),
                            expect(&oracle, Bound::Included(lo_id), Bound::Excluded(hi_id)),
                        ),
                        1 => (
                            map.range(Bound::Included(&klo), Bound::Included(&khi)),
                            expect(&oracle, Bound::Included(lo_id), Bound::Included(hi_id)),
                        ),
                        2 => (
                            map.range(Bound::Unbounded, Bound::Excluded(&khi)),
                            expect(&oracle, Bound::Unbounded, Bound::Excluded(hi_id)),
                        ),
                        _ => (
                            map.range(Bound::Excluded(&klo), Bound::Unbounded),
                            expect(&oracle, Bound::Excluded(lo_id), Bound::Unbounded),
                        ),
                    };
                    assert_eq!(got, want, "range disagreed with oracle at op {i}");
                }
            }
        }
        assert_eq!(
            map.iter(),
            expect(&oracle, Bound::Unbounded, Bound::Unbounded),
            "iter() disagreed with the full oracle"
        );
    }

    /// Concurrent scan-consistency check — the conformance teeth behind the
    /// [`OrderedMap`] contract: while a mutator flickers some keys and
    /// atomically flips the values of others, racing range scans must only
    /// ever return keys inside their linearization window, in strictly
    /// increasing order, with values drawn from each key's legal set — and
    /// must never miss a key that is present for the scan's whole duration.
    ///
    /// `kf` must be strictly monotone (order-preserving) on `0..64`; `vf`
    /// injective on stamps up to `64 + 1000`.
    pub fn scan_consistency_check_as<K, V, M, KF, VF>(map: &M, kf: KF, vf: VF)
    where
        K: Key,
        V: Value,
        M: OrderedMap<K, V> + Sync + ?Sized,
        KF: Fn(u64) -> K + Sync,
        VF: Fn(u64) -> V + Sync,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        const LO: u64 = 16; // scan window is [LO, HI)
        const HI: u64 = 48;
        const STAMP: u64 = 1_000; // alternate legal value stamp offset
        const SCANNERS: usize = 2;
        const SCANS: usize = 150;
        // Even keys (inside and outside the window) are permanent anchors;
        // odd keys inside the window flicker; nothing else ever exists.
        // Evens outside the window pin the "no key outside its bounds"
        // clause: they are always present yet must never be returned.
        for k in (0..64).step_by(2) {
            assert!(map.insert(kf(k), vf(k)));
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (stop, map, kf, vf) = (&stop, &map, &kf, &vf);
            // Mutator: flicker odd window keys through insert/remove; flip
            // even window values between their two legal stamps through
            // the (atomic) native update.
            s.spawn(move || {
                let mut state = 0x5EED_5EED_u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = LO + xorshift(&mut state) % (HI - LO);
                    if k % 2 == 1 {
                        if !map.insert(kf(k), vf(k)) {
                            let _ = map.remove(kf(k));
                        }
                    } else {
                        let stamp = if xorshift(&mut state).is_multiple_of(2) {
                            k
                        } else {
                            k + STAMP
                        };
                        assert!(map.update(kf(k), vf(stamp)), "even keys are permanent");
                    }
                }
            });
            let scanners: Vec<_> = (0..SCANNERS)
                .map(|t| {
                    s.spawn(move || {
                        let (lo_k, hi_k) = (kf(LO), kf(HI));
                        for scan in 0..SCANS {
                            let got = map.range(Bound::Included(&lo_k), Bound::Excluded(&hi_k));
                            for w in got.windows(2) {
                                assert!(
                                    w[0].0 < w[1].0,
                                    "t{t} scan {scan}: keys out of order or duplicated"
                                );
                            }
                            let mut seen_evens = 0usize;
                            for (k, v) in &got {
                                let id = (LO..HI).find(|i| kf(*i) == *k).unwrap_or_else(|| {
                                    panic!(
                                        "t{t} scan {scan}: key {k:?} observed outside its \
                                         linearization window"
                                    )
                                });
                                if id % 2 == 0 {
                                    assert!(
                                        *v == vf(id) || *v == vf(id + STAMP),
                                        "t{t} scan {scan}: torn or illegal value {v:?} for \
                                         key {id}"
                                    );
                                    seen_evens += 1;
                                } else {
                                    assert!(
                                        *v == vf(id),
                                        "t{t} scan {scan}: illegal value {v:?} for flicker \
                                         key {id}"
                                    );
                                }
                            }
                            assert_eq!(
                                seen_evens,
                                ((HI - LO) / 2) as usize,
                                "t{t} scan {scan}: a permanently-present key was missed"
                            );
                        }
                    })
                })
                .collect();
            for h in scanners {
                h.join().expect("scanner panicked");
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Quiescent sweep: the permanent keys are all still there, ordered.
        let all = map.iter();
        let permanent: Vec<&K> = all
            .iter()
            .map(|(k, _)| k)
            .filter(|k| (0..64).step_by(2).any(|i| kf(i) == **k))
            .collect();
        assert_eq!(permanent.len(), 32, "quiescent sweep lost a permanent key");
    }

    /// Chaos-only progress validation (the `chaos` feature): stall one
    /// victim thread mid-critical-section through the fault-injection seams
    /// and check the paper's central claim *and its inversion* on one
    /// structure:
    ///
    /// * **lock-free mode** — the remaining worker threads must complete a
    ///   full quota of operations colliding with the stalled victim's lock
    ///   (helpers run the victim's thunk from its committed descriptor);
    /// * **blocking mode** — the *same schedule* must fail the quota:
    ///   nothing can help past a stalled TTAS holder, so colliding workers
    ///   spin until the victim is released. The asserted *failure* is the
    ///   documented inversion — it proves the stall really lands inside the
    ///   critical section, so the lock-free arm's pass is meaningful.
    ///
    /// Structures that never cross a flock seam (the hand-crafted baselines
    /// with their own node locks) complete the victim op unparked and the
    /// check returns vacuously — the chaos runner covers their stall
    /// behavior at the workload level instead.
    ///
    /// Call under [`exclusive`]: the chaos policy registry and the lock
    /// mode are process-global.
    #[cfg(feature = "chaos")]
    pub fn progress_under_stall_check<M, F>(make: F)
    where
        M: Map<u64, u64> + Sync,
        F: Fn() -> M,
    {
        use flock_core::{LockMode, set_lock_mode};
        use std::time::Duration;

        set_lock_mode(LockMode::LockFree);
        {
            let map = make();
            match stall::run_stalled_phase(&map, Duration::from_secs(60)) {
                // No flock seam crossed: nothing to stall here.
                None => return,
                Some(done) => assert!(
                    done >= stall::QUOTA,
                    "lock-free progress violated: only {done}/{} worker \
                     iterations completed with a victim stalled \
                     mid-critical-section",
                    stall::QUOTA
                ),
            }
        }
        flock_epoch::flush_all();

        set_lock_mode(LockMode::Blocking);
        {
            let map = make();
            if let Some(done) = stall::run_stalled_phase(&map, Duration::from_secs(2)) {
                assert!(
                    done < stall::QUOTA,
                    "blocking-mode inversion failed: workers met the quota \
                     ({done}) despite a stalled lock holder — the stall seam \
                     is not inside the blocking critical section"
                );
            }
        }
        flock_epoch::flush_all();
        set_lock_mode(LockMode::LockFree);
    }

    /// Strict companion to [`progress_under_stall_check`] for structures
    /// that are *known* to take a flock lock on the victim op (every
    /// structure in this workspace's registry): assert the stalled victim
    /// really parked at an in-critical-section seam
    /// (`InThunk`/`BlockingCritical`) instead of completing seam-free.
    /// This is the EXPERIMENTS.md §8 caveat made checkable — the victim op
    /// is a native `update` of a pre-inserted key, which always enters the
    /// owning lock's critical section. Call under [`exclusive`].
    #[cfg(feature = "chaos")]
    pub fn stall_seam_crossed_check<M, F>(make: F)
    where
        M: Map<u64, u64> + Sync,
        F: Fn() -> M,
    {
        use flock_core::{LockMode, set_lock_mode};
        use std::time::Duration;

        set_lock_mode(LockMode::LockFree);
        {
            let map = make();
            let crossed = stall::run_stalled_phase(&map, Duration::from_secs(60));
            assert!(
                crossed.is_some(),
                "victim op (native update of a present key) completed \
                 without crossing InThunk: the stall schedule is not \
                 exercising this structure's critical section"
            );
        }
        flock_epoch::flush_all();
    }

    /// The machinery behind [`progress_under_stall_check`].
    #[cfg(feature = "chaos")]
    mod stall {
        use super::Map;
        use flock_sync::chaos::{self, ChaosPolicy, Seam};
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::{Arc, Condvar, Mutex};
        use std::time::{Duration, Instant};

        /// The key every thread collides on: the victim stalls holding the
        /// lock its operation on this key takes, and every worker iteration
        /// operates on the same key so it needs that lock (or, lock-free,
        /// helps past it).
        const HOT: u64 = 3;
        /// Worker iterations that must complete while the victim stays
        /// parked (lock-free) / must NOT complete (blocking).
        pub(super) const QUOTA: usize = 300;
        const WORKERS: usize = 2;

        /// Stalls exactly one designated thread, once, at its first
        /// critical-section seam; holds it parked until released.
        struct StallVictim {
            victim: Mutex<Option<std::thread::ThreadId>>,
            parked: AtomicBool,
            served: AtomicBool,
            released: Mutex<bool>,
            cv: Condvar,
        }

        impl StallVictim {
            fn new() -> Self {
                Self {
                    victim: Mutex::new(None),
                    parked: AtomicBool::new(false),
                    served: AtomicBool::new(false),
                    released: Mutex::new(false),
                    cv: Condvar::new(),
                }
            }

            /// Designate the calling thread as the victim.
            fn arm_current(&self) {
                *self.victim.lock().unwrap_or_else(|e| e.into_inner()) =
                    Some(std::thread::current().id());
            }

            fn release(&self) {
                *self.released.lock().unwrap_or_else(|e| e.into_inner()) = true;
                self.cv.notify_all();
            }
        }

        impl ChaosPolicy for StallVictim {
            fn at(&self, seam: Seam) {
                if !matches!(seam, Seam::InThunk | Seam::BlockingCritical) {
                    return;
                }
                if self.served.load(Ordering::Acquire) {
                    return;
                }
                let me = std::thread::current().id();
                if *self.victim.lock().unwrap_or_else(|e| e.into_inner()) != Some(me) {
                    return;
                }
                // Stall once: after release the victim's resumed run (and
                // any helped replay it performs) must pass through freely.
                self.served.store(true, Ordering::Release);
                self.parked.store(true, Ordering::Release);
                let mut rel = self.released.lock().unwrap_or_else(|e| e.into_inner());
                while !*rel {
                    rel = self.cv.wait(rel).unwrap_or_else(|e| e.into_inner());
                }
            }
        }

        /// One stalled-victim schedule against `map` in the *current* lock
        /// mode: victim starts an op on [`HOT`] and parks at its first seam;
        /// workers then run [`QUOTA`] colliding iterations. Returns how many
        /// iterations completed within `window` (the victim is always
        /// released afterwards so every thread joins), or `None` if the
        /// victim's op finished without crossing any seam.
        pub(super) fn run_stalled_phase<M: Map<u64, u64> + Sync>(
            map: &M,
            window: Duration,
        ) -> Option<usize> {
            let policy = Arc::new(StallVictim::new());
            chaos::set_chaos_policy(policy.clone());
            let completed = AtomicUsize::new(0);
            let victim_done = AtomicBool::new(false);
            // The victim op is a **native update of a pre-inserted key**:
            // update always enters the owning lock's critical section,
            // whereas an insert of a present key (and every get) returns
            // through outside-the-lock reads on several structures and
            // never crosses a seam — the EXPERIMENTS.md §8 caveat. The
            // pre-insert runs on this (unarmed) thread, so it cannot park.
            assert!(map.insert(HOT, 1), "pre-insert of the hot key");
            let result = std::thread::scope(|s| {
                {
                    let policy = Arc::clone(&policy);
                    let victim_done = &victim_done;
                    let map = &map;
                    s.spawn(move || {
                        policy.arm_current();
                        // Sentinel value fits the 48-bit inline payload.
                        let _ = map.update(HOT, (1 << 47) - 1);
                        victim_done.store(true, Ordering::Release);
                    });
                }
                // Wait until the victim is parked mid-critical-section —
                // or finished without hitting a seam (no flock locks).
                let t0 = Instant::now();
                loop {
                    if policy.parked.load(Ordering::Acquire) {
                        break;
                    }
                    if victim_done.load(Ordering::Acquire) {
                        return None;
                    }
                    assert!(
                        t0.elapsed() < Duration::from_secs(10),
                        "victim neither parked nor completed within 10s"
                    );
                    std::thread::yield_now();
                }
                for w in 0..WORKERS {
                    let completed = &completed;
                    let map = &map;
                    s.spawn(move || {
                        for i in 0..QUOTA / WORKERS {
                            let v = (w as u64 + 1) * 100_000 + i as u64;
                            // Every iteration crosses the owning lock at
                            // least twice (update of a present key, remove)
                            // regardless of how the structure fast-paths
                            // redundant inserts and gets.
                            let _ = map.insert(HOT, v);
                            let _ = map.get(HOT);
                            let _ = map.update(HOT, v + 1);
                            let _ = map.remove(HOT);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                let deadline = Instant::now() + window;
                while completed.load(Ordering::Relaxed) < QUOTA && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(10));
                }
                let done_in_window = completed.load(Ordering::Relaxed);
                // Release unconditionally so both arms join cleanly.
                policy.release();
                Some(done_in_window)
            });
            chaos::clear_chaos_policy();
            result
        }
    }
}

/// Stamp out the shared conformance suite for one map structure.
///
/// `$name` becomes a test module; `$make` is an expression building a fresh
/// instance (evaluated once per test) and must be *polymorphic in `(K, V)`*
/// — each generated test instantiates it at its own type pair:
///
/// * `(u64, u64)` — the paper's evaluation shape: differential oracle,
///   partitioned stress, provided-method check (each in both lock modes),
///   oversubscribed helping stress (lock-free), and the `update` atomicity
///   capability check.
/// * `(u32, u16)` — a small-inline combo exercising the non-`u64` inline
///   encodings (oracle + `update` atomicity).
/// * `(u64, Indirect<[u64; 4]>)` — a fat, heap-indirected value combo
///   (oracle, stress, and `update` atomicity over the indirect-value RMW).
/// * `(u64, Indirect<DropTracked>)` — the drop-exactly-once reclamation
///   check for the indirect path (inserts, removes, and native updates).
///
/// ```ignore
/// flock_api::map_conformance!(dlist, flock_ds::dlist::DList::new());
/// ```
#[macro_export]
macro_rules! map_conformance {
    ($name:ident, $make:expr) => {
        mod $name {
            #[allow(unused_imports)]
            use super::*;

            #[test]
            fn oracle() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::oracle_check(&m, 3_000, 128, 42);
                });
            }

            #[test]
            fn partition_stress() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::partition_stress(&m, 4, 1_200);
                });
            }

            #[test]
            fn default_methods() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::default_methods_check(&m);
                });
            }

            #[test]
            fn oversubscribed_helping() {
                // Lock-free mode only: oversubscription is exactly the
                // regime where helping carries the system past descheduled
                // lock holders; under blocking locks the same schedule
                // merely spins, which the partition stress already covers.
                $crate::testing::exclusive(|| {
                    let m = $make;
                    $crate::testing::oversubscribed_stress(&m, 150);
                });
            }

            #[test]
            fn oracle_small_types() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::oracle_check_as(
                        &m,
                        2_000,
                        128,
                        43,
                        |k| k as u32,
                        |v| v as u16,
                    );
                });
            }

            #[test]
            fn oracle_fat_values() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::oracle_check_as(
                        &m,
                        2_000,
                        128,
                        44,
                        |k| k,
                        $crate::testing::fat_value,
                    );
                });
            }

            #[test]
            fn stress_fat_values() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::partition_stress_as(
                        &m,
                        4,
                        600,
                        |k| k,
                        $crate::testing::fat_value,
                    );
                });
            }

            #[test]
            fn indirect_drops() {
                $crate::testing::exclusive(|| {
                    $crate::testing::indirect_drop_check(|| $make);
                });
            }

            #[test]
            fn contains_no_materialize() {
                $crate::testing::exclusive(|| {
                    let m = $make;
                    $crate::testing::contains_no_materialize_check(&m);
                });
            }

            #[test]
            fn update_atomicity() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::update_atomicity_check(&m);
                });
            }

            #[test]
            fn update_atomicity_small_types() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::update_atomicity_check_as(&m, |k| k as u32, |v| v as u16);
                });
            }

            /// Chaos-only (the stamping crate's `chaos` feature): one
            /// victim stalled mid-critical-section must not stop the other
            /// threads in lock-free mode, and must stop them in blocking
            /// mode — see
            /// [`progress_under_stall_check`]($crate::testing::progress_under_stall_check)
            /// for the full contract (baselines with their own locks skip
            /// vacuously).
            #[cfg(feature = "chaos")]
            #[test]
            fn progress_under_stall() {
                $crate::testing::exclusive(|| {
                    $crate::testing::progress_under_stall_check(|| $make);
                });
            }

            #[test]
            fn update_atomicity_fat_values() {
                // The native RMW over the indirect repr: every applied
                // update installs one fresh encoding and retires exactly
                // one displaced encoding (the reclamation half is pinned
                // by `indirect_drops`, whose workload includes `update`).
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::update_atomicity_check_as(
                        &m,
                        |k| k,
                        $crate::testing::fat_value,
                    );
                });
            }
        }
    };
}

/// Stamp out the ordered-map conformance suite for one structure
/// implementing [`OrderedMap`]: a sequential differential range check
/// against a `BTreeMap` oracle (plain and fat values) and the concurrent
/// [`scan_consistency_check_as`](testing::scan_consistency_check_as) at
/// all three `(K, V)` shapes — scans racing inserts/removes/updates must
/// never observe a key outside its linearization window, a torn value, or
/// miss a permanently-present key.
///
/// ```ignore
/// flock_api::ordered_map_conformance!(dlist_ordered, flock_ds::dlist::DList::new());
/// ```
#[macro_export]
macro_rules! ordered_map_conformance {
    ($name:ident, $make:expr) => {
        mod $name {
            #[allow(unused_imports)]
            use super::*;

            #[test]
            fn range_oracle() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::range_oracle_check_as(&m, 2_000, 128, 45, |k| k, |v| v);
                });
            }

            #[test]
            fn range_oracle_fat_values() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::range_oracle_check_as(
                        &m,
                        1_200,
                        128,
                        46,
                        |k| k,
                        $crate::testing::fat_value,
                    );
                });
            }

            #[test]
            fn scan_consistency() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::scan_consistency_check_as(&m, |k| k, |v| v);
                });
            }

            #[test]
            fn scan_consistency_small_types() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::scan_consistency_check_as(&m, |k| k as u32, |v| v as u16);
                });
            }

            #[test]
            fn scan_consistency_fat_values() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::scan_consistency_check_as(
                        &m,
                        |k| k,
                        $crate::testing::fat_value,
                    );
                });
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Minimal reference implementation to validate the harness itself —
    /// generic like the real structures, with a *native* (mutex-atomic)
    /// `update` so the capability path of the harness is exercised here.
    struct MutexMap<K, V>(Mutex<HashMap<K, V>>);

    impl<K, V> MutexMap<K, V> {
        fn new() -> Self {
            Self(Mutex::new(HashMap::new()))
        }
    }

    impl<K: Key, V: Value> Map<K, V> for MutexMap<K, V> {
        fn insert(&self, key: K, value: V) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::hash_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        }
        fn remove(&self, key: K) -> bool {
            self.0.lock().unwrap().remove(&key).is_some()
        }
        fn get(&self, key: K) -> Option<V> {
            self.0.lock().unwrap().get(&key).cloned()
        }
        fn contains(&self, key: K) -> bool {
            // Presence-only: no value clone (the conformance harness's
            // `contains_no_materialize` pins this for every consumer).
            self.0.lock().unwrap().contains_key(&key)
        }
        fn name(&self) -> &'static str {
            "mutex_hashmap"
        }
        fn update(&self, key: K, value: V) -> bool {
            // Native atomic update: the whole map is one critical section.
            match self.0.lock().unwrap().get_mut(&key) {
                Some(slot) => {
                    *slot = value;
                    true
                }
                None => false,
            }
        }
        fn has_atomic_update(&self) -> bool {
            true
        }
        fn len_approx(&self) -> Option<usize> {
            Some(self.0.lock().unwrap().len())
        }
    }

    map_conformance!(mutex_hashmap, MutexMap::new());

    /// Delegating wrapper that observes the underlying map at the moment
    /// the default `update` composite calls back into `insert`: the window
    /// between its `remove` and `insert` halves, made deterministic.
    struct UpdateWindowProbe {
        inner: MutexMap<u64, u64>,
        absent_during_reinsert: std::sync::atomic::AtomicBool,
    }

    impl Map<u64, u64> for UpdateWindowProbe {
        fn insert(&self, key: u64, value: u64) -> bool {
            // The default composite reaches here after its remove half: the
            // key's absence is observable at this instant — this is the
            // documented non-atomicity window.
            if self.inner.get(key).is_none() {
                self.absent_during_reinsert
                    .store(true, std::sync::atomic::Ordering::SeqCst);
            }
            self.inner.insert(key, value)
        }
        fn remove(&self, key: u64) -> bool {
            self.inner.remove(key)
        }
        fn get(&self, key: u64) -> Option<u64> {
            self.inner.get(key)
        }
        fn name(&self) -> &'static str {
            "update_window_probe"
        }
    }

    /// Pin the documented behavior of the **default** `Map::update`: it is
    /// the non-atomic remove-then-insert composite, so the key is
    /// observably absent in between. This contract now applies only to
    /// `Map` implementations *outside* this workspace — every structure in
    /// the bench registry overrides `update` natively and flips
    /// `has_atomic_update()`, so the composite is unreachable from the
    /// registry (asserted by flock-bench's
    /// `composite_update_unreachable_from_registry`); the conformance
    /// harness's `update_atomicity*` tests assert the negation (no
    /// observable absence) for them. The probe below keeps the default's
    /// documented window pinned for external implementors.
    #[test]
    fn default_update_composite_exposes_absence_window() {
        use std::sync::atomic::Ordering::SeqCst;
        let probe = UpdateWindowProbe {
            inner: MutexMap::new(),
            absent_during_reinsert: std::sync::atomic::AtomicBool::new(false),
        };
        assert!(!probe.has_atomic_update(), "probe uses the composite");
        assert!(probe.insert(9, 90));
        probe.absent_during_reinsert.store(false, SeqCst); // ignore the initial insert

        assert!(Map::update(&probe, 9, 91), "update of a present key");
        assert!(
            probe.absent_during_reinsert.load(SeqCst),
            "the default update composite must pass through an observable \
             absent state between its remove and insert halves"
        );
        assert_eq!(probe.get(9), Some(91), "update result intact");

        // The absent-key contract of the composite: no phantom insert.
        probe.absent_during_reinsert.store(false, SeqCst);
        assert!(!Map::update(&probe, 555, 1), "absent key: update refused");
        assert_eq!(probe.get(555), None, "refused update must not insert");
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Map<u64, u64>> = Box::new(MutexMap::new());
        assert!(boxed.insert(1, 2));
        assert_eq!(boxed.get(1), Some(2));
        assert!(boxed.contains(1));
        assert!(boxed.update(1, 3));
        assert_eq!(boxed.get(1), Some(3));
        assert_eq!(boxed.len_approx(), Some(1));
        assert!(boxed.remove(1));
        assert_eq!(boxed.name(), "mutex_hashmap");
    }

    #[test]
    fn trait_is_object_safe_at_fat_values() {
        let boxed: Box<dyn Map<u64, Indirect<String>>> = Box::new(MutexMap::new());
        assert!(boxed.insert(1, Indirect("fat".to_string())));
        assert_eq!(boxed.get(1), Some(Indirect("fat".to_string())));
        assert!(boxed.remove(1));
    }

    #[test]
    fn references_and_boxes_forward() {
        let m: MutexMap<u64, u64> = MutexMap::new();
        let r: &dyn Map<u64, u64> = &m;
        assert!((&r).insert(5, 6));
        assert_eq!(Map::get(&r, 5), Some(6));
        assert!((&r).has_atomic_update(), "capability forwards through refs");
    }

    /// Hot-lock storm at 8 threads: FIFO admission must keep the per-thread
    /// completed-op spread bounded. The `Race` run is the baseline being
    /// beaten — its CAS-race admission gives no per-thread guarantee, and
    /// its measured max/min spread routinely lands anywhere from ~1.5x to
    /// unbounded (a thread that keeps losing the install race completes
    /// arbitrarily few ops), so only liveness is asserted for it here; the
    /// quantitative comparison lives in the `-fair` bench series
    /// (EXPERIMENTS.md §11).
    #[test]
    fn no_starvation_under_contention() {
        use flock_core::Admission;
        use std::time::Duration;
        const THREADS: usize = 8;
        const WINDOW: Duration = Duration::from_millis(200);
        // ~10µs of critical-section compute: enough to keep the hot lock
        // saturated (see hot_lock_storm docs) while the 200ms window still
        // collects thousands of ops per thread.
        const CS_SPIN: u32 = 10_000;
        testing::exclusive(|| {
            let race =
                testing::hot_lock_storm(Admission::Race, THREADS, WINDOW, CS_SPIN, Duration::ZERO);
            // Baseline: every thread must at least stay live (helping
            // guarantees system-wide progress, not individual fairness).
            assert!(
                race.iter().sum::<u64>() > 0,
                "race storm made no progress at all"
            );

            let fifo =
                testing::hot_lock_storm(Admission::Fifo, THREADS, WINDOW, CS_SPIN, Duration::ZERO);
            let ratio = testing::fairness_ratio(&fifo);
            assert!(
                fifo.iter().all(|&n| n > 0),
                "a FIFO waiter was starved outright: {fifo:?}"
            );
            // Generous bound: FIFO handoff keeps admission near round-robin,
            // so the spread should be small; the slack absorbs scheduler
            // noise on oversubscribed CI boxes, while still being far below
            // what a pathological Race schedule can produce.
            assert!(
                ratio <= 6.0,
                "FIFO max/min completed-op ratio {ratio:.2} out of bounds: {fifo:?}"
            );
        });
    }
}
