//! # flock-api — the one public map interface of the Flock workspace
//!
//! Every concurrent map in this workspace — the seven Flock structures in
//! `flock-ds` and the five hand-crafted comparators in `flock-baselines` —
//! implements the single [`Map`] trait defined here. The benchmark driver
//! (`flock-workload`), the figure harness (`flock-bench`), the examples and
//! the integration tests are all written against this trait, so adding a
//! structure means implementing one interface, once.
//!
//! The trait is generic over [`Key`] and [`Value`] (marker bounds with
//! blanket impls); the paper's evaluation shape is `Map<u64, u64>` — 8-byte
//! keys and values — and that is what the conformance harness instantiates.
//!
//! ## Conformance harness
//!
//! [`map_conformance!`] stamps out the shared test suite — a sequential
//! differential check against [`std::collections::BTreeMap`] and a
//! partitioned multi-thread stress — for one structure, in **both** lock
//! modes (lock-free and blocking). Structures that ignore the mode (the
//! baselines) simply run the same suite twice:
//!
//! ```ignore
//! flock_api::map_conformance!(dlist, flock_ds::dlist::DList::new());
//! ```

#![warn(missing_docs)]

use std::fmt::Debug;
use std::hash::Hash;

/// Marker bound for map keys: cheap to copy, totally ordered, hashable,
/// printable in assertions, and shareable across helper threads.
pub trait Key: Copy + Ord + Hash + Debug + Send + Sync + 'static {}
impl<T: Copy + Ord + Hash + Debug + Send + Sync + 'static> Key for T {}

/// Marker bound for map values: cheap to copy, comparable for differential
/// checks, printable in assertions, and shareable across helper threads.
pub trait Value: Copy + PartialEq + Debug + Send + Sync + 'static {}
impl<T: Copy + PartialEq + Debug + Send + Sync + 'static> Value for T {}

/// A linearizable concurrent map.
///
/// All operations take `&self` and are safe to call from any number of
/// threads. The trait is object-safe: the harness moves structures around
/// as `Box<dyn Map<u64, u64>>`.
pub trait Map<K: Key, V: Value>: Send + Sync {
    /// Insert `(key, value)`. Returns `false` (leaving the map unchanged)
    /// if `key` was already present.
    fn insert(&self, key: K, value: V) -> bool;

    /// Remove `key`. Returns `false` if it was not present.
    fn remove(&self, key: K) -> bool;

    /// Look up `key`.
    fn get(&self, key: K) -> Option<V>;

    /// A short name for reports (e.g. `"dlist"`).
    fn name(&self) -> &'static str;

    /// Is `key` present?
    ///
    /// Provided in terms of [`Map::get`]; structures with a cheaper
    /// existence check may override.
    fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Replace the value stored under an existing `key`. Returns `false`
    /// (inserting nothing) if `key` was absent.
    ///
    /// The default is the remove-then-insert composite, which is **not
    /// atomic**: a concurrent reader can observe the key absent mid-update,
    /// and a concurrent insert of the same key can win the re-insert race
    /// (in which case the update is dropped, matching a linearization where
    /// the remove and the concurrent insert both took effect). Structures
    /// should override this with a native in-place update where they can.
    fn update(&self, key: K, value: V) -> bool {
        if self.remove(key) {
            let _ = self.insert(key, value);
            true
        } else {
            false
        }
    }

    /// Approximate element count, if the structure offers one.
    ///
    /// `None` (the default) means "not supported"; implementations that keep
    /// or can compute a count return `Some`. Concurrent mutations make any
    /// returned number a snapshot approximation.
    fn len_approx(&self) -> Option<usize> {
        None
    }
}

impl<K: Key, V: Value, M: Map<K, V> + ?Sized> Map<K, V> for &M {
    fn insert(&self, key: K, value: V) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: K) -> bool {
        (**self).remove(key)
    }
    fn get(&self, key: K) -> Option<V> {
        (**self).get(key)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn contains(&self, key: K) -> bool {
        (**self).contains(key)
    }
    fn update(&self, key: K, value: V) -> bool {
        (**self).update(key, value)
    }
    fn len_approx(&self) -> Option<usize> {
        (**self).len_approx()
    }
}

impl<K: Key, V: Value, M: Map<K, V> + ?Sized> Map<K, V> for Box<M> {
    fn insert(&self, key: K, value: V) -> bool {
        (**self).insert(key, value)
    }
    fn remove(&self, key: K) -> bool {
        (**self).remove(key)
    }
    fn get(&self, key: K) -> Option<V> {
        (**self).get(key)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn contains(&self, key: K) -> bool {
        (**self).contains(key)
    }
    fn update(&self, key: K, value: V) -> bool {
        (**self).update(key, value)
    }
    fn len_approx(&self) -> Option<usize> {
        (**self).len_approx()
    }
}

pub mod testing {
    //! The shared conformance-test harness behind [`map_conformance!`]
    //! (also usable directly from hand-written tests).
    //!
    //! This module is compiled into the crate (not `#[cfg(test)]`) because
    //! downstream crates invoke it from *their* test builds.

    use super::Map;
    use std::collections::BTreeMap;

    /// Process-wide lock serializing tests that touch the global lock mode:
    /// switching modes while another test's operations are in flight is
    /// unsupported (as in the paper's library), so mode-sensitive tests must
    /// not overlap within one test process.
    static MODE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Run `test` under both lock modes (lock-free first), restoring
    /// lock-free afterwards. Serialized against every other mode-touching
    /// test in the process.
    pub fn both_modes(test: impl Fn()) {
        use flock_core::{LockMode, set_lock_mode};
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            set_lock_mode(mode);
            test();
        }
        set_lock_mode(LockMode::LockFree);
    }

    /// Run `test` in the (default) lock-free mode while holding the same
    /// exclusion as [`both_modes`].
    pub fn exclusive(test: impl Fn()) {
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        flock_core::set_lock_mode(flock_core::LockMode::LockFree);
        test();
    }

    /// A tiny xorshift generator so the harness needs no external crates.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Single-threaded differential test against a `BTreeMap` oracle.
    pub fn oracle_check<M: Map<u64, u64> + ?Sized>(map: &M, ops: usize, key_range: u64, seed: u64) {
        let mut oracle = BTreeMap::new();
        let mut state = seed | 1;
        for i in 0..ops {
            let k = xorshift(&mut state) % key_range;
            let v = i as u64;
            match xorshift(&mut state) % 3 {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    assert_eq!(
                        map.insert(k, v),
                        expect,
                        "insert({k}) disagreed with oracle at op {i}"
                    );
                }
                1 => {
                    let expect = oracle.remove(&k).is_some();
                    assert_eq!(
                        map.remove(k),
                        expect,
                        "remove({k}) disagreed with oracle at op {i}"
                    );
                }
                _ => {
                    assert_eq!(
                        map.get(k),
                        oracle.get(&k).copied(),
                        "get({k}) disagreed with oracle at op {i}"
                    );
                }
            }
        }
        // Final sweep: every oracle key must be present with the right value.
        for (k, v) in &oracle {
            assert_eq!(map.get(*k), Some(*v), "final sweep mismatch at key {k}");
        }
        // Maintained/computed counters must be exact when quiescent.
        if let Some(n) = map.len_approx() {
            assert_eq!(
                n,
                oracle.len(),
                "quiescent len_approx disagrees with the oracle size"
            );
        }
    }

    /// Multi-threaded stress test: per-key-partition determinism.
    ///
    /// Each thread owns a disjoint key partition (`key % threads == tid`),
    /// so per-thread sequential semantics must hold exactly even under full
    /// concurrency.
    pub fn partition_stress<M: Map<u64, u64> + ?Sized>(map: &M, threads: u64, ops: usize) {
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let mut present = BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    for i in 0..ops {
                        let k = (xorshift(&mut state) % 512) * threads + t;
                        let v = i as u64;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(map.insert(k, v), expect, "t{t} insert({k}) op {i}");
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(k), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(k),
                                    present.get(&k).copied(),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(*k), Some(*v), "t{t} final sweep key {k}");
                    }
                });
            }
        });
    }

    /// Oversubscribed stress: more threads than cores, so lock holders get
    /// descheduled mid-critical-section and (in lock-free mode) contenders
    /// must *help* them — the paper's headline path, exercised here by the
    /// tier-1 conformance suite rather than only by an example binary.
    ///
    /// Two phases per thread: a partitioned phase with exact per-partition
    /// oracle semantics, and a shared-hot-key phase (every thread hammers
    /// the same few keys, maximizing lock collisions) checked by invariant
    /// rather than oracle. Caller should run this in lock-free mode; it is
    /// also valid (just less interesting) under blocking locks.
    pub fn oversubscribed_stress<M: Map<u64, u64> + ?Sized>(map: &M, ops: usize) {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        // At least 4x oversubscription on small CI boxes, bounded so giant
        // dev machines do not turn the test into a thread-spawn benchmark.
        let threads = (2 * cores).clamp(8, 24) as u64;
        const HOT_KEYS: u64 = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &map;
                s.spawn(move || {
                    let mut present = BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    for i in 0..ops {
                        // Shared phase: all threads fight over HOT_KEYS
                        // keys; return values are racy but every op must
                        // complete (helping keeps the system moving past
                        // descheduled holders).
                        let hot = xorshift(&mut state) % HOT_KEYS;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let _ = map.insert(hot, t);
                            }
                            1 => {
                                let _ = map.remove(hot);
                            }
                            _ => {
                                let _ = map.get(hot);
                            }
                        }
                        // Partitioned phase: exact sequential semantics on
                        // this thread's own keys, concurrently with the
                        // contention above.
                        let k = HOT_KEYS + (xorshift(&mut state) % 64) * threads + t;
                        let v = i as u64;
                        match xorshift(&mut state) % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(map.insert(k, v), expect, "t{t} insert({k}) op {i}");
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(k), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(k),
                                    present.get(&k).copied(),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(*k), Some(*v), "t{t} final sweep key {k}");
                    }
                });
            }
        });
        // Quiescent cleanup of the contended keys: they must be in a
        // coherent present-or-absent state.
        for k in 0..HOT_KEYS {
            let present = map.contains(k);
            assert_eq!(map.remove(k), present, "hot key {k} in incoherent state");
            assert!(!map.contains(k), "hot key {k} still present after removal");
        }
    }

    /// Exercise the provided-method surface (`contains`, `update`,
    /// `len_approx`) against the primary operations.
    pub fn default_methods_check<M: Map<u64, u64> + ?Sized>(map: &M) {
        assert!(!map.contains(7));
        assert!(
            !map.update(7, 70),
            "update of an absent key must be a no-op"
        );
        assert!(!map.contains(7), "failed update must not insert");
        assert!(map.insert(7, 70));
        assert!(map.contains(7));
        assert!(map.update(7, 71));
        assert_eq!(map.get(7), Some(71));
        assert!(map.insert(8, 80));
        if let Some(n) = map.len_approx() {
            assert_eq!(n, 2, "quiescent len_approx must be exact");
        }
        assert!(map.remove(7));
        assert!(map.remove(8));
        assert!(!map.contains(7));
        assert!(!map.name().is_empty());
    }
}

/// Stamp out the shared conformance suite for one map structure.
///
/// `$name` becomes a test module; `$make` is an expression building a fresh
/// instance (evaluated once per test). The suite runs the differential
/// oracle check, the partitioned multi-thread stress, and the
/// provided-method check — each in both lock modes.
///
/// ```ignore
/// flock_api::map_conformance!(dlist, flock_ds::dlist::DList::new());
/// ```
#[macro_export]
macro_rules! map_conformance {
    ($name:ident, $make:expr) => {
        mod $name {
            #[allow(unused_imports)]
            use super::*;

            #[test]
            fn oracle() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::oracle_check(&m, 3_000, 128, 42);
                });
            }

            #[test]
            fn partition_stress() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::partition_stress(&m, 4, 1_200);
                });
            }

            #[test]
            fn default_methods() {
                $crate::testing::both_modes(|| {
                    let m = $make;
                    $crate::testing::default_methods_check(&m);
                });
            }

            #[test]
            fn oversubscribed_helping() {
                // Lock-free mode only: oversubscription is exactly the
                // regime where helping carries the system past descheduled
                // lock holders; under blocking locks the same schedule
                // merely spins, which the partition stress already covers.
                $crate::testing::exclusive(|| {
                    let m = $make;
                    $crate::testing::oversubscribed_stress(&m, 150);
                });
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    /// Minimal reference implementation to validate the harness itself.
    struct MutexMap(Mutex<HashMap<u64, u64>>);

    impl MutexMap {
        fn new() -> Self {
            Self(Mutex::new(HashMap::new()))
        }
    }

    impl Map<u64, u64> for MutexMap {
        fn insert(&self, key: u64, value: u64) -> bool {
            let mut m = self.0.lock().unwrap();
            if let std::collections::hash_map::Entry::Vacant(e) = m.entry(key) {
                e.insert(value);
                true
            } else {
                false
            }
        }
        fn remove(&self, key: u64) -> bool {
            self.0.lock().unwrap().remove(&key).is_some()
        }
        fn get(&self, key: u64) -> Option<u64> {
            self.0.lock().unwrap().get(&key).copied()
        }
        fn name(&self) -> &'static str {
            "mutex_hashmap"
        }
        fn len_approx(&self) -> Option<usize> {
            Some(self.0.lock().unwrap().len())
        }
    }

    map_conformance!(mutex_hashmap, MutexMap::new());

    /// Delegating wrapper that observes the underlying map at the moment
    /// the default `update` composite calls back into `insert`: the window
    /// between its `remove` and `insert` halves, made deterministic.
    struct UpdateWindowProbe {
        inner: MutexMap,
        absent_during_reinsert: std::sync::atomic::AtomicBool,
    }

    impl Map<u64, u64> for UpdateWindowProbe {
        fn insert(&self, key: u64, value: u64) -> bool {
            // The default composite reaches here after its remove half: the
            // key's absence is observable at this instant — this is the
            // documented non-atomicity window.
            if self.inner.get(key).is_none() {
                self.absent_during_reinsert
                    .store(true, std::sync::atomic::Ordering::SeqCst);
            }
            self.inner.insert(key, value)
        }
        fn remove(&self, key: u64) -> bool {
            self.inner.remove(key)
        }
        fn get(&self, key: u64) -> Option<u64> {
            self.inner.get(key)
        }
        fn name(&self) -> &'static str {
            "update_window_probe"
        }
    }

    /// Pin the documented behavior of the **default** `Map::update`: it is
    /// the non-atomic remove-then-insert composite, so the key is
    /// observably absent in between. This is the behavioral baseline the
    /// planned native (atomic, in-place) per-structure overrides (ROADMAP)
    /// must flip: when a structure overrides `update` atomically, this
    /// exact observation becomes impossible and its version of this test
    /// must assert the negation.
    #[test]
    fn default_update_composite_exposes_absence_window() {
        use std::sync::atomic::Ordering::SeqCst;
        let probe = UpdateWindowProbe {
            inner: MutexMap::new(),
            absent_during_reinsert: std::sync::atomic::AtomicBool::new(false),
        };
        assert!(probe.insert(9, 90));
        probe.absent_during_reinsert.store(false, SeqCst); // ignore the initial insert

        assert!(Map::update(&probe, 9, 91), "update of a present key");
        assert!(
            probe.absent_during_reinsert.load(SeqCst),
            "the default update composite must pass through an observable \
             absent state between its remove and insert halves"
        );
        assert_eq!(probe.get(9), Some(91), "update result intact");

        // The absent-key contract of the composite: no phantom insert.
        probe.absent_during_reinsert.store(false, SeqCst);
        assert!(!Map::update(&probe, 555, 1), "absent key: update refused");
        assert_eq!(probe.get(555), None, "refused update must not insert");
    }

    #[test]
    fn trait_is_object_safe() {
        let boxed: Box<dyn Map<u64, u64>> = Box::new(MutexMap::new());
        assert!(boxed.insert(1, 2));
        assert_eq!(boxed.get(1), Some(2));
        assert!(boxed.contains(1));
        assert!(boxed.update(1, 3));
        assert_eq!(boxed.get(1), Some(3));
        assert_eq!(boxed.len_approx(), Some(1));
        assert!(boxed.remove(1));
        assert_eq!(boxed.name(), "mutex_hashmap");
    }

    #[test]
    fn references_and_boxes_forward() {
        let m = MutexMap::new();
        let r: &dyn Map<u64, u64> = &m;
        assert!((&r).insert(5, 6));
        assert_eq!(Map::get(&r, 5), Some(6));
    }
}
