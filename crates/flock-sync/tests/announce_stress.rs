//! Stress test for the bounded announcement scan (ISSUE 2 satellite):
//! threads register and exit (exercising thread-id recycling and the
//! shrinking/growing [`flock_sync::tid::scan_bound`]) while scanners hammer
//! `next_free_tag`. Safety properties under churn:
//!
//! 1. **No announced tag is ever issued** — `next_free_tag` must never
//!    return a tag that a live announcer holds for the same location.
//! 2. **The scan bound never excludes a live announcer** — every announcer
//!    continuously re-verifies `is_announced` for its own standing
//!    announcement while the bound moves under it.
//! 3. **Re-announce/clear churn is scan-coherent** — a thread cycling
//!    announce → scan → clear on a second location always sees its own
//!    standing announcement skipped and its cleared tag reissued.

use std::sync::Barrier;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use flock_sync::TagAnnouncements;
use flock_sync::tid;

/// Announcer tids, recorded for diagnostics in scanner assertion messages.
static ANNOUNCER_TIDS: [AtomicUsize; 4] = [const { AtomicUsize::new(usize::MAX) }; 4];

const LOC: usize = 0xF10C_4000;
const OTHER_LOC: usize = 0xF10C_8000;
const ANNOUNCED_TAGS: [u16; 4] = [10, 20, 30, 40];
/// Tag cycled by the re-announce churner on [`OTHER_LOC`].
const CHURN_TAG: u16 = 50;
const RUN: Duration = Duration::from_millis(1_500);

#[test]
fn bounded_scan_is_safe_under_tid_churn() {
    let table = TagAnnouncements::new();
    let stop = AtomicBool::new(false);
    // Everyone (4 announcers + 2 scanners + 1 re-announcer + 2 tid
    // churners + timer) starts together so the churn overlaps the whole
    // measured window.
    let start = Barrier::new(10);
    // Announcers must keep their announcements standing until every
    // scanner has finished its last scan — clearing as soon as `stop` is
    // observed would let a mid-scan scanner legitimately pick up a
    // just-cleared tag and fail property 1 spuriously. 4 announcers + 2
    // scanners + the re-announcer rendezvous here before any clear.
    let drain = Barrier::new(7);

    std::thread::scope(|s| {
        // Announcers: hold one standing announcement each and keep checking
        // the scan still sees it (property 2).
        for (slot, &tag) in ANNOUNCED_TAGS.iter().enumerate() {
            let (table, stop, start, drain) = (&table, &stop, &start, &drain);
            s.spawn(move || {
                let me = tid::current();
                ANNOUNCER_TIDS[slot].store(me.0, Ordering::SeqCst);
                table.announce(me, LOC, tag);
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    assert!(
                        table.is_announced(LOC, tag),
                        "live announcement (loc, {tag}) vanished: scan bound {} excludes a \
                         live announcer (my tid {})",
                        tid::scan_bound(),
                        me.0
                    );
                    assert!(
                        tid::scan_bound() > me.0,
                        "scan bound {} dropped below live tid {}",
                        tid::scan_bound(),
                        me.0
                    );
                }
                drain.wait(); // scanners are done: clearing is now safe
                table.clear(me);
            });
        }

        // Scanners: pick next tags from starts around the announced ones and
        // assert none of the held tags is ever issued (property 1).
        for scanner in 0..2u16 {
            let (table, stop, start, drain) = (&table, &stop, &start, &drain);
            s.spawn(move || {
                start.wait();
                let mut t = scanner; // different phase per scanner
                while !stop.load(Ordering::Relaxed) {
                    let issued = table.next_free_tag(LOC, t % 64);
                    assert!(
                        !ANNOUNCED_TAGS.contains(&issued),
                        "next_free_tag issued announced tag {issued}; scan_bound={}, \
                         announcer tids={:?}, live={}",
                        tid::scan_bound(),
                        ANNOUNCER_TIDS
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .collect::<Vec<_>>(),
                        tid::live_thread_count()
                    );
                    // LOC announcements never leak onto the other location:
                    // only the re-announcer's tag can be held there.
                    let elsewhere = table.next_free_tag(OTHER_LOC, CHURN_TAG);
                    assert!(
                        elsewhere == CHURN_TAG || elsewhere == CHURN_TAG + 1,
                        "unexpected tag {elsewhere} issued on OTHER_LOC"
                    );
                    t = t.wrapping_add(1);
                }
                drain.wait(); // unblock the announcers' clears
            });
        }

        // Re-announcer (property 3): cycle announce → scan → clear on the
        // second location, racing the scanners above. Its own scans are
        // same-thread, so the expectations are exact: a standing own
        // announcement is always skipped, a cleared one always reissued.
        {
            let (table, stop, start, drain) = (&table, &stop, &start, &drain);
            s.spawn(move || {
                let me = tid::current();
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    table.announce(me, OTHER_LOC, CHURN_TAG);
                    assert!(table.is_announced(OTHER_LOC, CHURN_TAG));
                    assert_eq!(
                        table.next_free_tag(OTHER_LOC, CHURN_TAG),
                        CHURN_TAG + 1,
                        "own standing announcement must be skipped"
                    );
                    table.clear(me);
                    assert_eq!(
                        table.next_free_tag(OTHER_LOC, CHURN_TAG),
                        CHURN_TAG,
                        "cleared tag must be issuable again"
                    );
                }
                // Leave the slot standing-clear before scanners drain (the
                // loop's last action was either a clear or an announce; make
                // it deterministically clear).
                table.clear(me);
                drain.wait();
            });
        }

        // Tid churners: a stream of short-lived threads claiming and
        // releasing ids, so the registry recycles slots and the scan bound
        // moves up and down — including above and back below the
        // announcers' ids.
        for _ in 0..2 {
            let (stop, start) = (&stop, &start);
            s.spawn(move || {
                start.wait();
                while !stop.load(Ordering::Relaxed) {
                    std::thread::scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                // Claim an id (first use) and do a token
                                // amount of work so lifetimes overlap.
                                let _ = tid::current();
                                std::hint::black_box(tid::scan_bound());
                            });
                        }
                    });
                }
            });
        }

        // Timer.
        let stop = &stop;
        let start = &start;
        s.spawn(move || {
            start.wait();
            let t0 = Instant::now();
            while t0.elapsed() < RUN {
                std::thread::sleep(Duration::from_millis(25));
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    // Quiescent: announcements cleared, tags issuable again.
    for &tag in &ANNOUNCED_TAGS {
        assert!(!table.is_announced(LOC, tag));
        assert_eq!(table.next_free_tag(LOC, tag), tag);
    }
    assert_eq!(table.next_free_tag(OTHER_LOC, CHURN_TAG), CHURN_TAG);
}
