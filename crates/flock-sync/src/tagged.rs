//! Atomic cell over tag-packed 64-bit words.

// The CCAS_ENABLED ablation knob stays a plain std atomic: it is test/bench
// configuration ("not meant to be toggled while operations run"), not
// protocol state, so the model checker does not turn its reads into
// scheduling points. The data-carrying cell below uses the shim.
use std::sync::atomic::AtomicBool;

use crate::atomic::{AtomicU64, Ordering};
use crate::pack::{pack, unpack_tag, unpack_val};

/// Global switch for the compare-and-compare-and-swap optimization (§6
/// "Avoiding CASes"). On by default; the ablation benchmark turns it off to
/// measure its effect. Not meant to be toggled while operations run.
static CCAS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable/disable the CAS pre-read (ablation hook).
pub fn set_ccas_enabled(enabled: bool) {
    CCAS_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Is the CAS pre-read currently enabled?
pub fn ccas_enabled() -> bool {
    CCAS_ENABLED.load(Ordering::Relaxed)
}

/// An atomic 64-bit word holding a (16-bit tag, 48-bit payload) pair.
///
/// This is the storage cell behind `flock_core::Mutable`. All operations work
/// on whole packed words; interpretation of the payload is left to the caller.
///
/// The CAS entry point is [`TaggedAtomicU64::ccas`], a
/// *compare-and-compare-and-swap*: it reads the word first and skips the CAS
/// when it cannot succeed. The paper reports this simple change is worth up to
/// 2x under high contention with helping (§6 "Avoiding CASes") because
/// helpers usually find someone already performed the update.
#[derive(Debug)]
#[repr(transparent)]
pub struct TaggedAtomicU64 {
    word: AtomicU64,
}

impl TaggedAtomicU64 {
    /// Create a cell holding `val` with tag 0.
    #[inline]
    pub fn new(val: u64) -> Self {
        Self {
            word: AtomicU64::new(pack(0, val)),
        }
    }

    /// Create a cell from a full packed word.
    #[inline]
    pub fn from_packed(word: u64) -> Self {
        Self {
            word: AtomicU64::new(word),
        }
    }

    /// Load the full packed word.
    #[inline(always)]
    pub fn load_packed(&self, order: Ordering) -> u64 {
        self.word.load(order)
    }

    /// Load only the payload bits.
    #[inline(always)]
    pub fn load_val(&self, order: Ordering) -> u64 {
        unpack_val(self.word.load(order))
    }

    /// Load only the tag bits.
    #[inline(always)]
    pub fn load_tag(&self, order: Ordering) -> u16 {
        unpack_tag(self.word.load(order))
    }

    /// Unconditionally store a packed word.
    ///
    /// Only safe to use for locations where stores cannot race (e.g. under a
    /// held lock, or single-threaded initialization); Flock's `Mutable` uses
    /// CAS-based paths for everything else.
    #[inline(always)]
    pub fn store_packed(&self, word: u64, order: Ordering) {
        self.word.store(word, order);
    }

    /// Compare-and-compare-and-swap on packed words.
    ///
    /// Reads the word and returns `false` immediately when it differs from
    /// `expected`; otherwise attempts a single `compare_exchange`. Returns
    /// whether this call installed `new`.
    #[inline(always)]
    pub fn ccas(&self, expected: u64, new: u64) -> bool {
        // Ordering: Relaxed pre-read. A mismatch SKIPS the CAS, so the
        // downgrade is sound only because the read can never be stale
        // enough to mis-skip: every caller obtained `expected` either from
        // its own read of this cell (read-read coherence forbids going
        // backwards) or from a thunk-log commit, whose Acquire read
        // happens-after the committer's read of this cell — so this read is
        // coherence-ordered at or after the read that produced `expected`.
        // If it differs, the cell has genuinely moved past `expected`
        // (tagged words never repeat a value while it could be expected —
        // that is the announcement table's job) and the CAS must fail
        // anyway. The SeqCst compare_exchange below is the linearization
        // point when the pre-read matches.
        if ccas_enabled() && self.word.load(Ordering::Relaxed) != expected {
            return false;
        }
        self.word
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Plain `compare_exchange` without the pre-read, for call sites that just
    /// performed the read themselves.
    #[inline(always)]
    pub fn cas(&self, expected: u64, new: u64) -> bool {
        self.word
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::VAL_MASK;
    use std::sync::Arc;
    use std::sync::atomic::Ordering::SeqCst;

    #[test]
    fn new_has_tag_zero() {
        let c = TaggedAtomicU64::new(7);
        assert_eq!(c.load_tag(SeqCst), 0);
        assert_eq!(c.load_val(SeqCst), 7);
    }

    #[test]
    fn ccas_succeeds_once() {
        let c = TaggedAtomicU64::new(1);
        let old = c.load_packed(SeqCst);
        let new = pack(1, 2);
        assert!(c.ccas(old, new));
        assert!(!c.ccas(old, pack(2, 3)), "stale expected must fail");
        assert_eq!(c.load_val(SeqCst), 2);
        assert_eq!(c.load_tag(SeqCst), 1);
    }

    #[test]
    fn ccas_skips_when_mismatch() {
        let c = TaggedAtomicU64::new(5);
        assert!(!c.ccas(pack(9, 9), pack(10, 10)));
        assert_eq!(c.load_val(SeqCst), 5);
    }

    #[test]
    fn payload_mask() {
        let c = TaggedAtomicU64::new(VAL_MASK);
        assert_eq!(c.load_val(SeqCst), VAL_MASK);
    }

    /// With distinct tags, exactly one of many racing CASes with the same
    /// expected word wins — the ABA-freedom property `Mutable` relies on.
    #[test]
    fn racing_cas_single_winner() {
        let c = Arc::new(TaggedAtomicU64::new(0));
        let old = c.load_packed(SeqCst);
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.ccas(old, pack(1, 100 + i)) as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        assert_eq!(c.load_tag(SeqCst), 1);
    }
}
