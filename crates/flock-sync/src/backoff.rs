//! Truncated exponential backoff for contended retry loops.

use crate::cpu_relax;

/// Exponential backoff with a spin phase followed by a yield phase.
///
/// Modeled on the usual pattern from concurrent-programming practice: spin
/// `2^k` times while `k` is small, then start yielding the CPU so that an
/// oversubscribed scheduler can run the thread that holds the resource.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spins before yielding; `2^SPIN_LIMIT` is the longest pure-spin wait.
    const SPIN_LIMIT: u32 = 6;
    /// Cap on the backoff exponent.
    const YIELD_LIMIT: u32 = 10;

    /// Fresh backoff state.
    #[inline]
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// Back off once, escalating the wait each call.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                cpu_relax();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step < Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Spin-only backoff for very short critical sections; never yields.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..(1u32 << self.step.min(Self::SPIN_LIMIT)) {
            cpu_relax();
        }
        if self.step < Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past pure spinning, a hint that the
    /// caller may want to take a slow path (e.g. help, or park).
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Reset to the initial (shortest) wait.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..Backoff::SPIN_LIMIT + 1 {
            b.snooze();
        }
        assert!(b.is_yielding());
        for _ in 0..100 {
            b.snooze(); // must not overflow or panic
        }
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn spin_never_yields() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_yielding());
    }
}
