//! Truncated exponential backoff with deterministic per-instance jitter
//! for contended retry loops.
//!
//! ## Why jitter (the convoy problem)
//!
//! The pre-jitter backoff waited exactly `2^step` spins at every site. When
//! a lock holder stalls, every waiter walks the *same* deterministic wait
//! sequence, so threads that collided once re-arrive at the lock word in
//! lockstep forever — a convoy: each retry round is a synchronized burst of
//! CAS/load traffic, and on release the whole cohort stampedes at once.
//! Jitter decorrelates the waiters: each `Backoff` seeds a thread-distinct
//! xorshift generator and draws its actual wait uniformly from
//! `[2^step / 2, 2^step]`, so two waiters at the same step disagree on
//! timing and the bursts spread out.
//!
//! ## The hard cap
//!
//! The wait is bounded by [`Backoff::MAX_SPIN`] iterations regardless of
//! step (and the step itself saturates), so a single `snooze`/`spin` call
//! can never wait more than a fixed, unit-tested number of spin-loop
//! iterations. Escalation past the spin phase switches to `yield_now`, one
//! scheduler quantum per call — the caller's retry loop stays live and
//! polls at bounded intervals, which is what lets a helper notice a stalled
//! owner instead of sleeping through it.

use crate::cpu_relax;

/// Exponential backoff with jitter: a spin phase followed by a yield phase.
///
/// Spin `~2^k` times (jittered, capped at [`Backoff::MAX_SPIN`]) while `k`
/// is small, then yield the CPU so an oversubscribed scheduler can run the
/// thread that holds the resource.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    /// Per-instance xorshift state; seeded from a thread-distinct counter
    /// so same-step waiters on different threads draw different waits.
    rng: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Spins before yielding; `2^SPIN_LIMIT` is the longest pure-spin wait.
    const SPIN_LIMIT: u32 = 6;
    /// Cap on the backoff exponent.
    const YIELD_LIMIT: u32 = 10;
    /// Hard cap on a single call's spin count, independent of the step
    /// arithmetic: no `snooze`/`spin` call may wait longer than this many
    /// spin-loop iterations (unit-tested below).
    pub const MAX_SPIN: u32 = 1 << Self::SPIN_LIMIT;

    /// Fresh backoff state with a thread-distinct jitter seed.
    #[inline]
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU32, Ordering};
        static SEED: AtomicU32 = AtomicU32::new(0x9E37_79B9);
        // Weyl-sequence increment: consecutive `Backoff`s (across threads
        // or within one) start from well-separated rng states. Zero is
        // excluded below because xorshift fixes it.
        let seed = SEED.fetch_add(0x9E37_79B9, Ordering::Relaxed);
        Self {
            step: 0,
            rng: seed | 1,
        }
    }

    /// Next jittered wait for the current step: uniform-ish in
    /// `[base/2, base]` where `base = min(2^step, MAX_SPIN)`. Always at
    /// least 1 and at most [`Backoff::MAX_SPIN`].
    #[inline]
    fn jittered_wait(&mut self) -> u32 {
        // xorshift32 (Marsaglia): cheap, never zero for nonzero state.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.rng = x;
        let base = 1u32 << self.step.min(Self::SPIN_LIMIT);
        let half = (base / 2).max(1);
        half + x % half
    }

    /// Back off once, escalating the wait each call.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..self.jittered_wait() {
                cpu_relax();
            }
        } else {
            std::thread::yield_now();
        }
        if self.step < Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Spin-only backoff for very short critical sections; never yields.
    #[inline]
    pub fn spin(&mut self) {
        for _ in 0..self.jittered_wait() {
            cpu_relax();
        }
        if self.step < Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// True once the backoff has escalated past pure spinning, a hint that the
    /// caller may want to take a slow path (e.g. help, or park).
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Reset to the initial (shortest) wait.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_then_saturates() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..Backoff::SPIN_LIMIT + 1 {
            b.snooze();
        }
        assert!(b.is_yielding());
        for _ in 0..100 {
            b.snooze(); // must not overflow or panic
        }
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn spin_never_yields() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_yielding());
    }

    /// The hard cap: at every step, over many draws, the jittered wait is
    /// within `[1, MAX_SPIN]` — a single backoff call can never spin longer
    /// than the cap no matter how far the step has escalated.
    #[test]
    fn wait_is_hard_capped() {
        let mut b = Backoff::new();
        for step in 0..=Backoff::YIELD_LIMIT {
            b.step = step;
            for _ in 0..1000 {
                let w = b.jittered_wait();
                assert!(w >= 1, "wait underflowed at step {step}");
                assert!(
                    w <= Backoff::MAX_SPIN,
                    "wait {w} exceeds hard cap {} at step {step}",
                    Backoff::MAX_SPIN
                );
            }
        }
    }

    /// Jitter actually varies: consecutive draws at a fixed step are not all
    /// identical (the convoy precondition is lockstep-identical waits), and
    /// two independently-created `Backoff`s disagree on their draw sequence.
    #[test]
    fn jitter_decorrelates() {
        let mut b = Backoff::new();
        b.step = Backoff::SPIN_LIMIT; // widest jitter window [32, 64]
        let draws: Vec<u32> = (0..32).map(|_| b.jittered_wait()).collect();
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "draws never varied: {draws:?}"
        );
        let mut c = Backoff::new();
        c.step = Backoff::SPIN_LIMIT;
        let other: Vec<u32> = (0..32).map(|_| c.jittered_wait()).collect();
        assert_ne!(draws, other, "two Backoff instances drew identical jitter");
    }
}
