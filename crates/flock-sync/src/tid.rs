//! Dense, recycled per-thread integer ids.
//!
//! The announcement table ([`crate::announce`]) and the epoch manager
//! (`flock-epoch`) both keep fixed arrays indexed by a small thread id.
//! Ids are claimed lazily on first use by a thread and returned to the pool
//! when the thread exits, so any number of threads can be created over the
//! lifetime of a process as long as at most [`crate::MAX_THREADS`] are live at
//! a time.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::MAX_THREADS;

/// A claimed slot in the global thread-id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub usize);

struct IdPool {
    used: [AtomicBool; MAX_THREADS],
    /// One past the highest id ever claimed; lets scans stop early.
    high_water: AtomicUsize,
}

#[allow(clippy::declare_interior_mutable_const)]
const UNUSED: AtomicBool = AtomicBool::new(false);

static POOL: IdPool = IdPool {
    used: [UNUSED; MAX_THREADS],
    high_water: AtomicUsize::new(0),
};

fn claim_id() -> ThreadId {
    for i in 0..MAX_THREADS {
        if !POOL.used[i].load(Ordering::Relaxed)
            && POOL.used[i]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            POOL.high_water.fetch_max(i + 1, Ordering::Release);
            return ThreadId(i);
        }
    }
    panic!("flock: more than MAX_THREADS ({MAX_THREADS}) threads are live at once");
}

fn release_id(id: ThreadId) {
    POOL.used[id.0].store(false, Ordering::Release);
}

/// One past the highest thread id ever claimed.
///
/// Scans over per-thread arrays (announcements, epoch reservations) iterate
/// only up to this bound, so their cost is proportional to the number of
/// threads actually used rather than `MAX_THREADS`.
#[inline]
pub fn high_water_mark() -> usize {
    POOL.high_water.load(Ordering::Acquire)
}

struct TidGuard(ThreadId);

impl Drop for TidGuard {
    fn drop(&mut self) {
        release_id(self.0);
    }
}

thread_local! {
    static TID: TidGuard = TidGuard(claim_id());
}

/// The calling thread's id, claiming one on first use.
#[inline]
pub fn current() -> ThreadId {
    TID.with(|g| g.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn ids_are_distinct_across_live_threads() {
        let seen = Mutex::new(HashSet::new());
        // Barrier keeps every thread alive until all 16 have claimed an id,
        // so no id can be recycled mid-test (recycling after exit is by
        // design and tested separately).
        let barrier = std::sync::Barrier::new(16);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let id = current();
                    assert!(seen.lock().unwrap().insert(id.0), "duplicate id {}", id.0);
                    barrier.wait();
                });
            }
        });
    }

    #[test]
    fn id_stable_within_thread() {
        assert_eq!(current(), current());
    }

    #[test]
    fn ids_are_recycled() {
        // A thread that exits returns its id; a later thread may reuse it.
        let id1 = std::thread::spawn(|| current().0).join().unwrap();
        // Spawning sequentially, the pool scan-from-zero policy reuses the
        // lowest free slot, which includes id1.
        let id2 = std::thread::spawn(|| current().0).join().unwrap();
        assert!(id2 <= id1.max(id2));
        assert!(high_water_mark() > 0);
    }
}
