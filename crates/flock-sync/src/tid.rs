//! Dense, recycled per-thread integer ids, plus the **active-thread
//! registry**: a live upper bound on claimed ids that keeps every
//! per-thread-array scan proportional to the number of threads actually
//! running, not [`crate::MAX_THREADS`].
//!
//! The announcement table ([`crate::announce`]) and the epoch manager
//! (`flock-epoch`) both keep fixed arrays indexed by a small thread id.
//! Ids are claimed lazily on first use by a thread and returned to the pool
//! when the thread exits, so any number of threads can be created over the
//! lifetime of a process as long as at most [`crate::MAX_THREADS`] are live
//! at a time.
//!
//! ## The scan bound
//!
//! [`scan_bound`] is one past the highest *currently claimed* id. Unlike the
//! monotone [`high_water_mark`], it shrinks again when high-id threads exit,
//! so a long-lived process that once burst to hundreds of threads goes back
//! to cheap scans afterwards.
//!
//! Claim and release mutate the id pool under a mutex — they run once per
//! thread *lifetime*, so this is nowhere near any hot path — which makes the
//! published bound exact at every instant: it can never exclude a live id,
//! because both the `used` flags and the bound are updated atomically with
//! respect to each other. A lock-free lower-on-release was considered and
//! rejected: its downward re-scan can miss a concurrent claim and publish a
//! transiently-too-low bound, which for the announcement table means a
//! live announcement could be skipped — an ABA safety hazard, not a
//! performance bug.
//!
//! Scanners read the bound with a single `SeqCst` load. The safety argument
//! for scans (see `announce.rs` and the epoch collector) requires that a
//! thread's id-claim is ordered before everything the thread later
//! announces or reserves; the claim's `SeqCst` bound-store, the claimer's
//! later `SeqCst` publication fences, and the scanner's `SeqCst` bound-load
//! make that a single-total-order argument.

use std::sync::Mutex;

use crate::MAX_THREADS;
use crate::atomic::{AtomicUsize, Ordering, critical};

/// Model-only sanity mutants (see `flock-model`). Compiled out of every
/// non-`model` build.
#[cfg(feature = "model")]
pub mod mutants {
    use core::sync::atomic::{AtomicBool, Ordering};

    /// Reintroduce the **rejected** lock-free lower-on-release design (see
    /// the module docs): the released slot is cleared and the new bound
    /// computed in one step, but the bound is *published* in a separate,
    /// preemptible step. A claim landing in the window makes the published
    /// bound transiently too low — the exact live-announcement-skipping ABA
    /// hazard the mutex design exists to exclude.
    pub static LOCKFREE_RELEASE: AtomicBool = AtomicBool::new(false);

    pub(crate) fn lockfree_release() -> bool {
        LOCKFREE_RELEASE.load(Ordering::Relaxed)
    }
}

/// A claimed slot in the global thread-id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub usize);

struct PoolInner {
    used: [bool; MAX_THREADS],
    live: usize,
}

static POOL: Mutex<PoolInner> = Mutex::new(PoolInner {
    used: [false; MAX_THREADS],
    live: 0,
});

/// One past the highest currently-claimed id. Written only under the `POOL`
/// mutex; read lock-free by scanners. `SeqCst` on both sides — see the
/// module docs for why the bound participates in the announcement/epoch
/// total-order arguments.
static SCAN_BOUND: AtomicUsize = AtomicUsize::new(0);

/// One past the highest id ever claimed (monotone).
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Number of currently live (claimed) thread ids.
static LIVE_COUNT: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn claim_id() -> ThreadId {
    // `critical`: the mutex already makes claim/release one indivisible
    // mutation in real builds; under the model the same section runs as one
    // SC step so the cooperative scheduler cannot park a mutex holder.
    critical(|| {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        let i = pool.used.iter().position(|u| !u).unwrap_or_else(|| {
            panic!("flock: more than MAX_THREADS ({MAX_THREADS}) threads are live at once")
        });
        pool.used[i] = true;
        pool.live += 1;
        LIVE_COUNT.store(pool.live, Ordering::Relaxed);
        // The bound is raised *before* the claimer can possibly announce or
        // reserve anything under this id (program order), so a scanner that
        // is ordered after any such publication also sees the raised bound.
        if i + 1 > SCAN_BOUND.load(Ordering::Relaxed) {
            SCAN_BOUND.store(i + 1, Ordering::SeqCst);
        }
        HIGH_WATER.fetch_max(i + 1, Ordering::Relaxed);
        ThreadId(i)
    })
}

pub(crate) fn release_id(id: ThreadId) {
    #[cfg(feature = "model")]
    if mutants::lockfree_release() {
        return release_id_lockfree_mutant(id);
    }
    critical(|| {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(pool.used[id.0], "releasing an unclaimed thread id");
        pool.used[id.0] = false;
        pool.live -= 1;
        LIVE_COUNT.store(pool.live, Ordering::Relaxed);
        if id.0 + 1 == SCAN_BOUND.load(Ordering::Relaxed) {
            // This was the top id: shrink the bound to the new top. Exact
            // because `used` can only change under the mutex we hold.
            let new_bound = pool.used[..id.0]
                .iter()
                .rposition(|&u| u)
                .map_or(0, |top| top + 1);
            SCAN_BOUND.store(new_bound, Ordering::SeqCst);
        }
    })
}

/// The rejected lock-free release (see [`mutants::LOCKFREE_RELEASE`]): the
/// bound publication is split out of the atomic release, opening the
/// claim-vs-release window the mutex design closes.
#[cfg(feature = "model")]
fn release_id_lockfree_mutant(id: ThreadId) {
    let new_bound = critical(|| {
        let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(pool.used[id.0], "releasing an unclaimed thread id");
        pool.used[id.0] = false;
        pool.live -= 1;
        LIVE_COUNT.store(pool.live, Ordering::Relaxed);
        (id.0 + 1 == SCAN_BOUND.load(Ordering::Relaxed)).then(|| {
            pool.used[..id.0]
                .iter()
                .rposition(|&u| u)
                .map_or(0, |top| top + 1)
        })
    });
    // Preemptible publication: a claim interleaving here sees a bound that
    // still covers it (3 above) and skips its own raise, after which this
    // stale store lowers the bound below the live claim.
    if let Some(b) = new_bound {
        SCAN_BOUND.store(b, Ordering::SeqCst);
    }
}

/// Release the calling thread's claimed id immediately (model tests only):
/// the same transition a thread exit performs, exposed so the model checker
/// can schedule it *against* concurrent claims and scans instead of waiting
/// for uncontrollable TLS-destructor timing.
#[cfg(feature = "model")]
pub fn model_release_current() {
    crate::thread_ctx::with(|tc| tc.model_release_tid());
}

/// One past the highest **currently claimed** thread id.
///
/// Scans over per-thread arrays (announcements, epoch reservations) iterate
/// only up to this bound, so their cost tracks the number of live threads —
/// and drops back down when threads exit, unlike [`high_water_mark`].
///
/// The bound is exact at the instant it is read: it can never exclude a
/// live id (claims and releases update the pool and the bound together,
/// under a mutex). By the time the `SeqCst` load returns, new threads may of
/// course have claimed higher ids; every scan-based protocol in this
/// workspace tolerates that the same way it always has — via its own
/// publication fences (see `announce.rs`) or epoch re-validation.
#[inline]
pub fn scan_bound() -> usize {
    SCAN_BOUND.load(Ordering::SeqCst)
}

/// One past the highest thread id ever claimed (monotone).
#[inline]
pub fn high_water_mark() -> usize {
    HIGH_WATER.load(Ordering::Relaxed)
}

/// Number of thread ids currently claimed (diagnostics/reporting).
#[inline]
pub fn live_thread_count() -> usize {
    LIVE_COUNT.load(Ordering::Relaxed)
}

/// The calling thread's id, claiming one on first use.
#[inline]
pub fn current() -> ThreadId {
    crate::thread_ctx::with(|tc| tc.tid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn ids_are_distinct_across_live_threads() {
        let seen = Mutex::new(HashSet::new());
        // Barrier keeps every thread alive until all 16 have claimed an id,
        // so no id can be recycled mid-test (recycling after exit is by
        // design and tested separately).
        let barrier = std::sync::Barrier::new(16);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    let id = current();
                    assert!(seen.lock().unwrap().insert(id.0), "duplicate id {}", id.0);
                    assert!(
                        scan_bound() > id.0,
                        "scan bound {} excludes live id {}",
                        scan_bound(),
                        id.0
                    );
                    barrier.wait();
                });
            }
        });
    }

    #[test]
    fn id_stable_within_thread() {
        assert_eq!(current(), current());
    }

    #[test]
    fn ids_are_recycled() {
        // A thread that exits returns its id; a later thread may reuse it.
        let id1 = std::thread::spawn(|| current().0).join().unwrap();
        // Spawning sequentially, the pool scan-from-zero policy reuses the
        // lowest free slot, which includes id1.
        let id2 = std::thread::spawn(|| current().0).join().unwrap();
        assert!(id2 <= id1.max(id2));
        assert!(high_water_mark() > 0);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 32-thread burst with wall-clock polling
    fn scan_bound_shrinks_after_burst() {
        // Claim this thread's id first so the floor is stable.
        let me = current().0;
        let barrier = std::sync::Barrier::new(33);
        // Second barrier: holds every worker alive until the assert below
        // has run — without it, a descheduled main thread could observe the
        // bound *after* the workers exited and released their ids, and the
        // legitimately-shrunken bound would trip the liveness assert.
        let hold = std::sync::Barrier::new(33);
        let max_id = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    let id = current().0;
                    max_id.fetch_max(id, Ordering::Relaxed);
                    barrier.wait(); // all 32 alive at once
                    hold.wait(); // stay alive through the assert
                });
            }
            barrier.wait();
            assert!(scan_bound() > max_id.load(Ordering::Relaxed));
            hold.wait();
        });
        // All 32 exited: the bound must drop back below the burst's top id.
        // Concurrent tests may briefly hold high ids of their own, so poll
        // rather than assert the very first read.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let target = max_id.load(Ordering::Relaxed);
        let mut bound = scan_bound();
        while bound > target && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
            bound = scan_bound();
        }
        assert!(
            bound <= target,
            "bound {bound} did not shrink after 32-thread burst (me={me})"
        );
        assert!(bound > me, "bound must still cover this live thread");
        // The monotone mark, by contrast, remembers the burst.
        assert!(high_water_mark() > max_id.load(Ordering::Relaxed));
    }

    #[test]
    fn live_count_tracks_claims() {
        // Claim this thread's id: from here on the count includes us, so a
        // child thread that has just claimed its own id must observe >= 2.
        // (Other tests' threads may claim/release concurrently — they can
        // only add to what the child sees, never subtract below these two.)
        let _ = current();
        assert!(live_thread_count() >= 1);
        let seen_inside_child = std::thread::spawn(|| {
            let _ = current();
            live_thread_count()
        })
        .join()
        .unwrap();
        assert!(seen_inside_child >= 2, "child saw {seen_inside_child}");
    }
}
