//! Cache-line padding to prevent false sharing.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (two 64-byte lines, covering adjacent-line
/// prefetchers on modern x86) so that independent per-thread hot words never
/// share a cache line.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }
}
