//! # flock-sync — low-level synchronization substrate for Flock
//!
//! This crate provides the word-level machinery that the Flock lock-free-locks
//! library ("Lock-Free Locks Revisited", PPoPP 2022) is built on:
//!
//! * [`pack`] — packing of a 16-bit ABA tag and a 48-bit payload into a single
//!   64-bit word, the [`pack::PackedValue`] encoding trait, and the
//!   [`pack::ValueRepr`] representation layer that lets arbitrary (fat)
//!   values ride in a 48-bit slot, either inline or behind epoch-managed
//!   indirection (`flock_epoch::Indirect`). This is the single-word tagged
//!   representation the paper's experiments use (§6 "ABA", second
//!   optimization).
//! * [`tagged`] — [`tagged::TaggedAtomicU64`], an atomic cell over packed words
//!   with *compare-and-compare-and-swap* (read first, CAS only if it could
//!   succeed; §6 "Avoiding CASes").
//! * [`announce`] — the per-thread *tag announcement table* that makes 16-bit
//!   tag wraparound safe: a tag that is announced for a location is never
//!   re-issued for that location while the announcement stands.
//! * [`tid`] — small dense per-thread integer ids (reused on thread exit) and
//!   the active-thread registry ([`tid::scan_bound`]) that keeps per-thread
//!   array scans proportional to the number of live threads.
//! * [`thread_ctx`] — the single `thread_local!` consolidating every
//!   hot-path per-thread variable (id, epoch pin state, thunk-log cursor),
//!   fetched once per operation.
//! * [`backoff`] — truncated exponential backoff with deterministic jitter
//!   for contended retry loops.
//! * [`chaos`] — named fault-injection points at the protocol seams: no-op
//!   hooks in default builds, a registered `ChaosPolicy` under the
//!   non-default `chaos` feature (the `flock-chaos` crate's substrate).
//! * [`ttas`] — a test-and-test-and-set spin lock; this is exactly the lock the
//!   paper uses for the *blocking* mode of Flock locks.
//! * [`wait_slot`] — per-thread arrival words for FIFO lock admission:
//!   strict-lock waiters publish (lock, ticket, descriptor) here and the
//!   releasing owner scans for the oldest eligible waiter to hand off to.
//! * [`padded`] — `CachePadded<T>` to keep per-thread hot words on their own
//!   cache lines.
//!
//! Everything here is dependency-free and `unsafe` is confined to the packing
//! and type-erasure primitives with documented invariants.

#![warn(missing_docs)]

pub mod announce;
pub mod approx_len;
pub mod atomic;
pub mod backoff;
pub mod chaos;
pub mod pack;
pub mod padded;
pub mod tagged;
pub mod thread_ctx;
pub mod tid;
pub mod ttas;
pub mod wait_slot;

pub use announce::TagAnnouncements;
pub use approx_len::ApproxLen;
pub use backoff::Backoff;
pub use pack::{Inline, PackedValue, TAG_LIMIT, VAL_MASK, ValueRepr, pack, unpack_tag, unpack_val};
pub use padded::CachePadded;
pub use tagged::{TaggedAtomicU64, ccas_enabled, set_ccas_enabled};
pub use thread_ctx::ThreadCtx;
pub use tid::ThreadId;
pub use ttas::TtasLock;

/// Maximum number of live threads that may simultaneously use Flock.
///
/// Announcement and epoch-reservation arrays are statically sized by this, as
/// in the C++ artifact. Thread ids are recycled, so long-running programs can
/// spawn any number of threads as long as no more than this many are *live* at
/// once.
pub const MAX_THREADS: usize = 512;

/// Spin-loop hint wrapper so call sites read well.
#[inline(always)]
pub fn cpu_relax() {
    std::hint::spin_loop();
}
