//! Tag announcement table: makes 16-bit ABA-tag wraparound safe.
//!
//! A `Mutable`'s tag space has only 2^16 values, so a tag eventually repeats.
//! A helper that read a packed word long ago could then perform a stale CAS
//! that wrongly succeeds. The paper sketches Flock's fix (§6 "ABA"): an
//! announcement array ensures a tag that is *announced* is never re-issued
//! for that location.
//!
//! Our concrete protocol (documented in DESIGN.md §3.2):
//!
//! 1. A helper about to use packed word `(t, v)` at location `L` as a
//!    CAS-expected value first **announces** `(L, t)` in its slot, then issues
//!    a `SeqCst` fence, then re-validates that the thunk it is helping is not
//!    yet done. If done, it skips the CAS entirely.
//! 2. A store choosing the *next* tag for `L` scans the table and skips any
//!    announced tag for `L`; the chosen tag is committed to the thunk log so
//!    every helper of the same store uses the identical new word.
//!
//! The hazard-pointer-style argument: if the scanner misses an announcement,
//! the announcing helper's subsequent done-check must observe `done = true`
//! (the scan happens under a lock acquired after the helped thunk completed),
//! so the stale CAS is skipped. If the scan sees the announcement, the tag is
//! not re-issued. Either way no stale CAS can succeed.
//!
//! ## Memory ordering
//!
//! The protocol needs a store–load (Dekker) barrier on both sides: the
//! announcer between its announcement store and its done-check load, and
//! the scanner between its lock acquisition and its slot loads. How that
//! barrier is cheapest is target-dependent, so there are two audited
//! variants:
//!
//! * **TSO targets (`x86_64`)** put the whole Dekker pair in the `SeqCst`
//!   total order: the announcement write is a `SeqCst` swap (one `xchg` —
//!   the seed paid an `xchg` *and* an `mfence` here), the done flag is
//!   written and checked `SeqCst` (plain `mov`s on TSO reads), and the
//!   per-slot scan loads are `SeqCst` (also plain `mov`s). Soundness in S:
//!   `set_done <_S unlock CAM <_S scanner's lock CAS <_S scan load`; if the
//!   scan load misses the announcement swap it precedes it in S, so the
//!   announcer's `SeqCst` done-read (which follows its swap in S) must
//!   observe `set_done` — the announcer skips its CAS. If the scan load
//!   follows the swap in S it sees the announcement — the tag is not
//!   re-issued.
//! * **Weakly-ordered targets** anchor on two `SeqCst` fences — the
//!   announcer's (already required for its done-check) and one at the start
//!   of each scan — and make the slot accesses `Relaxed`: one `dmb` beats a
//!   chain of `ldar`s. With `F_a` the announcer's fence and `F_s` the
//!   scanner's, the `SeqCst` total order leaves exactly two cases:
//!
//!   * `F_a < F_s`: the scanner's post-fence loads must observe the
//!     announcer's pre-fence `(tag, loc)` stores (or later values) — the
//!     announcement is seen and the tag is not re-issued.
//!   * `F_s < F_a`: the scanner may miss the announcement, but then the
//!     announcer's post-fence done-load observes `done = true` — `set_done`
//!     happens-before the unlock CAM, which happens-before the scanner's
//!     lock acquisition (both `SeqCst` RMWs), which is sequenced before
//!     `F_s` — and the stale CAS is skipped.
//!
//!   A torn read (stale `loc` with a newer `tag`, possible under `Relaxed`)
//!   can only produce a false *positive*, which merely skips a usable tag.
//!
//! Scans iterate only up to [`tid::scan_bound`] — the live upper bound of
//! the active-thread registry. A slot above the bound cannot hold a live
//! announcement: the bound is raised (with `SeqCst` order) when a thread
//! claims its id, before that thread can announce anything, so the same
//! case analysis that makes an announcement visible makes the raised bound
//! visible to any scan that must see it.

use crate::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Is the swap-based TSO variant compiled in? Under the `model` feature the
/// fence-anchored weak-target variant is always used, *even on x86_64*:
/// that is the variant native x86 CI can never falsify, so it is the one
/// the model checker must exercise (see `flock-model`).
const TSO_VARIANT: bool = cfg!(all(target_arch = "x86_64", not(feature = "model")));

/// Per-slot scan-load ordering: free-strong on TSO, fence-anchored Relaxed
/// elsewhere (module docs, "Memory ordering").
const SCAN_LOAD: Ordering = if TSO_VARIANT {
    Ordering::SeqCst
} else {
    Ordering::Relaxed
};

/// The scanner-side barrier for the non-TSO variant; a no-op on `x86_64`,
/// where the `SeqCst` scan loads carry the ordering themselves.
#[inline(always)]
fn scan_fence() {
    if !TSO_VARIANT {
        crate::atomic::fence(Ordering::SeqCst);
    }
}

/// Model-only sanity mutants: deliberate protocol weakenings the model
/// checker must be able to catch (see `flock-model`'s test suite). Compiled
/// out of every non-`model` build.
#[cfg(feature = "model")]
pub mod mutants {
    use core::sync::atomic::{AtomicBool, Ordering};

    /// Drop the announcer-side `SeqCst` fence: the announcement store stays
    /// in the announcer's store buffer past its done-check — the exact lost-
    /// announcement Dekker failure the fence exists to prevent.
    pub static SKIP_ANNOUNCE_FENCE: AtomicBool = AtomicBool::new(false);

    pub(crate) fn skip_announce_fence() -> bool {
        SKIP_ANNOUNCE_FENCE.load(Ordering::Relaxed)
    }
}

use crate::MAX_THREADS;
use crate::padded::CachePadded;
use crate::tid::{self, ThreadId};

/// Sentinel for "no announcement" in a slot's location field.
const NONE: usize = 0;

struct Slot {
    /// Address of the announced location (`TaggedAtomicU64`), or [`NONE`].
    loc: AtomicUsize,
    /// Announced tag, valid only while `loc` is non-zero.
    tag: AtomicU64,
}

/// Global table of per-thread tag announcements.
///
/// A process-wide singleton is available via [`global`]; separate instances
/// exist to make unit testing possible.
pub struct TagAnnouncements {
    slots: Box<[CachePadded<Slot>]>,
}

impl TagAnnouncements {
    /// Create a table sized for [`MAX_THREADS`] threads.
    pub fn new() -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    loc: AtomicUsize::new(NONE),
                    tag: AtomicU64::new(0),
                })
            })
            .collect();
        Self { slots }
    }

    /// Announce that the calling thread may CAS `loc_addr` expecting `tag`.
    ///
    /// Includes the announcer-side store–load barrier (a `SeqCst` swap on
    /// TSO, a `SeqCst` fence elsewhere); the caller must follow with its
    /// re-validation read (the descriptor done-check, `SeqCst` on TSO)
    /// before the CAS, and clear with [`TagAnnouncements::clear`]
    /// afterwards.
    #[inline]
    pub fn announce(&self, tid: ThreadId, loc_addr: usize, tag: u16) {
        debug_assert_ne!(loc_addr, NONE);
        let slot = &self.slots[tid.0];
        // Ordering: tag is published by the `loc` write, which keeps the
        // tag store ordered before it on both variants.
        //
        // * x86_64: the loc write is a `SeqCst` *swap* — one `xchg`, which
        //   is both the publication and the announcer's store–load barrier
        //   (the caller's done-check is a `SeqCst` load, and `set_done` is
        //   `SeqCst` there too, so the whole Dekker pair lives in the SC
        //   total order; see `is_announced_ordering` in DESIGN notes and
        //   the module docs). This replaces the seed's `SeqCst` store +
        //   `SeqCst` fence — two full barriers — with one.
        // * elsewhere: a Release store; the `SeqCst` fence is the
        //   linearization point, pairing with the scanner's fence.
        slot.tag.store(tag as u64, Ordering::Relaxed);
        if TSO_VARIANT {
            slot.loc.swap(loc_addr, Ordering::SeqCst);
        } else {
            slot.loc.store(loc_addr, Ordering::Release);
            #[cfg(feature = "model")]
            if mutants::skip_announce_fence() {
                return;
            }
            crate::atomic::fence(Ordering::SeqCst);
        }
    }

    /// Clear the calling thread's announcement.
    #[inline]
    pub fn clear(&self, tid: ThreadId) {
        // Ordering: Release so the preceding CAS cannot sink below the
        // clear. A scanner that still sees the stale announcement only
        // skips a tag — conservative, never unsafe.
        self.slots[tid.0].loc.store(NONE, Ordering::Release);
    }

    /// Is `(loc_addr, tag)` currently announced by any thread?
    ///
    /// Issues its own scanner-side barrier;
    /// [`TagAnnouncements::next_free_tag`] amortizes one over all its
    /// probes instead.
    #[inline]
    pub fn is_announced(&self, loc_addr: usize, tag: u16) -> bool {
        scan_fence();
        self.scan_slots(loc_addr, tag)
    }

    /// Scan for `(loc_addr, tag)`. Caller must have issued the scanner-side
    /// barrier ([`scan_fence`]) after acquiring the location's lock (module
    /// docs, "Memory ordering").
    #[inline]
    fn scan_slots(&self, loc_addr: usize, tag: u16) -> bool {
        // Live-thread bound: slots above it hold no live announcement (the
        // registry raises the bound SeqCst-before a claimer can announce).
        let bound = tid::scan_bound().min(self.slots.len());
        for slot in &self.slots[..bound] {
            // Ordering: SCAN_LOAD (per-target, see module docs); the tag
            // read can always be Relaxed — a torn (loc, tag) pair is only
            // ever a false positive, and when the loc read is SeqCst its
            // release/acquire pairing with the announce store orders the
            // tag store before it.
            if slot.loc.load(SCAN_LOAD) == loc_addr
                && slot.tag.load(Ordering::Relaxed) == tag as u64
            {
                return true;
            }
        }
        false
    }

    /// First tag starting from `start` (cyclically, skipping the reserved
    /// value) that is not announced for `loc_addr`.
    ///
    /// At most [`MAX_THREADS`] tags can be announced at once, so this
    /// terminates within `MAX_THREADS + 1` probes.
    #[inline]
    pub fn next_free_tag(&self, loc_addr: usize, start: u16) -> u16 {
        // One scanner-side barrier for all probes (see module docs): each
        // probe's loads are sequenced after it, which is all the case
        // analysis needs.
        scan_fence();
        let mut t = start;
        if t == crate::pack::TAG_LIMIT {
            t = 0;
        }
        loop {
            if !self.scan_slots(loc_addr, t) {
                return t;
            }
            t = crate::pack::next_tag(t);
        }
    }
}

impl Default for TagAnnouncements {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide announcement table used by `flock-core`.
pub fn global() -> &'static TagAnnouncements {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<TagAnnouncements> = OnceLock::new();
    GLOBAL.get_or_init(TagAnnouncements::new)
}

/// Model-checker support: clear every slot of the global table.
///
/// A pruned/aborted model execution can leave a thread's announcement
/// standing (the thread was unwound between announce and clear); the next
/// execution's scans would then see it and diverge from the recorded
/// schedule. The model engine calls this between executions, when no model
/// threads are live.
#[cfg(feature = "model")]
pub fn model_reset_global() {
    for slot in global().slots.iter() {
        slot.loc.store(NONE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_then_clear() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 7);
        assert!(t.is_announced(0x1000, 7));
        assert!(!t.is_announced(0x1000, 8));
        assert!(!t.is_announced(0x2000, 7));
        t.clear(me);
        assert!(!t.is_announced(0x1000, 7));
    }

    #[test]
    fn next_free_tag_skips_announced() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 5);
        assert_eq!(t.next_free_tag(0x1000, 5), 6);
        assert_eq!(t.next_free_tag(0x1000, 4), 4);
        assert_eq!(t.next_free_tag(0x2000, 5), 5, "other locations unaffected");
        t.clear(me);
    }

    #[test]
    fn next_free_tag_wraps_past_reserved() {
        let t = TagAnnouncements::new();
        // TAG_LIMIT - 1 is the last usable tag; starting there with it
        // announced must wrap to 0, never yielding TAG_LIMIT.
        let me = tid::current();
        let last = crate::pack::TAG_LIMIT - 1;
        t.announce(me, 0x3000, last);
        assert_eq!(t.next_free_tag(0x3000, last), 0);
        t.clear(me);
    }

    #[test]
    fn reannounce_overwrites() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 1);
        t.announce(me, 0x1000, 2);
        assert!(!t.is_announced(0x1000, 1), "slot holds one announcement");
        assert!(t.is_announced(0x1000, 2));
        t.clear(me);
    }
}
