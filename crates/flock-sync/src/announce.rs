//! Tag announcement table: makes 16-bit ABA-tag wraparound safe.
//!
//! A `Mutable`'s tag space has only 2^16 values, so a tag eventually repeats.
//! A helper that read a packed word long ago could then perform a stale CAS
//! that wrongly succeeds. The paper sketches Flock's fix (§6 "ABA"): an
//! announcement array ensures a tag that is *announced* is never re-issued
//! for that location.
//!
//! Our concrete protocol (documented in DESIGN.md §3.2):
//!
//! 1. A helper about to use packed word `(t, v)` at location `L` as a
//!    CAS-expected value first **announces** `(L, t)` in its slot, then issues
//!    a `SeqCst` fence, then re-validates that the thunk it is helping is not
//!    yet done. If done, it skips the CAS entirely.
//! 2. A store choosing the *next* tag for `L` scans the table and skips any
//!    announced tag for `L`; the chosen tag is committed to the thunk log so
//!    every helper of the same store uses the identical new word.
//!
//! The hazard-pointer-style argument: if the scanner misses an announcement,
//! the announcing helper's subsequent done-check must observe `done = true`
//! (the scan happens under a lock acquired after the helped thunk completed),
//! so the stale CAS is skipped. If the scan sees the announcement, the tag is
//! not re-issued. Either way no stale CAS can succeed.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::MAX_THREADS;
use crate::padded::CachePadded;
use crate::tid::{self, ThreadId};

/// Sentinel for "no announcement" in a slot's location field.
const NONE: usize = 0;

struct Slot {
    /// Address of the announced location (`TaggedAtomicU64`), or [`NONE`].
    loc: AtomicUsize,
    /// Announced tag, valid only while `loc` is non-zero.
    tag: AtomicU64,
}

/// Global table of per-thread tag announcements.
///
/// A process-wide singleton is available via [`global`]; separate instances
/// exist to make unit testing possible.
pub struct TagAnnouncements {
    slots: Box<[CachePadded<Slot>]>,
}

impl TagAnnouncements {
    /// Create a table sized for [`MAX_THREADS`] threads.
    pub fn new() -> Self {
        let slots = (0..MAX_THREADS)
            .map(|_| {
                CachePadded::new(Slot {
                    loc: AtomicUsize::new(NONE),
                    tag: AtomicU64::new(0),
                })
            })
            .collect();
        Self { slots }
    }

    /// Announce that the calling thread may CAS `loc_addr` expecting `tag`.
    ///
    /// Must be followed by a `SeqCst` fence (performed here) and a
    /// re-validation read by the caller before the CAS, and cleared with
    /// [`TagAnnouncements::clear`] afterwards.
    #[inline]
    pub fn announce(&self, tid: ThreadId, loc_addr: usize, tag: u16) {
        debug_assert_ne!(loc_addr, NONE);
        let slot = &self.slots[tid.0];
        slot.tag.store(tag as u64, Ordering::Relaxed);
        slot.loc.store(loc_addr, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Clear the calling thread's announcement.
    #[inline]
    pub fn clear(&self, tid: ThreadId) {
        self.slots[tid.0].loc.store(NONE, Ordering::Release);
    }

    /// Is `(loc_addr, tag)` currently announced by any thread?
    #[inline]
    pub fn is_announced(&self, loc_addr: usize, tag: u16) -> bool {
        let hwm = tid::high_water_mark().min(self.slots.len());
        for slot in &self.slots[..hwm] {
            if slot.loc.load(Ordering::SeqCst) == loc_addr
                && slot.tag.load(Ordering::Relaxed) == tag as u64
            {
                return true;
            }
        }
        false
    }

    /// First tag starting from `start` (cyclically, skipping the reserved
    /// value) that is not announced for `loc_addr`.
    ///
    /// At most [`MAX_THREADS`] tags can be announced at once, so this
    /// terminates within `MAX_THREADS + 1` probes.
    #[inline]
    pub fn next_free_tag(&self, loc_addr: usize, start: u16) -> u16 {
        let mut t = start;
        if t == crate::pack::TAG_LIMIT {
            t = 0;
        }
        loop {
            if !self.is_announced(loc_addr, t) {
                return t;
            }
            t = crate::pack::next_tag(t);
        }
    }
}

impl Default for TagAnnouncements {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide announcement table used by `flock-core`.
pub fn global() -> &'static TagAnnouncements {
    use std::sync::OnceLock;
    static GLOBAL: OnceLock<TagAnnouncements> = OnceLock::new();
    GLOBAL.get_or_init(TagAnnouncements::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_then_clear() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 7);
        assert!(t.is_announced(0x1000, 7));
        assert!(!t.is_announced(0x1000, 8));
        assert!(!t.is_announced(0x2000, 7));
        t.clear(me);
        assert!(!t.is_announced(0x1000, 7));
    }

    #[test]
    fn next_free_tag_skips_announced() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 5);
        assert_eq!(t.next_free_tag(0x1000, 5), 6);
        assert_eq!(t.next_free_tag(0x1000, 4), 4);
        assert_eq!(t.next_free_tag(0x2000, 5), 5, "other locations unaffected");
        t.clear(me);
    }

    #[test]
    fn next_free_tag_wraps_past_reserved() {
        let t = TagAnnouncements::new();
        // TAG_LIMIT - 1 is the last usable tag; starting there with it
        // announced must wrap to 0, never yielding TAG_LIMIT.
        let me = tid::current();
        let last = crate::pack::TAG_LIMIT - 1;
        t.announce(me, 0x3000, last);
        assert_eq!(t.next_free_tag(0x3000, last), 0);
        t.clear(me);
    }

    #[test]
    fn reannounce_overwrites() {
        let t = TagAnnouncements::new();
        let me = tid::current();
        t.announce(me, 0x1000, 1);
        t.announce(me, 0x1000, 2);
        assert!(!t.is_announced(0x1000, 1), "slot holds one announcement");
        assert!(t.is_announced(0x1000, 2));
        t.clear(me);
    }
}
