//! The one per-thread context: every hot-path thread-local in one struct.
//!
//! Before this module existed, one uncontended lock-free `try_lock` touched
//! four separate `thread_local!` statics spread over three crates — the
//! thread id (`flock-sync`), the epoch pin depth and collect counter
//! (`flock-epoch`), and the running-thunk log cursor (`flock-core`) — each
//! access paying its own lazy-init check and TLS addressing. [`ThreadCtx`]
//! packs them into a single cache-line-sized struct behind a single
//! `thread_local!`; an operation fetches it **once** with [`with`] and
//! threads the reference through its internals.
//!
//! Layering: this crate cannot name the upper layers' types, so the fields
//! are layer-agnostic primitives. The epoch layer owns `pin_depth` and
//! `ops_since_collect`; the log layer owns the `log_*` and `descriptor`
//! cells, storing type-erased pointers it alone writes and reads (the cells
//! are `null` outside a running thunk). This is the same contract the old
//! per-crate statics had — it just lives in one place now.
//!
//! The context is `Cell`-based and never aliased across threads, so nested
//! [`with`] calls (e.g. a `Mutable::store` inside a thunk that is already
//! running under a `with`) are fine.

use std::cell::Cell;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::tid::{self, ThreadId};

/// Sentinel for "thread id not claimed yet".
const TID_UNCLAIMED: usize = usize::MAX;

/// Number of slab size classes the pool layer (`flock-epoch`) caches per
/// thread. Lives here because the magazine heads are `ThreadCtx` fields;
/// the pool layer asserts its class table matches this length.
pub const POOL_CLASSES: usize = 7;

/// All of a thread's hot mutable state: id, epoch pinning, log cursor,
/// allocator magazines.
pub struct ThreadCtx {
    /// Claimed thread id, or [`TID_UNCLAIMED`]. Claimed lazily by
    /// [`ThreadCtx::tid`]; released by `Drop` at thread exit.
    tid: Cell<usize>,
    /// Epoch layer: nesting depth of `pin()` on this thread.
    pub pin_depth: Cell<usize>,
    /// Epoch layer: outermost unpins since the last collection attempt.
    pub ops_since_collect: Cell<usize>,
    /// Log layer: current log block (`*const LogBlock`), null when the
    /// thread is not running a thunk.
    pub log_block: Cell<*const ()>,
    /// Log layer: position within the current log block.
    pub log_pos: Cell<usize>,
    /// Log layer: descriptor being run (`*const Descriptor`), null at top
    /// level.
    pub descriptor: Cell<*const ()>,
    /// Pool layer: per-size-class magazine heads — intrusive free lists of
    /// slab slots (each free slot's first word stores the next pointer).
    /// Null means empty. Owned by the pool layer the same way the `log_*`
    /// cells are owned by the log layer.
    pub pool_heads: [Cell<*mut u8>; POOL_CLASSES],
    /// Pool layer: number of slots chained from each magazine head.
    pub pool_counts: [Cell<u32>; POOL_CLASSES],
    /// Pool layer: magazine hits since the last publish to the global
    /// counters (published at refill/flush boundaries and thread exit).
    pub pool_hits: Cell<u64>,
    /// Pool layer: total cached-slot count this thread last published to
    /// the global gauge (published at the same boundaries as `pool_hits`).
    pub pool_cached_published: Cell<usize>,
}

impl ThreadCtx {
    const fn new() -> Self {
        Self {
            tid: Cell::new(TID_UNCLAIMED),
            pin_depth: Cell::new(0),
            ops_since_collect: Cell::new(0),
            log_block: Cell::new(std::ptr::null()),
            log_pos: Cell::new(0),
            descriptor: Cell::new(std::ptr::null()),
            pool_heads: [const { Cell::new(std::ptr::null_mut()) }; POOL_CLASSES],
            pool_counts: [const { Cell::new(0) }; POOL_CLASSES],
            pool_hits: Cell::new(0),
            pool_cached_published: Cell::new(0),
        }
    }

    /// This thread's id, claiming one from the registry on first use.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            ThreadId(t)
        } else {
            self.claim_slow()
        }
    }

    #[cold]
    fn claim_slow(&self) -> ThreadId {
        let id = tid::claim_id();
        self.tid.set(id.0);
        id
    }

    /// Is the thread currently running a thunk (logging enabled)?
    #[inline]
    pub fn in_thunk(&self) -> bool {
        !self.log_block.get().is_null()
    }

    /// Model tests only: release this thread's claimed id now (the thread-
    /// exit transition, made schedulable) and forget it, so the `Drop` at
    /// real thread exit does not double-release.
    #[cfg(feature = "model")]
    pub fn model_release_tid(&self) {
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            self.tid.set(TID_UNCLAIMED);
            // A released id may be re-claimed immediately; it must not
            // inherit a stale FIFO arrival published by this incarnation.
            crate::wait_slot::clear(t);
            tid::release_id(ThreadId(t));
        }
    }

    /// Model-engine worker reset: return this pooled worker thread's
    /// context to the pristine state a *fresh* thread would have, so every
    /// model execution starts identically (the DFS replays schedule
    /// prefixes and requires it). Called between executions only.
    #[cfg(feature = "model")]
    pub fn model_reset_thread_state(&self) {
        self.model_release_tid();
        self.pin_depth.set(0);
        self.ops_since_collect.set(0);
        self.log_block.set(std::ptr::null());
        self.log_pos.set(0);
        self.descriptor.set(std::ptr::null());
        // Drain the allocator magazines through the registered exit hook,
        // as a real thread exit would, so pooled workers start every
        // execution with empty magazines.
        run_exit_hook(self);
    }
}

/// Thread-exit hook installed by the pool layer (`flock-epoch`): flushes
/// the magazines to the global pool when a `ThreadCtx` is dropped. This
/// crate cannot name the pool, so the hook is registered as a bare fn.
///
/// Stored as a raw fn pointer; null means "not registered". `Relaxed` is
/// sufficient everywhere: the value, once non-null, never changes (the
/// pool registers one function exactly), a fn pointer carries no data to
/// synchronize, and any thread whose magazines are non-empty has itself
/// loaded or stored a non-null hook on the fill path — per-location
/// coherence then keeps its exit-time load from going back to null.
static EXIT_HOOK: AtomicPtr<()> = AtomicPtr::new(std::ptr::null_mut());

/// Register `hook` to run when any `ThreadCtx` is dropped (thread exit).
/// Idempotent and cheap (a `Relaxed` load on the already-registered path),
/// so callers may invoke it from moderately hot code.
pub fn register_thread_exit_hook(hook: fn(&ThreadCtx)) {
    if EXIT_HOOK.load(Ordering::Relaxed).is_null() {
        EXIT_HOOK.store(hook as *mut (), Ordering::Relaxed);
    }
}

fn run_exit_hook(tc: &ThreadCtx) {
    let h = EXIT_HOOK.load(Ordering::Relaxed);
    if !h.is_null() {
        // SAFETY: `h` was stored from a `fn(&ThreadCtx)` in
        // `register_thread_exit_hook` and never changes once set.
        let hook: fn(&ThreadCtx) = unsafe { std::mem::transmute(h) };
        hook(tc);
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        run_exit_hook(self);
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            // Waits always retract their arrival before returning, so this
            // is a defensive no-op on every normal exit path — but a
            // recycled id must never inherit a stale FIFO arrival.
            crate::wait_slot::clear(t);
            tid::release_id(ThreadId(t));
        }
    }
}

thread_local! {
    static CTX: ThreadCtx = const { ThreadCtx::new() };
}

/// Run `f` with the calling thread's context — the **single** TLS access of
/// a Flock operation. Nesting is allowed (and happens: thunk-internal
/// `Mutable` operations re-enter while `try_lock` holds the outer access).
#[inline]
pub fn with<R>(f: impl FnOnce(&ThreadCtx) -> R) -> R {
    CTX.with(|tc| f(tc))
}

/// Like [`with`], but returns `None` instead of panicking when the
/// context has already been destroyed (TLS teardown). The pool layer's
/// free paths can run from other crates' TLS destructors — e.g. the epoch
/// collector's local-bag drop — and fall back to the global pool then.
#[inline]
pub fn try_with<R>(f: impl FnOnce(&ThreadCtx) -> R) -> Option<R> {
    CTX.try_with(|tc| f(tc)).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_is_claimed_lazily_and_stable() {
        let a = with(|tc| tc.tid());
        let b = with(|tc| tc.tid());
        assert_eq!(a, b);
    }

    #[test]
    fn nested_with_accesses_same_context() {
        with(|outer| {
            outer.log_pos.set(41);
            with(|inner| {
                assert_eq!(inner.log_pos.get(), 41);
                inner.log_pos.set(0);
            });
        });
    }

    #[test]
    fn fresh_thread_starts_clean() {
        std::thread::spawn(|| {
            with(|tc| {
                assert!(!tc.in_thunk());
                assert_eq!(tc.pin_depth.get(), 0);
                assert_eq!(tc.log_pos.get(), 0);
                assert!(tc.descriptor.get().is_null());
            });
        })
        .join()
        .unwrap();
    }
}
