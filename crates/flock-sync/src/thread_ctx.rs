//! The one per-thread context: every hot-path thread-local in one struct.
//!
//! Before this module existed, one uncontended lock-free `try_lock` touched
//! four separate `thread_local!` statics spread over three crates — the
//! thread id (`flock-sync`), the epoch pin depth and collect counter
//! (`flock-epoch`), and the running-thunk log cursor (`flock-core`) — each
//! access paying its own lazy-init check and TLS addressing. [`ThreadCtx`]
//! packs them into a single cache-line-sized struct behind a single
//! `thread_local!`; an operation fetches it **once** with [`with`] and
//! threads the reference through its internals.
//!
//! Layering: this crate cannot name the upper layers' types, so the fields
//! are layer-agnostic primitives. The epoch layer owns `pin_depth` and
//! `ops_since_collect`; the log layer owns the `log_*` and `descriptor`
//! cells, storing type-erased pointers it alone writes and reads (the cells
//! are `null` outside a running thunk). This is the same contract the old
//! per-crate statics had — it just lives in one place now.
//!
//! The context is `Cell`-based and never aliased across threads, so nested
//! [`with`] calls (e.g. a `Mutable::store` inside a thunk that is already
//! running under a `with`) are fine.

use std::cell::Cell;

use crate::tid::{self, ThreadId};

/// Sentinel for "thread id not claimed yet".
const TID_UNCLAIMED: usize = usize::MAX;

/// All of a thread's hot mutable state: id, epoch pinning, log cursor.
pub struct ThreadCtx {
    /// Claimed thread id, or [`TID_UNCLAIMED`]. Claimed lazily by
    /// [`ThreadCtx::tid`]; released by `Drop` at thread exit.
    tid: Cell<usize>,
    /// Epoch layer: nesting depth of `pin()` on this thread.
    pub pin_depth: Cell<usize>,
    /// Epoch layer: outermost unpins since the last collection attempt.
    pub ops_since_collect: Cell<usize>,
    /// Log layer: current log block (`*const LogBlock`), null when the
    /// thread is not running a thunk.
    pub log_block: Cell<*const ()>,
    /// Log layer: position within the current log block.
    pub log_pos: Cell<usize>,
    /// Log layer: descriptor being run (`*const Descriptor`), null at top
    /// level.
    pub descriptor: Cell<*const ()>,
}

impl ThreadCtx {
    const fn new() -> Self {
        Self {
            tid: Cell::new(TID_UNCLAIMED),
            pin_depth: Cell::new(0),
            ops_since_collect: Cell::new(0),
            log_block: Cell::new(std::ptr::null()),
            log_pos: Cell::new(0),
            descriptor: Cell::new(std::ptr::null()),
        }
    }

    /// This thread's id, claiming one from the registry on first use.
    #[inline]
    pub fn tid(&self) -> ThreadId {
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            ThreadId(t)
        } else {
            self.claim_slow()
        }
    }

    #[cold]
    fn claim_slow(&self) -> ThreadId {
        let id = tid::claim_id();
        self.tid.set(id.0);
        id
    }

    /// Is the thread currently running a thunk (logging enabled)?
    #[inline]
    pub fn in_thunk(&self) -> bool {
        !self.log_block.get().is_null()
    }

    /// Model tests only: release this thread's claimed id now (the thread-
    /// exit transition, made schedulable) and forget it, so the `Drop` at
    /// real thread exit does not double-release.
    #[cfg(feature = "model")]
    pub fn model_release_tid(&self) {
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            self.tid.set(TID_UNCLAIMED);
            tid::release_id(ThreadId(t));
        }
    }

    /// Model-engine worker reset: return this pooled worker thread's
    /// context to the pristine state a *fresh* thread would have, so every
    /// model execution starts identically (the DFS replays schedule
    /// prefixes and requires it). Called between executions only.
    #[cfg(feature = "model")]
    pub fn model_reset_thread_state(&self) {
        self.model_release_tid();
        self.pin_depth.set(0);
        self.ops_since_collect.set(0);
        self.log_block.set(std::ptr::null());
        self.log_pos.set(0);
        self.descriptor.set(std::ptr::null());
    }
}

impl Drop for ThreadCtx {
    fn drop(&mut self) {
        let t = self.tid.get();
        if t != TID_UNCLAIMED {
            tid::release_id(ThreadId(t));
        }
    }
}

thread_local! {
    static CTX: ThreadCtx = const { ThreadCtx::new() };
}

/// Run `f` with the calling thread's context — the **single** TLS access of
/// a Flock operation. Nesting is allowed (and happens: thunk-internal
/// `Mutable` operations re-enter while `try_lock` holds the outer access).
#[inline]
pub fn with<R>(f: impl FnOnce(&ThreadCtx) -> R) -> R {
    CTX.with(|tc| f(tc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_is_claimed_lazily_and_stable() {
        let a = with(|tc| tc.tid());
        let b = with(|tc| tc.tid());
        assert_eq!(a, b);
    }

    #[test]
    fn nested_with_accesses_same_context() {
        with(|outer| {
            outer.log_pos.set(41);
            with(|inner| {
                assert_eq!(inner.log_pos.get(), 41);
                inner.log_pos.set(0);
            });
        });
    }

    #[test]
    fn fresh_thread_starts_clean() {
        std::thread::spawn(|| {
            with(|tc| {
                assert!(!tc.in_thunk());
                assert_eq!(tc.pin_depth.get(), 0);
                assert_eq!(tc.log_pos.get(), 0);
                assert!(tc.descriptor.get().is_null());
            });
        })
        .join()
        .unwrap();
    }
}
