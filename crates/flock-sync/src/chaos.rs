//! Named fault-injection points at the protocol seams.
//!
//! This is the third instance of the workspace's seam discipline (after
//! [`crate::atomic`]'s model shim and `flock_core::model_probe`): the real
//! implementation calls [`probe`] at a handful of **named seams** — the
//! points where the paper's progress argument actually bites, i.e. where a
//! thread can stall, die, or unwind while other threads depend on protocol
//! state it published. In default builds [`probe`] is an empty
//! `#[inline(always)]` function, so the hot paths are byte-identical to a
//! hook-free build (enforced by the CI bench gate). Under the non-default
//! `chaos` feature each probe consults a process-global registered
//! [`ChaosPolicy`], which may park the calling thread (stall injection),
//! panic (unwind injection), or do nothing.
//!
//! The policies themselves — bounded/unbounded stalls with releasable
//! latches, panic-at-seam, oversubscription churn — live in the
//! `flock-chaos` crate; this module only defines the seam names and the
//! registration surface, exactly as `atomic` only defines the shim.
//!
//! ## Policy contract
//!
//! A [`ChaosPolicy`] runs **inside** protocol hot paths, possibly while the
//! calling thread holds a Flock lock, owns a committed descriptor, or is
//! epoch-pinned. It must therefore confine itself to `std` primitives
//! (parking, channels, atomics) and must never call back into Flock locks,
//! `Mutable`, or the epoch API — a policy that takes a Flock lock from
//! inside a seam can deadlock against the very thread it is stalling.
//! Panicking out of a probe is explicitly allowed: the seams are placed so
//! that an unwind exercises the panic-safety contract of the surrounding
//! protocol code (see `flock_core::lock`).

/// The named injection points. Each variant is one place in the real
/// implementation where [`probe`] is called; the seam catalog in
/// EXPERIMENTS.md §8 documents what protocol state the calling thread holds
/// at each one and what a stall or unwind there must *not* be able to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seam {
    /// Mid-`try_lock`, lock-free mode: the install CAS has published this
    /// thread's descriptor in the lock word, but the owner has not started
    /// running its thunk. A thread stalled here holds the lock; helpers
    /// must be able to complete the thunk from the committed descriptor.
    LockInstalled,
    /// Inside `ctx::run_in`, immediately before the thunk body executes
    /// (owner or helper, lock-free mode). A stall here parks a thread
    /// mid-critical-section with the log cursor set; a panic here unwinds
    /// out of "the thunk" from the protocol's point of view.
    InThunk,
    /// Inside `Mutable::tagged_cas_after_load_in`, between the tag-choice
    /// log commit and the install CAS — the classic helping window: the
    /// chosen tag is committed and announced but not yet installed, so a
    /// helper replaying the thunk must reach agreement through the log.
    LogCommitToInstall,
    /// In `Lock::help`, after full revalidation (word + generation),
    /// immediately before the helper runs the victim's thunk. A panic here
    /// is "a helper died mid-help"; a stall here is a helper holding an
    /// adopted epoch.
    HelpRun,
    /// Immediately after an epoch reservation is published in `pin_with`.
    /// A permanent stall here is the forever-pinned reader that the epoch
    /// collector must degrade gracefully under (bounded-and-reported bag
    /// growth, never unbounded-and-silent — see `flock_epoch::epoch_stats`).
    EpochPinned,
    /// Blocking mode: the TTAS lock is held and the critical section is
    /// about to execute. A thread stalled here is the paper's motivating
    /// failure: nothing can help it, so waiters spin until it resumes.
    BlockingCritical,
    /// FIFO admission: a strict-lock waiter has published its arrival slot
    /// (wait_slot) but has not yet entered the wait loop. A thread stalled
    /// here forever is the convoy hazard of any queue-based lock: releasing
    /// owners may hand the lock to its published descriptor, and survivors
    /// must still make progress — helpers complete the handed-off thunk,
    /// and later owners skip the done slot.
    FifoArrived,
}

/// A registered fault-injection policy: called at every enabled seam
/// crossing on every thread. See the module docs for the re-entrancy
/// contract. `at` may return normally (no fault), park the calling thread
/// for any duration (stall), or panic (unwind injection).
#[cfg(feature = "chaos")]
pub trait ChaosPolicy: Send + Sync {
    /// Called at each seam crossing.
    fn at(&self, seam: Seam);
}

/// Default build: the probe is an empty inlined function — the call sites
/// compile to nothing, verified by the bench gate against the committed
/// baseline.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub fn probe(_seam: Seam) {}

#[cfg(feature = "chaos")]
pub use active::{clear_chaos_policy, probe, set_chaos_policy};

#[cfg(feature = "chaos")]
mod active {
    use super::{ChaosPolicy, Seam};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, RwLock};

    /// Fast-path gate so un-instrumented test runs that merely *link* the
    /// chaos feature pay one relaxed load per seam, not a lock.
    static ACTIVE: AtomicBool = AtomicBool::new(false);
    static POLICY: RwLock<Option<Arc<dyn ChaosPolicy>>> = RwLock::new(None);

    /// Register `policy` as the process-global chaos policy. Replaces any
    /// previous policy. Tests that register policies must serialize with
    /// each other (the `flock-chaos` harness provides the exclusion).
    pub fn set_chaos_policy(policy: Arc<dyn ChaosPolicy>) {
        *POLICY.write().unwrap_or_else(|e| e.into_inner()) = Some(policy);
        ACTIVE.store(true, Ordering::SeqCst);
    }

    /// Deregister the chaos policy. Probes already in flight keep their
    /// `Arc` clone and finish against the old policy.
    pub fn clear_chaos_policy() {
        ACTIVE.store(false, Ordering::SeqCst);
        *POLICY.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Chaos build: consult the registered policy, if any.
    pub fn probe(seam: Seam) {
        if !ACTIVE.load(Ordering::Relaxed) {
            return;
        }
        // Clone out of the lock so a policy that parks does not hold the
        // registry lock across its stall.
        let policy = POLICY
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .cloned();
        if let Some(p) = policy {
            p.at(seam);
        }
    }
}
