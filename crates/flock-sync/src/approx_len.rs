//! A striped, maintained element counter backing `Map::len_approx`.
//!
//! The ROADMAP asked for maintained counters instead of O(n) walks. A single
//! shared atomic would put one hot cache line under every update of every
//! thread — exactly the coherence traffic this workspace spends so much
//! effort avoiding — so the count is striped: each thread bumps the
//! (cache-padded) stripe picked by its dense thread id, and readers sum the
//! stripes.
//!
//! The sum is a *snapshot approximation* under concurrency (stripes are read
//! one by one), which is precisely the `len_approx` contract; when the
//! structure is quiescent the sum is exact, because every successful
//! insert/remove bumped exactly one stripe.
//!
//! Shared here (rather than per structure crate) because both the baselines
//! (PR 2) and the Flock structures maintain their counts with it. For Flock
//! structures the bump must happen **outside** the thunk — a helped thunk is
//! replayed, and a plain `fetch_add` inside it would double-count; exactly
//! one caller observes `Some(true)` per applied operation, so that return is
//! the unique place to count.

use std::sync::atomic::{AtomicIsize, Ordering};

use crate::{CachePadded, tid};

/// Stripes in the counter. A power of two so the tid fold is a mask; 16
/// cache lines is plenty to keep typical thread counts from colliding.
const STRIPES: usize = 16;

/// Striped approximate element counter. See the module docs.
pub struct ApproxLen {
    stripes: [CachePadded<AtomicIsize>; STRIPES],
}

impl Default for ApproxLen {
    fn default() -> Self {
        Self::new()
    }
}

impl ApproxLen {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self {
            stripes: std::array::from_fn(|_| CachePadded::new(AtomicIsize::new(0))),
        }
    }

    #[inline]
    fn stripe(&self) -> &AtomicIsize {
        &self.stripes[tid::current().0 & (STRIPES - 1)]
    }

    /// Record one successful insert.
    #[inline]
    pub fn inc(&self) {
        // Ordering: Relaxed — the count carries no synchronization; only
        // the total matters, and RMWs never lose increments.
        self.stripe().fetch_add(1, Ordering::Relaxed);
    }

    /// Record one successful remove.
    #[inline]
    pub fn dec(&self) {
        self.stripe().fetch_sub(1, Ordering::Relaxed);
    }

    /// Snapshot sum of the stripes (exact when quiescent). Clamped at zero:
    /// a mid-flight reader can catch a decrement's stripe before the
    /// matching increment's stripe.
    pub fn get(&self) -> usize {
        let sum: isize = self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        sum.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_up_and_down() {
        let c = ApproxLen::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.inc();
        c.dec();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn concurrent_counting_is_exact_when_quiescent() {
        let c = ApproxLen::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                    for _ in 0..400 {
                        c.dec();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * 600);
    }
}
