//! Test-and-test-and-set spin lock — the blocking mode of Flock locks.
//!
//! The paper's blocking variant of `try_lock`/`strict_lock` uses a
//! test-and-test-and-set lock (§7: "blocking (using test-and-test-and-set
//! locks)"). This module provides that lock as a standalone primitive; in
//! `flock-core` the same lock word doubles as the descriptor word when the
//! library runs in lock-free mode.

use crate::atomic::{AtomicBool, Ordering};
use crate::backoff::Backoff;

/// A test-and-test-and-set spin lock with exponential backoff.
///
/// Intentionally *not* an RAII mutex: Flock's locking discipline is built
/// around `try_lock(thunk)`, and the blocking data-structure mode wants
/// explicit acquire/release from the same call sites. A scoped guard API is
/// provided for standalone use.
#[derive(Debug, Default)]
pub struct TtasLock {
    locked: AtomicBool,
}

impl TtasLock {
    /// New unlocked lock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// Try to acquire without waiting. Returns whether the lock was taken.
    #[inline]
    pub fn try_acquire(&self) -> bool {
        // Test first to avoid bouncing the cache line on a held lock.
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Acquire, spinning with backoff until available.
    #[inline]
    pub fn acquire(&self) {
        let mut backoff = Backoff::new();
        loop {
            if self.try_acquire() {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
        }
    }

    /// Release. Caller must hold the lock.
    #[inline]
    pub fn release(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Is the lock currently held (racy observation)?
    #[inline]
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Run `f` under the lock (blocking helper for tests and tools).
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let r = f();
        self.release();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn try_acquire_excludes() {
        let l = TtasLock::new();
        assert!(l.try_acquire());
        assert!(!l.try_acquire());
        l.release();
        assert!(l.try_acquire());
        l.release();
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 40k-op timing stress, too slow under miri
    fn counter_under_lock_is_exact() {
        let l = TtasLock::new();
        let n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        l.with(|| {
                            // Non-atomic RMW pattern made exact by the lock.
                            let v = n.load(Ordering::Relaxed);
                            n.store(v + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(n.load(Ordering::Relaxed), 40_000);
    }
}
