//! Per-thread **wait slots**: the arrival words of FIFO lock admission.
//!
//! A strict-lock waiter under the FIFO admission policy *publishes its
//! arrival* here before it starts competing for the lock word: which lock
//! it is waiting on, a globally ordered arrival ticket, and the descriptor
//! (pointer bits + slab generation) that the releasing owner may install
//! on the waiter's behalf. The releasing owner scans these slots for the
//! oldest eligible waiter and hands the lock word to that descriptor
//! directly instead of reopening the CAS race (`flock_core`'s `admission`
//! module holds the protocol and its safety argument).
//!
//! One slot per thread id, statically sized by [`MAX_THREADS`] like the
//! announcement and epoch tables, each slot cache-padded so arrivals do
//! not false-share. Slot atomics route through [`crate::atomic`] — arrival
//! publication is protocol state, and the model checker must be able to
//! schedule on it.
//!
//! ## Read contract: slots are advisory, descriptors are authoritative
//!
//! Scans race with the slot owner clearing and re-publishing. A reader may
//! therefore observe a *mixed* candidate (e.g. the previous wait's ticket
//! with the next wait's descriptor). That is deliberate: the registry
//! promises only that a candidate's `(desc, generation)` pair was once published
//! here. **Safety** — never installing a descriptor on the wrong lock or
//! twice — is enforced downstream by the handing-off owner, which
//! revalidates the candidate against the descriptor's own generation
//! counter while it still holds the lock (see `admission::try_handoff`).
//! A torn candidate fails that validation and is skipped; a misordered
//! ticket costs at most one out-of-order grant, which the FIFO-*ish*
//! fairness contract tolerates.

use crate::MAX_THREADS;
use crate::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::padded::CachePadded;

/// One thread's arrival word set. `addr == 0` means "not waiting"; a
/// published slot's `ticket` is never 0 (tickets start at 1).
pub struct WaitSlot {
    /// Address of the lock being waited on; 0 = slot empty.
    addr: AtomicUsize,
    /// Global arrival order (from [`next_ticket`]); valid while published.
    ticket: AtomicU64,
    /// Descriptor pointer bits the owner may install; valid while published.
    desc: AtomicU64,
    /// The descriptor slab's generation at publication time — the handoff
    /// revalidation token.
    generation: AtomicU64,
}

impl WaitSlot {
    const fn new() -> Self {
        Self {
            addr: AtomicUsize::new(0),
            ticket: AtomicU64::new(0),
            desc: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }
}

/// The slot table, indexed by thread id.
static SLOTS: [CachePadded<WaitSlot>; MAX_THREADS] =
    [const { CachePadded::new(WaitSlot::new()) }; MAX_THREADS];

/// The global arrival clock. Monotone; only *relative* order between
/// concurrently live tickets ever matters, so wraparound (u64, one bump per
/// strict-lock wait) is out of scope, and the model checker's replay
/// determinism survives absolute values differing across executions.
static TICKETS: AtomicU64 = AtomicU64::new(0);

/// One past the highest thread id that ever published a slot: scans touch
/// only this prefix of the table (monotone per process, like the tid
/// registry's high-water mark; in steady state it tracks the live thread
/// count).
static SLOT_BOUND: AtomicUsize = AtomicUsize::new(0);

/// A scanned arrival candidate. See the module docs for what is (and is
/// not) guaranteed about a candidate read while its owner republishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Publishing thread id.
    pub tid: usize,
    /// Arrival ticket (lower = older).
    pub ticket: u64,
    /// Published descriptor pointer bits.
    pub desc: u64,
    /// Published descriptor generation.
    pub generation: u64,
}

/// Draw the next arrival ticket (≥ 1). One RMW per strict-lock *wait*, not
/// per spin iteration.
#[inline]
pub fn next_ticket() -> u64 {
    TICKETS.fetch_add(1, Ordering::SeqCst) + 1
}

/// Publish thread `tid`'s arrival at `lock_addr` with the given ticket and
/// descriptor identity. Field stores happen strictly before the `addr`
/// store that makes the slot visible to scans (SeqCst throughout: arrival
/// is once per wait, and the simple ordering keeps the TSO model argument
/// one line).
pub fn publish(tid: usize, lock_addr: usize, ticket: u64, desc: u64, generation: u64) {
    debug_assert!(tid < MAX_THREADS);
    debug_assert!(lock_addr != 0);
    let slot = &SLOTS[tid];
    slot.ticket.store(ticket, Ordering::SeqCst);
    slot.desc.store(desc, Ordering::SeqCst);
    slot.generation.store(generation, Ordering::SeqCst);
    slot.addr.store(lock_addr, Ordering::SeqCst);
    SLOT_BOUND.fetch_max(tid + 1, Ordering::SeqCst);
}

/// Retract thread `tid`'s arrival (idempotent; a no-op on an empty slot).
pub fn clear(tid: usize) {
    debug_assert!(tid < MAX_THREADS);
    SLOTS[tid].addr.store(0, Ordering::SeqCst);
}

/// Is thread `tid` currently publishing an arrival? (Diagnostics/tests.)
pub fn is_published(tid: usize) -> bool {
    SLOTS[tid].addr.load(Ordering::SeqCst) != 0
}

/// Scan for the **oldest** (lowest-ticket) waiter published for
/// `lock_addr` that `eligible(desc, generation)` accepts. The eligibility hook is
/// where `flock_core` skips waiters whose descriptor is already done
/// (stalled-and-completed waiters must be skippable, not a convoy) without
/// this crate needing to know what a descriptor is.
pub fn oldest_waiter(lock_addr: usize, eligible: impl Fn(u64, u64) -> bool) -> Option<Waiter> {
    let mut best: Option<Waiter> = None;
    let bound = SLOT_BOUND.load(Ordering::SeqCst).min(MAX_THREADS);
    for (tid, slot) in SLOTS.iter().enumerate().take(bound) {
        if slot.addr.load(Ordering::SeqCst) != lock_addr {
            continue;
        }
        let w = Waiter {
            tid,
            ticket: slot.ticket.load(Ordering::SeqCst),
            desc: slot.desc.load(Ordering::SeqCst),
            generation: slot.generation.load(Ordering::SeqCst),
        };
        // Re-check the slot is still published for this lock: filters the
        // common clear-mid-scan race (torn candidates that survive this are
        // rejected by the caller's generation validation, module docs).
        if slot.addr.load(Ordering::SeqCst) != lock_addr {
            continue;
        }
        if w.ticket != 0
            && best.is_none_or(|b| w.ticket < b.ticket)
            && eligible(w.desc, w.generation)
        {
            best = Some(w);
        }
    }
    best
}

/// Is any waiter with a ticket **strictly older** than `ticket` published
/// for `lock_addr` (and accepted by `eligible`)? Used by younger FIFO
/// waiters to defer installation; strict comparison makes a waiter's own
/// slot self-excluding.
pub fn older_waiter_exists(
    lock_addr: usize,
    ticket: u64,
    eligible: impl Fn(u64, u64) -> bool,
) -> bool {
    let bound = SLOT_BOUND.load(Ordering::SeqCst).min(MAX_THREADS);
    for slot in SLOTS.iter().take(bound) {
        if slot.addr.load(Ordering::SeqCst) != lock_addr {
            continue;
        }
        let t = slot.ticket.load(Ordering::SeqCst);
        let (d, g) = (
            slot.desc.load(Ordering::SeqCst),
            slot.generation.load(Ordering::SeqCst),
        );
        if slot.addr.load(Ordering::SeqCst) != lock_addr {
            continue;
        }
        if t != 0 && t < ticket && eligible(d, g) {
            return true;
        }
    }
    false
}

/// Model-engine global reset (between executions): zero the ticket clock
/// and the scan bound and empty every slot, so each execution starts from
/// the state a fresh process has. Both statics are monotone within an
/// execution; left un-reset they would change the *length* of slot scans
/// across executions and desynchronize the checker's schedule replay.
#[cfg(feature = "model")]
pub fn model_reset_global() {
    for slot in SLOTS.iter() {
        slot.addr.store(0, Ordering::SeqCst);
        slot.ticket.store(0, Ordering::SeqCst);
        slot.desc.store(0, Ordering::SeqCst);
        slot.generation.store(0, Ordering::SeqCst);
    }
    TICKETS.store(0, Ordering::SeqCst);
    SLOT_BOUND.store(0, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test tids sit at the top of the table so they never collide with
    /// real thread-context tids claimed by concurrently running tests.
    const T0: usize = MAX_THREADS - 3;
    const T1: usize = MAX_THREADS - 2;
    const T2: usize = MAX_THREADS - 1;

    // Distinct per-test fake lock addresses keep the shared static table
    // from cross-talking between tests in one process.

    #[test]
    fn publish_scan_clear_roundtrip() {
        let a = 0x1000usize;
        publish(T0, a, next_ticket(), 0xD0, 7);
        publish(T1, a, next_ticket(), 0xD1, 8);
        let w = oldest_waiter(a, |_, _| true).expect("two waiters published");
        assert_eq!(w.tid, T0, "oldest = first ticket");
        assert_eq!((w.desc, w.generation), (0xD0, 7));
        assert!(older_waiter_exists(a, u64::MAX, |_, _| true));
        assert!(
            !older_waiter_exists(a, w.ticket, |_, _| true),
            "self-excluding"
        );
        clear(T0);
        let w = oldest_waiter(a, |_, _| true).expect("one waiter left");
        assert_eq!(w.tid, T1);
        clear(T1);
        assert!(oldest_waiter(a, |_, _| true).is_none());
        assert!(!is_published(T0));
    }

    #[test]
    fn eligibility_filter_skips_candidates() {
        let a = 0x2000usize;
        publish(T0, a, next_ticket(), 0xAA, 1);
        publish(T2, a, next_ticket(), 0xBB, 2);
        // The oldest is ineligible (e.g. its descriptor is already done):
        // the scan must fall through to the next-oldest, not give up.
        let w = oldest_waiter(a, |d, _| d != 0xAA).expect("eligible waiter exists");
        assert_eq!(w.tid, T2);
        clear(T0);
        clear(T2);
    }

    #[test]
    fn scans_are_per_lock() {
        let (a, b) = (0x3000usize, 0x3008usize);
        publish(T1, a, next_ticket(), 0xCC, 3);
        assert!(
            oldest_waiter(b, |_, _| true).is_none(),
            "other lock is empty"
        );
        assert!(!older_waiter_exists(b, u64::MAX, |_, _| true));
        clear(T1);
    }

    #[test]
    fn tickets_are_monotone() {
        let t1 = next_ticket();
        let t2 = next_ticket();
        assert!(t2 > t1);
        assert!(t1 >= 1, "ticket 0 is reserved for 'unpublished'");
    }
}
