//! The one atomics choke point of the workspace: `flock_sync::atomic`.
//!
//! Every atomic and fence in the protocol crates (`flock-sync`,
//! `flock-core`, `flock-epoch`) goes through this module instead of
//! `std::sync::atomic`, so the whole implementation can be re-pointed at a
//! model-checking shim without touching a single call site:
//!
//! * **Default builds** (no `model` feature): a plain re-export of
//!   `std::sync::atomic`. Zero cost — the types *are* the std types, every
//!   call compiles to the exact same instruction it always did, and
//!   [`critical`] is an `#[inline(always)]` identity wrapper.
//! * **`--features model`**: the types are shims that route every
//!   load/store/RMW/fence through a [`ModelRuntime`] registered for the
//!   current thread (see the `flock-model` crate). The runtime turns each
//!   access into a *scheduling point* of a deterministic concurrency model
//!   checker and applies a store-buffer (TSO) memory model, so weak-memory
//!   interleavings — a `Release` store parked in a buffer past a later
//!   load — become explorable and assertable. Threads with no registered
//!   runtime (test setup/teardown on the controller thread) fall through to
//!   the real atomic with the requested ordering.
//!
//! The `model` feature is **never** enabled by default-member builds; it is
//! pulled in only by `flock-model`, which is deliberately not a default
//! workspace member. Tier-1 builds and the committed benchmarks therefore
//! exercise byte-identical atomics with or without this module.
//!
//! ## What the shim models
//!
//! The model runtime implements a TSO (x86-like, store-buffer) memory
//! model: stores weaker than `SeqCst` sit in a per-thread FIFO buffer until
//! a `SeqCst` operation, an RMW, a `SeqCst` fence, or a nondeterministic
//! scheduler-chosen flush writes them back; loads forward from the
//! issuing thread's own buffer. This captures exactly the store–load
//! reordering class that the announce/Dekker pair, the epoch pin
//! publication and the reservation scans defend against with their fences —
//! the bugs an x86 host can never exhibit natively under a plain
//! interleaving checker, because the hardware inserts the very barriers the
//! source forgot. Load–load and other non-TSO reorderings are out of scope
//! (documented bound; see EXPERIMENTS.md).

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU8, AtomicU64, AtomicUsize, fence};

/// Run `f` as one indivisible step of the concurrency model.
///
/// In default builds this is the identity. Under the `model` feature the
/// registered runtime suspends preemption for the duration of `f`, so the
/// closure executes as a single atomic step with sequentially consistent
/// memory semantics. Used for the thread-id registry's claim/release paths,
/// whose real implementation serializes under a mutex: modelling a
/// mutex-protected section as one step is faithful to its own spec, and
/// keeps OS-level mutex waits (which the cooperative scheduler cannot see)
/// from deadlocking the model.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn critical<R>(f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(feature = "model")]
mod shim {
    use std::cell::Cell;
    use std::marker::PhantomData;
    use std::sync::atomic::Ordering;
    use std::sync::atomic::{AtomicU64 as RealU64, fence as real_fence};

    /// The hook a model checker implements to take over atomic semantics.
    ///
    /// `storage` is the shim cell's backing 64-bit word — the model's "main
    /// memory" for that location. The runtime is expected to treat every
    /// call as a scheduling point, consult/maintain the calling thread's
    /// store buffer, and read or write `storage` (with `SeqCst` on the real
    /// atomic) when a value actually reaches memory.
    pub trait ModelRuntime {
        /// An atomic load of `storage` with program-order `order`.
        fn load(&self, storage: &RealU64, order: Ordering, what: &'static str) -> u64;
        /// An atomic store to `storage` with program-order `order`.
        fn store(&self, storage: &RealU64, val: u64, order: Ordering, what: &'static str);
        /// A read-modify-write: `f(current)` returns `Some(new)` to apply
        /// or `None` to leave memory unchanged (a failed compare-exchange).
        /// Returns `(observed_old, applied)`.
        fn rmw(
            &self,
            storage: &RealU64,
            order: Ordering,
            what: &'static str,
            f: &mut dyn FnMut(u64) -> Option<u64>,
        ) -> (u64, bool);
        /// An `atomic::fence(order)`.
        fn fence(&self, order: Ordering, what: &'static str);
        /// Enter an indivisible (no-preemption, SC) section.
        fn critical_enter(&self);
        /// Leave the indivisible section.
        fn critical_exit(&self);
    }

    thread_local! {
        static RUNTIME: Cell<Option<*const (dyn ModelRuntime + 'static)>> =
            const { Cell::new(None) };
    }

    /// Register (or clear) the model runtime for the calling thread.
    ///
    /// # Safety
    ///
    /// The pointee must stay alive and valid until the registration is
    /// cleared; every shim atomic op on this thread dereferences it.
    pub unsafe fn set_model_runtime(rt: Option<*const (dyn ModelRuntime + 'static)>) {
        RUNTIME.with(|r| r.set(rt));
    }

    /// Is a model runtime registered for the calling thread?
    pub fn model_runtime_active() -> bool {
        RUNTIME.with(|r| r.get().is_some())
    }

    #[inline]
    fn with_runtime<R>(f: impl FnOnce(&dyn ModelRuntime) -> R) -> Option<R> {
        RUNTIME.with(|r| {
            r.get().map(|ptr| {
                // SAFETY: `set_model_runtime` contract — pointee valid while
                // registered.
                f(unsafe { &*ptr })
            })
        })
    }

    /// See the non-model [`super::critical`]. Under the model, suspends
    /// preemption and runs `f` as one SC step.
    pub fn critical<R>(f: impl FnOnce() -> R) -> R {
        struct Exit(bool);
        impl Drop for Exit {
            fn drop(&mut self) {
                if self.0 {
                    with_runtime(|rt| rt.critical_exit());
                }
            }
        }
        let entered = with_runtime(|rt| rt.critical_enter()).is_some();
        let _exit = Exit(entered);
        f()
    }

    /// Model-shim `fence`: a scheduling point; `SeqCst` drains the calling
    /// thread's store buffer.
    pub fn fence(order: Ordering) {
        if with_runtime(|rt| rt.fence(order, "fence")).is_none() {
            real_fence(order);
        }
    }

    const fn u64_to_bits(v: u64) -> u64 {
        v
    }
    const fn u64_from_bits(b: u64) -> u64 {
        b
    }
    const fn usize_to_bits(v: usize) -> u64 {
        v as u64
    }
    const fn usize_from_bits(b: u64) -> usize {
        b as usize
    }
    const fn u8_to_bits(v: u8) -> u64 {
        v as u64
    }
    const fn u8_from_bits(b: u64) -> u8 {
        b as u8
    }
    const fn bool_to_bits(v: bool) -> u64 {
        v as u64
    }
    const fn bool_from_bits(b: u64) -> bool {
        b != 0
    }

    macro_rules! shim_common {
        ($name:ident, $raw:ty, $to:expr, $from:expr) => {
            impl $name {
                /// A new cell holding `v`.
                pub const fn new(v: $raw) -> Self {
                    Self {
                        storage: RealU64::new($to(v)),
                    }
                }

                /// Atomic load.
                #[inline]
                pub fn load(&self, order: Ordering) -> $raw {
                    let bits = with_runtime(|rt| {
                        rt.load(&self.storage, order, concat!(stringify!($name), "::load"))
                    })
                    .unwrap_or_else(|| self.storage.load(order));
                    $from(bits)
                }

                /// Atomic store.
                #[inline]
                pub fn store(&self, val: $raw, order: Ordering) {
                    if with_runtime(|rt| {
                        rt.store(
                            &self.storage,
                            $to(val),
                            order,
                            concat!(stringify!($name), "::store"),
                        )
                    })
                    .is_none()
                    {
                        self.storage.store($to(val), order);
                    }
                }

                /// Atomic swap.
                #[inline]
                pub fn swap(&self, val: $raw, order: Ordering) -> $raw {
                    let bits = with_runtime(|rt| {
                        rt.rmw(
                            &self.storage,
                            order,
                            concat!(stringify!($name), "::swap"),
                            &mut |_| Some($to(val)),
                        )
                        .0
                    })
                    .unwrap_or_else(|| self.storage.swap($to(val), order));
                    $from(bits)
                }

                /// Atomic compare-exchange.
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $raw,
                    new: $raw,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$raw, $raw> {
                    match with_runtime(|rt| {
                        rt.rmw(
                            &self.storage,
                            success,
                            concat!(stringify!($name), "::compare_exchange"),
                            &mut |cur| (cur == $to(current)).then_some($to(new)),
                        )
                    }) {
                        Some((old, true)) => Ok($from(old)),
                        Some((old, false)) => Err($from(old)),
                        None => self
                            .storage
                            .compare_exchange($to(current), $to(new), success, failure)
                            .map($from)
                            .map_err($from),
                    }
                }

                /// Atomic compare-exchange (spurious failure allowed by the
                /// API; the shim never fails spuriously).
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $raw,
                    new: $raw,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$raw, $raw> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&$from(self.storage.load(Ordering::Relaxed)))
                        .finish()
                }
            }
        };
    }

    macro_rules! shim_fetch_ops {
        ($name:ident, $raw:ty, $to:expr, $from:expr) => {
            impl $name {
                /// Atomic wrapping add; returns the previous value.
                #[inline]
                pub fn fetch_add(&self, val: $raw, order: Ordering) -> $raw {
                    let bits = with_runtime(|rt| {
                        rt.rmw(
                            &self.storage,
                            order,
                            concat!(stringify!($name), "::fetch_add"),
                            &mut |cur| Some($to($from(cur).wrapping_add(val))),
                        )
                        .0
                    })
                    .unwrap_or_else(|| self.storage.fetch_add($to(val), order));
                    $from(bits)
                }

                /// Atomic wrapping subtract; returns the previous value.
                #[inline]
                pub fn fetch_sub(&self, val: $raw, order: Ordering) -> $raw {
                    let bits = with_runtime(|rt| {
                        rt.rmw(
                            &self.storage,
                            order,
                            concat!(stringify!($name), "::fetch_sub"),
                            &mut |cur| Some($to($from(cur).wrapping_sub(val))),
                        )
                        .0
                    })
                    .unwrap_or_else(|| self.storage.fetch_sub($to(val), order));
                    $from(bits)
                }

                /// Atomic maximum; returns the previous value.
                #[inline]
                pub fn fetch_max(&self, val: $raw, order: Ordering) -> $raw {
                    let bits = with_runtime(|rt| {
                        rt.rmw(
                            &self.storage,
                            order,
                            concat!(stringify!($name), "::fetch_max"),
                            &mut |cur| Some($to($from(cur).max(val))),
                        )
                        .0
                    })
                    .unwrap_or_else(|| self.storage.fetch_max($to(val), order));
                    $from(bits)
                }
            }
        };
    }

    /// Model-shim `AtomicU64`.
    pub struct AtomicU64 {
        storage: RealU64,
    }
    shim_common!(AtomicU64, u64, u64_to_bits, u64_from_bits);
    shim_fetch_ops!(AtomicU64, u64, u64_to_bits, u64_from_bits);

    /// Model-shim `AtomicUsize` (stored as 64 bits).
    pub struct AtomicUsize {
        storage: RealU64,
    }
    shim_common!(AtomicUsize, usize, usize_to_bits, usize_from_bits);
    shim_fetch_ops!(AtomicUsize, usize, usize_to_bits, usize_from_bits);

    /// Model-shim `AtomicU8` (stored as 64 bits).
    pub struct AtomicU8 {
        storage: RealU64,
    }
    shim_common!(AtomicU8, u8, u8_to_bits, u8_from_bits);

    /// Model-shim `AtomicBool` (stored as 64 bits).
    pub struct AtomicBool {
        storage: RealU64,
    }
    shim_common!(AtomicBool, bool, bool_to_bits, bool_from_bits);

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// Model-shim `AtomicPtr<T>` (address stored as 64 bits; model builds
    /// are never run under strict-provenance tooling).
    pub struct AtomicPtr<T> {
        storage: RealU64,
        _pd: PhantomData<*mut T>,
    }

    // SAFETY: same contract as std's AtomicPtr — the cell itself is just an
    // atomic word; what the pointer protects is the caller's business.
    unsafe impl<T> Send for AtomicPtr<T> {}
    // SAFETY: as above.
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        /// A new cell holding `p`.
        pub fn new(p: *mut T) -> Self {
            Self {
                storage: RealU64::new(p as usize as u64),
                _pd: PhantomData,
            }
        }

        /// Atomic load.
        #[inline]
        pub fn load(&self, order: Ordering) -> *mut T {
            let bits = with_runtime(|rt| rt.load(&self.storage, order, "AtomicPtr::load"))
                .unwrap_or_else(|| self.storage.load(order));
            bits as usize as *mut T
        }

        /// Atomic store.
        #[inline]
        pub fn store(&self, p: *mut T, order: Ordering) {
            let bits = p as usize as u64;
            if with_runtime(|rt| rt.store(&self.storage, bits, order, "AtomicPtr::store")).is_none()
            {
                self.storage.store(bits, order);
            }
        }

        /// Atomic swap.
        #[inline]
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            let bits = p as usize as u64;
            let old = with_runtime(|rt| {
                rt.rmw(&self.storage, order, "AtomicPtr::swap", &mut |_| Some(bits))
                    .0
            })
            .unwrap_or_else(|| self.storage.swap(bits, order));
            old as usize as *mut T
        }

        /// Atomic compare-exchange.
        #[inline]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            let (cur_bits, new_bits) = (current as usize as u64, new as usize as u64);
            match with_runtime(|rt| {
                rt.rmw(
                    &self.storage,
                    success,
                    "AtomicPtr::compare_exchange",
                    &mut |cur| (cur == cur_bits).then_some(new_bits),
                )
            }) {
                Some((old, true)) => Ok(old as usize as *mut T),
                Some((old, false)) => Err(old as usize as *mut T),
                None => self
                    .storage
                    .compare_exchange(cur_bits, new_bits, success, failure)
                    .map(|b| b as usize as *mut T)
                    .map_err(|b| b as usize as *mut T),
            }
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "AtomicPtr({:#x})", self.storage.load(Ordering::Relaxed))
        }
    }
}

#[cfg(feature = "model")]
pub use shim::{
    AtomicBool, AtomicPtr, AtomicU8, AtomicU64, AtomicUsize, ModelRuntime, critical, fence,
    model_runtime_active, set_model_runtime,
};
