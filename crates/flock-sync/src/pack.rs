//! Packing of a 16-bit ABA tag and a 48-bit payload into one 64-bit word.
//!
//! The paper's Flock library keeps mutable shared locations ABA-free by
//! attaching a tag to every value and bumping the tag on each update. Its
//! experiments all use the single-word variant: a 16-bit tag in the high bits
//! of the word and a 48-bit value in the low bits, which is enough for a
//! pointer on x86-64/AArch64 Linux (§6, "ABA"). This module implements that
//! representation.
//!
//! The tag value [`TAG_LIMIT`] (`0xFFFF`) is reserved: packed words never
//! carry it, so `u64::MAX` can act as the *empty* sentinel for thunk-log
//! entries without colliding with any legitimate packed word.

/// Number of payload bits in a packed word.
pub const VAL_BITS: u32 = 48;
/// Mask selecting the payload bits of a packed word.
pub const VAL_MASK: u64 = (1u64 << VAL_BITS) - 1;
/// Tags range over `0..TAG_LIMIT`; `TAG_LIMIT` itself is reserved so that the
/// all-ones word can never be a legitimate packed value.
#[cfg(not(feature = "model"))]
pub const TAG_LIMIT: u16 = u16::MAX;

/// Model builds shrink the tag space (scope bounding, not a protocol
/// change): wraparound — the event the announcement table exists for —
/// becomes reachable within a model-checkable number of stores. The bit
/// layout is untouched; only where `next_tag` wraps moves. Must stay above
/// the number of threads a model test runs (each live thread announces at
/// most one tag per location, and `next_free_tag` needs a free tag).
#[cfg(feature = "model")]
pub const TAG_LIMIT: u16 = 8;

/// Model-only runtime override of the wrap point (scope bounding knob for
/// individual model tests; production keeps the compile-time constant).
///
/// The lock-word tag-wrap tests shrink the effective tag space to 2 so a
/// full `TAG_LIMIT`-install wraparound of one lock word fits inside an
/// exhaustively explorable schedule space. Settable only while no modeled
/// operations are in flight; a limit of `n` must stay above the number of
/// tags concurrently announced per location (see [`TAG_LIMIT`]) — with no
/// in-thunk stores in the test body, 2 is safe.
#[cfg(feature = "model")]
pub mod model_tag_limit {
    use core::sync::atomic::{AtomicU16, Ordering};

    static LIMIT: AtomicU16 = AtomicU16::new(super::TAG_LIMIT);

    /// Set the effective wrap point (clamped to `2..=TAG_LIMIT`).
    pub fn set(limit: u16) {
        LIMIT.store(limit.clamp(2, super::TAG_LIMIT), Ordering::SeqCst);
    }

    /// The current effective wrap point.
    pub fn get() -> u16 {
        LIMIT.load(Ordering::Relaxed)
    }
}

/// Pack `tag` and a 48-bit `val` into one word.
///
/// Debug-asserts that `val` fits in 48 bits and that the reserved tag is not
/// used; in release builds the value is masked.
#[inline(always)]
pub fn pack(tag: u16, val: u64) -> u64 {
    debug_assert!(val <= VAL_MASK, "payload {val:#x} exceeds 48 bits");
    debug_assert!(tag != TAG_LIMIT, "tag {TAG_LIMIT:#x} is reserved");
    ((tag as u64) << VAL_BITS) | (val & VAL_MASK)
}

/// Extract the tag of a packed word.
#[inline(always)]
pub fn unpack_tag(word: u64) -> u16 {
    (word >> VAL_BITS) as u16
}

/// Extract the 48-bit payload of a packed word.
#[inline(always)]
pub fn unpack_val(word: u64) -> u64 {
    word & VAL_MASK
}

/// Successor of a tag in the cyclic tag space, skipping the reserved value.
#[inline(always)]
pub fn next_tag(tag: u16) -> u16 {
    #[cfg(feature = "model")]
    let limit = model_tag_limit::get();
    #[cfg(not(feature = "model"))]
    let limit = TAG_LIMIT;
    let next = tag.wrapping_add(1);
    // `>=` (not `==`): the model-only runtime limit may shrink below a tag
    // already in circulation; such a tag wraps on its next bump.
    if next >= limit { 0 } else { next }
}

/// An opaque snapshot of a packed word's full **incarnation** — tag and
/// payload together — used by optimistic read validation.
///
/// Two observations of one location compare equal iff the location held the
/// byte-identical packed word both times. Because every successful update
/// of a tagged cell bumps the tag ([`next_tag`] on install *and* on any
/// release CAM), equality across a read window proves no update committed
/// in between — up to an exact [`TAG_LIMIT`]-update wraparound of that one
/// word during the window, the residual every tag-based scheme carries
/// (quantified where the optimistic layer documents its contract).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PackedVersion(u64);

impl PackedVersion {
    /// Wrap a full packed word observed from a tagged cell.
    #[inline(always)]
    pub fn from_word(word: u64) -> Self {
        PackedVersion(word)
    }

    /// The observed packed word.
    #[inline(always)]
    pub fn word(self) -> u64 {
        self.0
    }

    /// The ABA tag of the observed word.
    #[inline(always)]
    pub fn tag(self) -> u16 {
        unpack_tag(self.0)
    }
}

/// Types that can be stored in the 48-bit payload of a `Mutable`.
///
/// # Safety
///
/// Implementations must guarantee both of the following, or the idempotence
/// machinery in `flock-core` silently corrupts values:
///
/// * `to_bits` returns a value `<= VAL_MASK` (fits in 48 bits), and
/// * `from_bits(v.to_bits()) == v` for every `v` (lossless round-trip).
pub unsafe trait PackedValue: Copy + PartialEq {
    /// Encode into at most 48 bits.
    fn to_bits(self) -> u64;
    /// Decode from the 48-bit payload produced by [`PackedValue::to_bits`].
    fn from_bits(bits: u64) -> Self;
}

// SAFETY: unit encodes as 0 and round-trips trivially.
unsafe impl PackedValue for () {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        0
    }
    #[inline(always)]
    fn from_bits(_bits: u64) -> Self {}
}

// SAFETY: one bit, round-trips exactly.
unsafe impl PackedValue for bool {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

macro_rules! impl_packed_small_uint {
    ($($t:ty),*) => {$(
        // SAFETY: the type is at most 32 bits wide, so it always fits in 48
        // bits and the `as` casts round-trip exactly.
        unsafe impl PackedValue for $t {
            #[inline(always)]
            fn to_bits(self) -> u64 { self as u64 }
            #[inline(always)]
            fn from_bits(bits: u64) -> Self { bits as $t }
        }
    )*};
}
impl_packed_small_uint!(u8, u16, u32);

macro_rules! impl_packed_small_int {
    ($($t:ty),*) => {$(
        // SAFETY: sign-extended round-trip through the unsigned type of the
        // same width, which is at most 32 bits and so fits in 48.
        unsafe impl PackedValue for $t {
            #[inline(always)]
            fn to_bits(self) -> u64 { (self as u32) as u64 }
            #[inline(always)]
            fn from_bits(bits: u64) -> Self { bits as u32 as $t }
        }
    )*};
}
impl_packed_small_int!(i8, i16, i32);

// SAFETY: caller contract — values must fit 48 bits. Flock uses this for
// small counts and sizes; debug builds assert.
unsafe impl PackedValue for u64 {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        debug_assert!(self <= VAL_MASK, "u64 payload {self:#x} exceeds 48 bits");
        self
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

// SAFETY: same contract as u64; usize is at most 64 bits on supported targets.
unsafe impl PackedValue for usize {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        debug_assert!((self as u64) <= VAL_MASK, "usize payload exceeds 48 bits");
        self as u64
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

// SAFETY: on x86-64 and AArch64 Linux user-space pointers occupy at most 48
// bits (checked by a debug assertion). Null round-trips as 0.
unsafe impl<T> PackedValue for *mut T {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        let bits = self as usize as u64;
        debug_assert!(bits <= VAL_MASK, "pointer {bits:#x} exceeds 48 bits");
        bits
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits as usize as *mut T
    }
}

// SAFETY: identical to the `*mut T` impl.
unsafe impl<T> PackedValue for *const T {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        let bits = self as usize as u64;
        debug_assert!(bits <= VAL_MASK, "pointer {bits:#x} exceeds 48 bits");
        bits
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        bits as usize as *const T
    }
}

/// How a logical value rides in the 48-bit payload of a lock-word-adjacent
/// slot (`flock_core::Mutable` and friends).
///
/// Two strategies exist:
///
/// * **Inline** — the value's bits *are* the payload. Implemented here for
///   every [`PackedValue`] primitive (and via the [`Inline`] adapter for
///   custom `PackedValue` types). `encode`/`decode` are bit casts and the
///   reclamation hooks are no-ops, so the compiled slot operations are
///   identical to the historical 48-bit-only path.
/// * **Indirect** — the payload is a pointer to an epoch-managed heap copy
///   of the value (`flock_epoch::Indirect<T>`). `encode` allocates,
///   `decode` clones out of the live allocation, and the reclamation hooks
///   route through the epoch collector so concurrent readers (including
///   helpers replaying a thunk) can still snapshot a retired encoding.
///
/// The two cleanup hooks differ in *who may still see the encoding*:
/// [`ValueRepr::retire_bits`] is for encodings that were published to a
/// shared slot (grace-period reclamation), [`ValueRepr::dealloc_bits`] for
/// encodings that provably never escaped (losers of an idempotent-encode
/// race, or exclusive teardown).
///
/// # Safety
///
/// Implementations must guarantee:
///
/// * `encode` returns a payload `<= VAL_MASK`;
/// * `decode(encode(v)) == v` for every `v`, for as long as the encoding
///   has not been passed to a reclamation hook (and, for indirect reprs,
///   the caller is inside an epoch guard);
/// * each encoding is passed to exactly one of `retire_bits` /
///   `dealloc_bits`, exactly once, after which it is never decoded by new
///   readers.
pub unsafe trait ValueRepr: Clone + PartialEq {
    /// `true` when `encode` allocates and the packed word stores a pointer.
    /// A `const` so inline instantiations compile the reclamation branches
    /// out entirely.
    const INDIRECT: bool;

    /// Encode the value into at most 48 payload bits (may allocate).
    fn encode(v: Self) -> u64;

    /// Snapshot-decode a value from payload bits produced by `encode`.
    ///
    /// # Safety
    ///
    /// `bits` must come from `encode` and not yet be reclaimed; indirect
    /// reprs additionally require the caller to hold an epoch guard
    /// protecting the encoding.
    unsafe fn decode(bits: u64) -> Self;

    /// Reclaim a **published** encoding through the grace-period collector
    /// (no-op for inline reprs).
    ///
    /// # Safety
    ///
    /// `bits` from `encode`, unlinked from every shared slot, reclaimed at
    /// most once; for indirect reprs the caller must be epoch-pinned.
    unsafe fn retire_bits(bits: u64);

    /// Immediately free an encoding that was **never published** (or is
    /// exclusively owned, e.g. during teardown). No-op for inline reprs.
    ///
    /// # Safety
    ///
    /// `bits` from `encode`, reachable by no other thread, reclaimed at
    /// most once.
    unsafe fn dealloc_bits(bits: u64);
}

macro_rules! impl_inline_value_repr {
    ($($t:ty),*) => {$(
        // SAFETY: delegates to the type's `PackedValue` impl, whose
        // contract is exactly the inline half of the `ValueRepr` contract;
        // nothing is allocated, so the reclamation hooks are no-ops.
        unsafe impl ValueRepr for $t {
            const INDIRECT: bool = false;
            #[inline(always)]
            fn encode(v: Self) -> u64 {
                <$t as PackedValue>::to_bits(v)
            }
            #[inline(always)]
            unsafe fn decode(bits: u64) -> Self {
                <$t as PackedValue>::from_bits(bits)
            }
            #[inline(always)]
            unsafe fn retire_bits(_bits: u64) {}
            #[inline(always)]
            unsafe fn dealloc_bits(_bits: u64) {}
        }
    )*};
}
impl_inline_value_repr!((), bool, u8, u16, u32, i8, i16, i32, u64, usize);

// SAFETY: as the macro impls; pointers are inline payloads (≤ 48 bits on
// supported targets, debug-checked by the PackedValue impls). The pointee is
// NOT owned by the slot — reclamation hooks are no-ops by design (the
// surrounding structure retires what the pointer targets).
unsafe impl<T> ValueRepr for *mut T {
    const INDIRECT: bool = false;
    #[inline(always)]
    fn encode(v: Self) -> u64 {
        v.to_bits()
    }
    #[inline(always)]
    unsafe fn decode(bits: u64) -> Self {
        <*mut T as PackedValue>::from_bits(bits)
    }
    #[inline(always)]
    unsafe fn retire_bits(_bits: u64) {}
    #[inline(always)]
    unsafe fn dealloc_bits(_bits: u64) {}
}

// SAFETY: identical to the `*mut T` impl.
unsafe impl<T> ValueRepr for *const T {
    const INDIRECT: bool = false;
    #[inline(always)]
    fn encode(v: Self) -> u64 {
        v.to_bits()
    }
    #[inline(always)]
    unsafe fn decode(bits: u64) -> Self {
        <*const T as PackedValue>::from_bits(bits)
    }
    #[inline(always)]
    unsafe fn retire_bits(_bits: u64) {}
    #[inline(always)]
    unsafe fn dealloc_bits(_bits: u64) {}
}

/// Adapter giving any custom [`PackedValue`] type the inline [`ValueRepr`]
/// strategy (the primitive types get direct impls above; a blanket impl
/// would collide with downstream indirect reprs under coherence).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
#[repr(transparent)]
pub struct Inline<T: PackedValue>(pub T);

// SAFETY: forwards the `PackedValue` contract, like the macro impls.
unsafe impl<T: PackedValue> ValueRepr for Inline<T> {
    const INDIRECT: bool = false;
    #[inline(always)]
    fn encode(v: Self) -> u64 {
        v.0.to_bits()
    }
    #[inline(always)]
    unsafe fn decode(bits: u64) -> Self {
        Inline(T::from_bits(bits))
    }
    #[inline(always)]
    unsafe fn retire_bits(_bits: u64) {}
    #[inline(always)]
    unsafe fn dealloc_bits(_bits: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_basic() {
        let w = pack(0x1234, 0xDEAD_BEEF_CAFE);
        assert_eq!(unpack_tag(w), 0x1234);
        assert_eq!(unpack_val(w), 0xDEAD_BEEF_CAFE);
    }

    #[test]
    fn pack_zero() {
        let w = pack(0, 0);
        assert_eq!(w, 0);
        assert_eq!(unpack_tag(w), 0);
        assert_eq!(unpack_val(w), 0);
    }

    #[test]
    fn pack_max_payload() {
        let w = pack(0xFFFE, VAL_MASK);
        assert_eq!(unpack_tag(w), 0xFFFE);
        assert_eq!(unpack_val(w), VAL_MASK);
        assert_ne!(w, u64::MAX, "reserved tag keeps all-ones word unreachable");
    }

    #[test]
    fn next_tag_skips_reserved() {
        assert_eq!(next_tag(0), 1);
        assert_eq!(next_tag(TAG_LIMIT - 2), TAG_LIMIT - 1);
        assert_eq!(next_tag(TAG_LIMIT - 1), 0, "wraps past the reserved tag");
    }

    #[test]
    fn bool_roundtrip() {
        assert!(bool::from_bits(true.to_bits()));
        assert!(!bool::from_bits(false.to_bits()));
    }

    #[test]
    fn signed_roundtrip() {
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            assert_eq!(i32::from_bits(v.to_bits() & VAL_MASK), v);
        }
    }

    #[test]
    fn pointer_roundtrip() {
        let x = Box::into_raw(Box::new(42u64));
        let bits = x.to_bits();
        let back: *mut u64 = PackedValue::from_bits(bits);
        assert_eq!(back, x);
        // SAFETY: x came from Box::into_raw above and was not freed.
        unsafe { drop(Box::from_raw(x)) };
        let null: *mut u64 = std::ptr::null_mut();
        assert_eq!(null.to_bits(), 0);
    }

    #[test]
    fn unit_roundtrip() {
        assert_eq!(().to_bits(), 0);
        <() as PackedValue>::from_bits(0);
    }

    #[test]
    fn inline_value_repr_is_bit_identical_to_packed_value() {
        for v in [0u64, 1, 42, VAL_MASK] {
            assert_eq!(<u64 as ValueRepr>::encode(v), v.to_bits());
            // SAFETY: bits come from encode above.
            assert_eq!(unsafe { <u64 as ValueRepr>::decode(v) }, v);
        }
        const { assert!(!<u64 as ValueRepr>::INDIRECT) };
        assert_eq!(<bool as ValueRepr>::encode(true), 1);
        let w = Inline(7u32);
        let bits = <Inline<u32> as ValueRepr>::encode(w);
        // SAFETY: bits come from encode above.
        assert_eq!(unsafe { <Inline<u32> as ValueRepr>::decode(bits) }, w);
        // The inline reclamation hooks are no-ops on arbitrary bits.
        // SAFETY: no-ops per the inline impls.
        unsafe {
            <u64 as ValueRepr>::retire_bits(3);
            <u64 as ValueRepr>::dealloc_bits(3);
        }
    }
}
