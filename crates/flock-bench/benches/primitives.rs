//! Criterion microbenchmarks of the Flock primitives: lock acquire/release
//! in both modes, idempotent load/store, log commits, epoch pin, and the
//! descriptor path. These quantify the per-operation overheads the paper
//! attributes to lock-free mode (descriptor allocation + log commits).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use flock_core::{set_lock_mode, Lock, LockMode, Mutable};

fn bench_mutable(c: &mut Criterion) {
    set_lock_mode(LockMode::LockFree);
    let m = Mutable::new(0u64);
    c.bench_function("mutable_load_top_level", |b| {
        b.iter(|| black_box(m.load()))
    });
    c.bench_function("mutable_store_top_level", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) & 0xFFFF_FFFF;
            m.store(black_box(i));
        })
    });
}

fn bench_lock_modes(c: &mut Criterion) {
    for (label, mode) in [
        ("lock_free", LockMode::LockFree),
        ("blocking", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        let l = Arc::new(Lock::new());
        let v = Arc::new(Mutable::new(0u64));
        c.bench_function(&format!("uncontended_try_lock_{label}"), |b| {
            b.iter(|| {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || {
                    v2.store(v2.load() + 1);
                    true
                }))
            })
        });
    }
    set_lock_mode(LockMode::LockFree);
}

fn bench_nested_lock(c: &mut Criterion) {
    set_lock_mode(LockMode::LockFree);
    let outer = Arc::new(Lock::new());
    let inner = Arc::new(Lock::new());
    c.bench_function("nested_try_lock_lock_free", |b| {
        b.iter(|| {
            let i = Arc::clone(&inner);
            black_box(outer.try_lock(move || i.try_lock(|| true)))
        })
    });
}

fn bench_epoch_pin(c: &mut Criterion) {
    c.bench_function("epoch_pin_unpin", |b| {
        b.iter(|| {
            let g = flock_epoch::pin();
            black_box(g.epoch())
        })
    });
}

fn bench_idempotent_alloc(c: &mut Criterion) {
    set_lock_mode(LockMode::LockFree);
    let l = Arc::new(Lock::new());
    let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
    c.bench_function("locked_alloc_retire_cycle", |b| {
        b.iter(|| {
            let s = Arc::clone(&slot);
            l.try_lock(move || {
                let old = s.load();
                let fresh = flock_core::alloc(|| 1u64);
                s.store(fresh);
                if !old.is_null() {
                    // SAFETY: old was unlinked by the store, under the lock.
                    unsafe { flock_core::retire(old) };
                }
                true
            })
        })
    });
}

criterion_group!(
    benches,
    bench_mutable,
    bench_lock_modes,
    bench_nested_lock,
    bench_epoch_pin,
    bench_idempotent_alloc
);
criterion_main!(benches);
