//! Microbenchmarks of the Flock primitives: lock acquire/release in both
//! modes, idempotent load/store, nested locks, epoch pin, and the
//! idempotent alloc/retire cycle. These quantify the per-operation
//! overheads the paper attributes to lock-free mode (descriptor allocation
//! + log commits).
//!
//! Dependency-free custom harness (`harness = false`): each case is run in
//! batches until a time budget is spent, and the best (lowest) per-op time
//! is reported — the usual defense against scheduler noise.
//!
//! ```sh
//! cargo bench -p flock-bench
//! ```

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use flock_core::{Lock, LockMode, Mutable, set_lock_mode};

/// Run `op` in batches for ~`budget`, reporting the best ns/op observed.
fn bench(name: &str, mut op: impl FnMut()) {
    const BATCH: u32 = 10_000;
    let budget = Duration::from_millis(200);
    // Warm-up batch.
    for _ in 0..BATCH {
        op();
    }
    let mut best = f64::INFINITY;
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        let b0 = Instant::now();
        for _ in 0..BATCH {
            op();
        }
        let ns = b0.elapsed().as_nanos() as f64 / BATCH as f64;
        if ns < best {
            best = ns;
        }
    }
    println!("{name:<36} {best:>10.1} ns/op");
}

fn bench_mutable() {
    set_lock_mode(LockMode::LockFree);
    let m = Mutable::new(0u64);
    bench("mutable_load_top_level", || {
        black_box(m.load());
    });
    let mut i = 0u64;
    bench("mutable_store_top_level", || {
        i = (i + 1) & 0xFFFF_FFFF;
        m.store(black_box(i));
    });
}

fn bench_lock_modes() {
    for (label, mode) in [
        ("lock_free", LockMode::LockFree),
        ("blocking", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        let l = Arc::new(Lock::new());
        let v = Arc::new(Mutable::new(0u64));
        bench(&format!("uncontended_try_lock_{label}"), || {
            let v2 = Arc::clone(&v);
            black_box(l.try_lock(move || v2.store(v2.load() + 1)));
        });
    }
    set_lock_mode(LockMode::LockFree);
}

fn bench_nested_lock() {
    set_lock_mode(LockMode::LockFree);
    let outer = Arc::new(Lock::new());
    let inner = Arc::new(Lock::new());
    bench("nested_try_lock_lock_free", || {
        let i = Arc::clone(&inner);
        black_box(outer.try_lock(move || i.try_lock(|| true)));
    });
}

fn bench_epoch_pin() {
    bench("epoch_pin_unpin", || {
        let g = flock_epoch::pin();
        black_box(g.epoch());
    });
}

fn bench_idempotent_alloc() {
    set_lock_mode(LockMode::LockFree);
    let l = Arc::new(Lock::new());
    let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
    bench("locked_alloc_retire_cycle", || {
        let s = Arc::clone(&slot);
        let _ = l.try_lock(move || {
            let old = s.load();
            let fresh = flock_core::alloc(|| 1u64);
            s.store(fresh);
            if !old.is_null() {
                // SAFETY: old was unlinked by the store, under the lock.
                unsafe { flock_core::retire(old) };
            }
        });
    });
}

fn main() {
    println!("flock primitive microbenchmarks (best of batches, lower is better)");
    bench_mutable();
    bench_lock_modes();
    bench_nested_lock();
    bench_epoch_pin();
    bench_idempotent_alloc();
}
