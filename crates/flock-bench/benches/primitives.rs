//! Microbenchmarks of the Flock primitives: lock acquire/release in both
//! modes, idempotent load/store (top-level and in-thunk), nested locks,
//! epoch pin, and the idempotent alloc/retire cycle. These quantify the
//! per-operation overheads the paper attributes to lock-free mode
//! (descriptor allocation + log commits).
//!
//! The suite itself lives in `flock_bench::bench_json::run_primitive_suite`
//! so the `perf_trajectory` binary reports the identical cases.
//!
//! Dependency-free custom harness (`harness = false`): each case is run in
//! batches until a time budget is spent, and the best (lowest) per-op time
//! is reported — the usual defense against scheduler noise.
//!
//! ```sh
//! cargo bench -p flock-bench
//! # machine-readable output too:
//! FLOCK_BENCH_JSON=bench.json cargo bench -p flock-bench
//! ```

use std::time::Duration;

use flock_bench::bench_json::{BenchReport, run_primitive_suite};

fn main() {
    println!("flock primitive microbenchmarks (best of batches, lower is better)");
    let primitives = run_primitive_suite(Duration::from_millis(200));
    if let Ok(path) = std::env::var("FLOCK_BENCH_JSON") {
        let report = BenchReport {
            primitives,
            throughput: Vec::new(),
            fairness: Vec::new(),
        };
        std::fs::write(&path, report.to_json()).expect("write FLOCK_BENCH_JSON");
        println!("wrote {path}");
    }
}
