//! # flock-bench — reproduction harness for every figure in the paper
//!
//! One binary per figure (`fig4`, `fig5`, `fig6`, `fig7`), an `ablate`
//! binary for the §6 design-choice ablations, and a `reproduce` front-end
//! that runs everything and writes `results/*.csv`.
//!
//! ## Scaling
//!
//! The paper's testbed is a 72-core (144-hyperthread) 4-socket Xeon with
//! 1 TB of RAM; this harness defaults to a **quick** scale chosen relative
//! to the host's core count (thread sweeps at 1×, 2×, 4× cores so the
//! oversubscription phenomena still appear) and a reduced "large" key range
//! (1M instead of 100M). `--paper` selects the paper's parameters verbatim.
//! Absolute Mop/s are not comparable across machines; the *shape* of each
//! series — who wins, where the blocking lines collapse — is what
//! EXPERIMENTS.md records against the paper's figures.

pub mod bench_json;

use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use flock_api::{Key, Map, OrderedMap, Value};
use flock_core::LockMode;
use flock_ds::{
    abtree::ABTree, arttree::ArtTree, dlist::DList, hashtable::HashTable, lazylist::LazyList,
    leaftreap::LeafTreap, leaftree::LeafTree,
};
use flock_workload::{Config, Measurement, SplitMix64};

/// A benchmarkable series: a structure plus the lock mode it runs under
/// (baselines ignore the mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Series {
    /// Registry name, e.g. `"leaftree"`, `"harris_list"`.
    pub structure: &'static str,
    /// Lock mode for Flock structures; `None` for baselines.
    pub mode: Option<LockMode>,
}

impl Series {
    /// Flock structure in lock-free mode (`-lf` suffix in reports).
    pub fn lf(structure: &'static str) -> Self {
        Self {
            structure,
            mode: Some(LockMode::LockFree),
        }
    }

    /// Flock structure in blocking mode (`-bl` suffix in reports).
    pub fn bl(structure: &'static str) -> Self {
        Self {
            structure,
            mode: Some(LockMode::Blocking),
        }
    }

    /// Baseline structure (mode-independent).
    pub fn base(structure: &'static str) -> Self {
        Self {
            structure,
            mode: None,
        }
    }

    /// Display label, e.g. `leaftree-lf`.
    pub fn label(&self) -> String {
        match self.mode {
            Some(LockMode::LockFree) => format!("{}-lf", self.structure),
            Some(LockMode::Blocking) => format!("{}-bl", self.structure),
            None => self.structure.to_string(),
        }
    }
}

/// The fat-value workload's value type: four words, heap-indirected
/// through the epoch-managed `ValueRepr` strategy (cannot fit the 48-bit
/// inline payload).
pub type FatValue = flock_api::Indirect<[u64; 4]>;

/// Deterministic fat-value constructor for the workload — the same
/// derivation the conformance harness uses, re-exported so the bench
/// trajectory and the tests can never diverge on what a "fat value" is.
pub use flock_api::testing::fat_value;

/// Instantiate every registry structure at a given `(K, V)` pair (all 14
/// variants are generic since the `ValueRepr` refactor).
macro_rules! registry {
    ($structure:expr, $key_range:expr) => {
        match $structure {
            "dlist" => Box::new(DList::new()),
            "lazylist" => Box::new(LazyList::new()),
            "hashtable" => Box::new(HashTable::with_capacity($key_range as usize)),
            "leaftree" => Box::new(LeafTree::new()),
            "leaftree-strict" => Box::new(LeafTree::new_strict()),
            "leaftreap" => Box::new(LeafTreap::new()),
            "abtree" => Box::new(ABTree::new()),
            "arttree" => Box::new(ArtTree::new()),
            "harris_list" => Box::new(flock_baselines::HarrisList::new()),
            "harris_list_opt" => Box::new(flock_baselines::HarrisList::new_opt()),
            "natarajan" => Box::new(flock_baselines::NatarajanBst::new()),
            "ellen" => Box::new(flock_baselines::EllenBst::new()),
            "bronson_style_bst" => Box::new(flock_baselines::BlockingBst::new()),
            "srivastava_abtree" => Box::new(flock_baselines::BlockingABTree::new()),
            other => panic!("unknown structure {other:?}"),
        }
    };
}

/// Instantiate a structure by registry name, sized for `key_range`, at the
/// paper's `(u64, u64)` evaluation shape.
pub fn make_map(structure: &str, key_range: u64) -> Box<dyn Map<u64, u64>> {
    registry!(structure, key_range)
}

/// Instantiate a structure by registry name at the fat-value shape
/// `(u64, FatValue)` — the heap-indirected workload of the trajectory.
pub fn make_map_fat(structure: &str, key_range: u64) -> Box<dyn Map<u64, FatValue>> {
    registry!(structure, key_range)
}

/// The ordered subset of the Flock registry — every structure implementing
/// [`OrderedMap`] (the hash table is the one exclusion).
pub const ORDERED_STRUCTURES: [&str; 7] = [
    "dlist",
    "lazylist",
    "leaftree",
    "leaftree-strict",
    "leaftreap",
    "abtree",
    "arttree",
];

/// Instantiate an **ordered** structure by registry name at the paper's
/// `(u64, u64)` shape. Panics on the hash table and the baselines — the
/// scan series is defined only over [`ORDERED_STRUCTURES`].
pub fn make_ordered_map(structure: &str, _key_range: u64) -> Box<dyn OrderedMap<u64, u64>> {
    match structure {
        "dlist" => Box::new(DList::new()),
        "lazylist" => Box::new(LazyList::new()),
        "leaftree" => Box::new(LeafTree::new()),
        "leaftree-strict" => Box::new(LeafTree::new_strict()),
        "leaftreap" => Box::new(LeafTreap::new()),
        "abtree" => Box::new(ABTree::new()),
        "arttree" => Box::new(ArtTree::new()),
        other => panic!("not an ordered registry structure: {other:?}"),
    }
}

/// Scale parameters for a whole reproduction run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// "Large" key range (paper: 100M; quick: 1M).
    pub large_range: u64,
    /// "Small" key range (paper and quick: 100K).
    pub small_range: u64,
    /// Thread counts for thread sweeps (includes oversubscribed points).
    pub thread_sweep: Vec<usize>,
    /// Thread count standing in for the paper's 144 (all hyperthreads).
    pub full_threads: usize,
    /// Thread count standing in for the paper's 216 (1.5× oversubscribed).
    pub oversub_threads: usize,
    /// Per-run duration.
    pub duration: Duration,
    /// Timed repeats after warm-up.
    pub repeats: usize,
}

impl Scale {
    /// Quick scale relative to this host (default).
    pub fn quick() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        Self {
            large_range: 1_000_000,
            small_range: 100_000,
            thread_sweep: vec![1, cores, 2 * cores, 4 * cores],
            full_threads: cores,
            oversub_threads: 2 * cores,
            duration: Duration::from_millis(300),
            repeats: 2,
        }
    }

    /// The paper's parameters (needs a large machine and patience).
    pub fn paper() -> Self {
        Self {
            large_range: 100_000_000,
            small_range: 100_000,
            thread_sweep: vec![1, 36, 72, 144, 216, 288],
            full_threads: 144,
            oversub_threads: 216,
            duration: Duration::from_secs(3),
            repeats: 3,
        }
    }

    /// Parse `--paper` / `--quick` from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Self::paper()
        } else {
            Self::quick()
        }
    }
}

/// Run one series at one configuration; handles the global lock-mode switch
/// (only while quiescent — the map is created fresh per run).
pub fn run_point(series: Series, cfg: &Config) -> Measurement {
    flock_core::set_lock_mode(series.mode.unwrap_or(LockMode::LockFree));
    let map = make_map(series.structure, cfg.key_range);
    let mut m = flock_workload::run_experiment(&*map, cfg);
    drop(map);
    flock_epoch::flush_all();
    flock_core::set_lock_mode(LockMode::LockFree);
    // Patch the label so lf/bl series are distinguishable in reports.
    m.name = Box::leak(series.label().into_boxed_str());
    m
}

/// Delegating wrapper that forces the **composite** remove+insert
/// `Map::update` — the non-atomic fallback every registry structure
/// replaced with a native in-place update. Exists so the trajectory can
/// price the atomic path against what it replaced
/// (`update_composite_*` primitives, `-updc` workload series); it is not
/// part of the registry.
pub struct CompositeUpdate<M>(pub M);

impl<K: Key, V: Value, M: Map<K, V>> Map<K, V> for CompositeUpdate<M> {
    fn insert(&self, key: K, value: V) -> bool {
        self.0.insert(key, value)
    }
    fn remove(&self, key: K) -> bool {
        self.0.remove(key)
    }
    fn get(&self, key: K) -> Option<V> {
        self.0.get(key)
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn update(&self, key: K, value: V) -> bool {
        // The pre-PR-5 composite, verbatim: observable absence window
        // between the halves, lost-update race with concurrent inserts.
        if self.0.remove(key.clone()) {
            let _ = self.0.insert(key, value);
            true
        } else {
            false
        }
    }
    fn has_atomic_update(&self) -> bool {
        false
    }
    fn len_approx(&self) -> Option<usize> {
        self.0.len_approx()
    }
}

/// [`run_point`] with the **update-heavy** mix (`update_percent`% native
/// `Map::update`, rest lookups). Series labels get a `-upd` suffix.
pub fn run_point_updates(series: Series, cfg: &Config) -> Measurement {
    flock_core::set_lock_mode(series.mode.unwrap_or(LockMode::LockFree));
    let map = make_map(series.structure, cfg.key_range);
    let mut m = flock_workload::run_update_experiment(&*map, cfg);
    drop(map);
    flock_epoch::flush_all();
    flock_core::set_lock_mode(LockMode::LockFree);
    m.name = Box::leak(format!("{}-upd", series.label()).into_boxed_str());
    m
}

/// [`run_point_updates`] through [`CompositeUpdate`]: the same update-heavy
/// mix forced down the remove+insert fallback. Labels get `-updc`; the
/// `-upd`/`-updc` pair is the recorded price of atomic update.
pub fn run_point_updates_composite(series: Series, cfg: &Config) -> Measurement {
    flock_core::set_lock_mode(series.mode.unwrap_or(LockMode::LockFree));
    let map = CompositeUpdate(make_map(series.structure, cfg.key_range));
    let mut m = flock_workload::run_update_experiment(&map, cfg);
    drop(map);
    flock_epoch::flush_all();
    flock_core::set_lock_mode(LockMode::LockFree);
    m.name = Box::leak(format!("{}-updc", series.label()).into_boxed_str());
    m
}

/// [`run_point`] at the fat-value shape: same workload, values built by
/// [`fat_value`]. Series labels get a `-fat` suffix.
pub fn run_point_fat(series: Series, cfg: &Config) -> Measurement {
    flock_core::set_lock_mode(series.mode.unwrap_or(LockMode::LockFree));
    let map = make_map_fat(series.structure, cfg.key_range);
    let mut m = flock_workload::run_experiment_as(&*map, cfg, fat_value);
    drop(map);
    flock_epoch::flush_all();
    flock_core::set_lock_mode(LockMode::LockFree);
    m.name = Box::leak(format!("{}-fat", series.label()).into_boxed_str());
    m
}

/// [`run_point`] at the **read-mostly** mix (95% lookups / 5% updates) the
/// optimistic read path is built for: `update_percent` is pinned to 5
/// regardless of the incoming config. Series labels get a `-rm` suffix.
pub fn run_point_read_mostly(series: Series, cfg: &Config) -> Measurement {
    let cfg = Config {
        update_percent: 5,
        ..cfg.clone()
    };
    let mut m = run_point(series, &cfg);
    // `run_point` already stamped the base label; add the mix suffix.
    m.name = Box::leak(format!("{}-rm", m.name).into_boxed_str());
    m
}

/// Keys per range scan in the `-scan` workload.
pub const SCAN_WIDTH: u64 = 64;

/// [`run_point`]'s counterpart for the **ordered-scan** workload: each
/// operation is either a [`OrderedMap::range`] over a uniformly-placed
/// [`SCAN_WIDTH`]-key window (the `100 - update_percent` fraction) or a
/// point mutation (insert/remove split evenly). One scan counts as one
/// operation, so Mop/s here are scans/s-scaled, not entries/s. Series
/// labels get a `-scan` suffix; only [`ORDERED_STRUCTURES`] participate.
pub fn run_point_scan(series: Series, cfg: &Config) -> Measurement {
    flock_core::set_lock_mode(series.mode.unwrap_or(LockMode::LockFree));
    let map = make_ordered_map(series.structure, cfg.key_range);
    let mut m = run_scan_experiment(&*map, cfg);
    drop(map);
    flock_epoch::flush_all();
    flock_core::set_lock_mode(LockMode::LockFree);
    m.name = Box::leak(format!("{}-scan", series.label()).into_boxed_str());
    m
}

/// The scan experiment protocol: prefill (half the keys, random order, as
/// the point-op driver does), one discarded warm-up run, `cfg.repeats`
/// timed runs of the scan/mutate mix; mean ± σ throughput.
fn run_scan_experiment<M: OrderedMap<u64, u64> + ?Sized>(map: &M, cfg: &Config) -> Measurement {
    // Prefill mirroring the driver's convention: a key is "in" the initial
    // set iff its sparsify hash is even; shuffled parallel insertion keeps
    // the comparison trees balanced in expectation.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(cfg.threads.max(1));
    let range = cfg.key_range;
    std::thread::scope(|s| {
        for w in 0..workers {
            let map = &*map;
            let lo = range * w as u64 / workers as u64;
            let hi = range * (w as u64 + 1) / workers as u64;
            s.spawn(move || {
                let mut keys: Vec<u64> = (lo..hi)
                    .filter(|&k| flock_workload::sparsify(k) & 1 == 0)
                    .collect();
                let mut rng = SplitMix64::new(cfg.seed ^ ((w as u64 + 1) * 0xF11));
                for i in (1..keys.len()).rev() {
                    keys.swap(i, rng.below(i as u64 + 1) as usize);
                }
                for k in keys {
                    map.insert(k, k);
                }
            });
        }
    });
    let _ = scan_timed_run(map, cfg, 0);
    let mut mops = Vec::with_capacity(cfg.repeats);
    let mut total_ops = 0u64;
    let mut per_thread_ops = vec![0u64; cfg.threads];
    for r in 0..cfg.repeats {
        let t0 = Instant::now();
        let counts = scan_timed_run(map, cfg, r + 1);
        let secs = t0.elapsed().as_secs_f64();
        let ops: u64 = counts.iter().sum();
        for (acc, c) in per_thread_ops.iter_mut().zip(&counts) {
            *acc += c;
        }
        total_ops += ops;
        mops.push(ops as f64 / secs / 1e6);
    }
    let mean = mops.iter().sum::<f64>() / mops.len() as f64;
    let var = if mops.len() > 1 {
        mops.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (mops.len() - 1) as f64
    } else {
        0.0
    };
    Measurement {
        name: map.name(),
        mops_mean: mean,
        mops_stddev: var.sqrt(),
        total_ops,
        per_thread_ops,
        config: cfg.clone(),
    }
}

fn scan_timed_run<M: OrderedMap<u64, u64> + ?Sized>(
    map: &M,
    cfg: &Config,
    run_idx: usize,
) -> Vec<u64> {
    let stop = AtomicBool::new(false);
    let counts: Vec<AtomicU64> = (0..cfg.threads).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|s| {
        for (t, slot) in counts.iter().enumerate() {
            let stop = &stop;
            let map = &*map;
            s.spawn(move || {
                let mut rng = SplitMix64::new(
                    cfg.seed ^ (run_idx as u64) << 32 ^ ((t as u64 + 1) * 0x5CA7_0000),
                );
                let mut ops = 0u64;
                let mut check = 0u32;
                while {
                    check += 1;
                    !check.is_multiple_of(64) || !stop.load(Ordering::Relaxed)
                } {
                    let dice = rng.below(100) as u32;
                    if dice < cfg.update_percent {
                        let key = rng.below(cfg.key_range);
                        if dice.is_multiple_of(2) {
                            map.insert(key, key);
                        } else {
                            map.remove(key);
                        }
                    } else {
                        let lo = rng.below(cfg.key_range.saturating_sub(SCAN_WIDTH).max(1));
                        let hi = lo + SCAN_WIDTH;
                        std::hint::black_box(
                            map.range(Bound::Included(&lo), Bound::Excluded(&hi)).len(),
                        );
                    }
                    ops += 1;
                }
                slot.store(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(cfg.run_duration);
        stop.store(true, Ordering::SeqCst);
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

/// Emit a CSV file under `results/` and echo rows to stdout.
pub struct Report {
    rows: Vec<Measurement>,
    file: String,
}

impl Report {
    /// New report writing to `results/<file>.csv`.
    pub fn new(file: &str) -> Self {
        println!("# {}", file);
        println!("{}", Measurement::csv_header());
        Self {
            rows: Vec::new(),
            file: file.to_string(),
        }
    }

    /// Record and echo one measurement.
    pub fn push(&mut self, m: Measurement) {
        println!("{}", m.csv_row());
        self.rows.push(m);
    }

    /// Write `results/<file>.csv`.
    pub fn write(&self) -> std::io::Result<()> {
        std::fs::create_dir_all("results")?;
        let mut out = String::from(Measurement::csv_header());
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.csv_row());
            out.push('\n');
        }
        std::fs::write(format!("results/{}.csv", self.file), out)
    }

    /// Access the collected rows.
    pub fn rows(&self) -> &[Measurement] {
        &self.rows
    }
}

/// The zipfian parameters every figure sweeps.
pub const ALPHAS: [f64; 4] = [0.0, 0.75, 0.9, 0.99];
/// The update percentages of Figure 5b/5f.
pub const UPDATE_SWEEP: [u32; 4] = [0, 5, 10, 50];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_constructs_every_structure() {
        for name in [
            "dlist",
            "lazylist",
            "hashtable",
            "leaftree",
            "leaftree-strict",
            "leaftreap",
            "abtree",
            "arttree",
            "harris_list",
            "harris_list_opt",
            "natarajan",
            "ellen",
            "bronson_style_bst",
            "srivastava_abtree",
        ] {
            let m = make_map(name, 1024);
            assert!(m.insert(1, 2), "{name}");
            assert_eq!(m.get(1), Some(2), "{name}");
            assert!(m.remove(1), "{name}");
            // And the fat-value instantiation of the same structure.
            let f = make_map_fat(name, 1024);
            assert!(f.insert(1, fat_value(2)), "{name} (fat)");
            assert_eq!(f.get(1), Some(fat_value(2)), "{name} (fat)");
            assert!(f.remove(1), "{name} (fat)");
        }
        flock_epoch::flush_all();
    }

    /// PR 5: the remove+insert composite `update` is **unreachable from
    /// the public registry** — every structure (all 7 Flock structures and
    /// all 5 baselines, at both the paper shape and the fat shape)
    /// provides the native atomic `update` and says so. The composite's
    /// absence-window contract stays pinned in flock-api for external
    /// implementors only.
    #[test]
    fn composite_update_unreachable_from_registry() {
        for name in [
            "dlist",
            "lazylist",
            "hashtable",
            "leaftree",
            "leaftree-strict",
            "leaftreap",
            "abtree",
            "arttree",
            "harris_list",
            "harris_list_opt",
            "natarajan",
            "ellen",
            "bronson_style_bst",
            "srivastava_abtree",
        ] {
            let m = make_map(name, 1024);
            assert!(
                m.has_atomic_update(),
                "{name} fell back to the composite update"
            );
            assert!(m.insert(1, 2));
            assert!(m.update(1, 3), "{name}: native update of a present key");
            assert_eq!(m.get(1), Some(3), "{name}");
            assert!(!m.update(9, 1), "{name}: update of an absent key");
            let f = make_map_fat(name, 1024);
            assert!(f.has_atomic_update(), "{name} (fat)");
            assert!(f.insert(1, fat_value(2)));
            assert!(f.update(1, fat_value(3)), "{name} (fat)");
            assert_eq!(f.get(1), Some(fat_value(3)), "{name} (fat)");
        }
        flock_epoch::flush_all();
    }

    #[test]
    fn run_point_fat_smoke() {
        let cfg = Config {
            threads: 2,
            key_range: 512,
            update_percent: 50,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(20),
            repeats: 1,
            sparsify_keys: false,
            seed: 4,
        };
        let m = run_point_fat(Series::lf("hashtable"), &cfg);
        assert!(m.mops_mean > 0.0, "{}", m.name);
        assert_eq!(m.name, "hashtable-lf-fat");
    }

    #[test]
    fn run_point_updates_smoke() {
        let cfg = Config {
            threads: 2,
            key_range: 512,
            update_percent: 50,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(20),
            repeats: 1,
            sparsify_keys: false,
            seed: 5,
        };
        let m = run_point_updates(Series::lf("hashtable"), &cfg);
        assert!(m.mops_mean > 0.0, "{}", m.name);
        assert_eq!(m.name, "hashtable-lf-upd");
        let m = run_point_updates_composite(Series::lf("hashtable"), &cfg);
        assert!(m.mops_mean > 0.0, "{}", m.name);
        assert_eq!(m.name, "hashtable-lf-updc");
    }

    #[test]
    fn run_point_read_mostly_smoke() {
        let cfg = Config {
            threads: 2,
            key_range: 512,
            update_percent: 50, // overridden to 5 by the runner
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(20),
            repeats: 1,
            sparsify_keys: false,
            seed: 6,
        };
        let m = run_point_read_mostly(Series::lf("hashtable"), &cfg);
        assert!(m.mops_mean > 0.0, "{}", m.name);
        assert_eq!(m.name, "hashtable-lf-rm");
        assert_eq!(m.config.update_percent, 5, "read-mostly mix is 95/5");
    }

    #[test]
    fn run_point_scan_smoke() {
        let cfg = Config {
            threads: 2,
            key_range: 512,
            update_percent: 5,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(20),
            repeats: 1,
            sparsify_keys: false,
            seed: 7,
        };
        for structure in ORDERED_STRUCTURES {
            let m = run_point_scan(Series::lf(structure), &cfg);
            assert!(m.mops_mean > 0.0, "{}", m.name);
            assert!(m.name.ends_with("-scan"), "{}", m.name);
        }
    }

    #[test]
    fn ordered_registry_scans_in_order() {
        for structure in ORDERED_STRUCTURES {
            let m = make_ordered_map(structure, 1024);
            for k in [9u64, 3, 7, 1, 5] {
                assert!(m.insert(k, k * 10), "{structure}");
            }
            assert_eq!(m.scan(3..8), vec![(3, 30), (5, 50), (7, 70)], "{structure}");
            assert_eq!(m.iter().len(), 5, "{structure}");
        }
        flock_epoch::flush_all();
    }

    #[test]
    fn series_labels() {
        assert_eq!(Series::lf("leaftree").label(), "leaftree-lf");
        assert_eq!(Series::bl("leaftree").label(), "leaftree-bl");
        assert_eq!(Series::base("ellen").label(), "ellen");
    }

    #[test]
    fn run_point_smoke() {
        let cfg = Config {
            threads: 2,
            key_range: 512,
            update_percent: 50,
            zipf_alpha: 0.75,
            run_duration: Duration::from_millis(20),
            repeats: 1,
            sparsify_keys: false,
            seed: 3,
        };
        for s in [
            Series::lf("leaftree"),
            Series::bl("leaftree"),
            Series::base("natarajan"),
        ] {
            let m = run_point(s, &cfg);
            assert!(m.mops_mean > 0.0, "{}", m.name);
        }
    }
}
