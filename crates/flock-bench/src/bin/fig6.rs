//! Figure 6 (a, b): the other set data structures — arttree, leaftreap,
//! hashtable, abtree (each blocking + lock-free) and the Srivastava-style
//! blocking (a,b)-tree baseline.
//!
//! * a: large range, 50% upd, α=.75, thread sweep
//! * b: large range, oversubscribed, 50% upd, α sweep
//!
//! The arttree runs with sparsified (hashed) keys, as in the paper.

use flock_bench::{ALPHAS, Report, Scale, Series, run_point};
use flock_workload::Config;

fn series() -> Vec<Series> {
    vec![
        Series::bl("arttree"),
        Series::lf("arttree"),
        Series::bl("leaftreap"),
        Series::lf("leaftreap"),
        Series::bl("hashtable"),
        Series::lf("hashtable"),
        Series::bl("abtree"),
        Series::lf("abtree"),
        Series::base("srivastava_abtree"),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let panel = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--panel")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let run = |p: &str| panel.as_deref().map(|sel| sel == p).unwrap_or(true);
    let base_cfg = Config {
        threads: scale.full_threads,
        key_range: scale.large_range,
        update_percent: 50,
        zipf_alpha: 0.75,
        run_duration: scale.duration,
        repeats: scale.repeats,
        sparsify_keys: false,
        seed: 6,
    };

    if run("a") {
        let mut r = Report::new("fig6a_sets_thread_sweep");
        for &t in &scale.thread_sweep {
            for s in series() {
                let sparsify = s.structure == "arttree";
                r.push(run_point(
                    s,
                    &Config {
                        threads: t,
                        sparsify_keys: sparsify,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig6a");
    }
    if run("b") {
        let mut r = Report::new("fig6b_sets_zipf_oversub");
        for a in ALPHAS {
            for s in series() {
                let sparsify = s.structure == "arttree";
                r.push(run_point(
                    s,
                    &Config {
                        threads: scale.oversub_threads,
                        zipf_alpha: a,
                        sparsify_keys: sparsify,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig6b");
    }
}
