//! Figure 7 (a, b): singly and doubly linked lists.
//!
//! Series: harris_list, harris_list_opt (lock-free baselines),
//! lazylist-{bl,lf} and dlist-{bl,lf} (ours).
//!
//! * a: full threads, 5% upd, α=.75, size sweep (paper: 10²–10⁴)
//! * b: 100 keys, 5% upd, α=.75, thread sweep

use flock_bench::{Report, Scale, Series, run_point};
use flock_workload::Config;

fn series() -> Vec<Series> {
    vec![
        Series::base("harris_list"),
        Series::base("harris_list_opt"),
        Series::bl("lazylist"),
        Series::lf("lazylist"),
        Series::bl("dlist"),
        Series::lf("dlist"),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let panel = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--panel")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let run = |p: &str| panel.as_deref().map(|sel| sel == p).unwrap_or(true);
    let base_cfg = Config {
        threads: scale.full_threads,
        key_range: 100,
        update_percent: 5,
        zipf_alpha: 0.75,
        run_duration: scale.duration,
        repeats: scale.repeats,
        sparsify_keys: false,
        seed: 7,
    };

    if run("a") {
        let mut r = Report::new("fig7a_list_size_sweep");
        for range in [100u64, 1_000, 10_000] {
            for s in series() {
                r.push(run_point(
                    s,
                    &Config {
                        key_range: range,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig7a");
    }
    if run("b") {
        let mut r = Report::new("fig7b_list_thread_sweep");
        for &t in &scale.thread_sweep {
            for s in series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: t,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig7b");
    }
}
