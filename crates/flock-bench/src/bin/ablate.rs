//! Ablations of the §6 design choices, beyond the paper's figures:
//!
//! * **compare-and-compare-and-swap** on/off — the paper reports the
//!   read-before-CAS is worth "sometimes a factor of two or more" under
//!   high contention;
//! * **descriptor reuse-if-unhelped** on/off — isolates the cost of
//!   retiring every descriptor through the epoch collector;
//! * **helping** on/off — with helping off, busy try-locks just fail
//!   (forfeiting lock-freedom) — isolates what helping costs under
//!   contention and what it buys under oversubscription.
//!
//! Workload: leaftree, small range, 50% updates, α = 0.99 (the paper's
//! highest-contention point), at the full and oversubscribed thread counts.

use flock_bench::{Report, Scale, Series, run_point};
use flock_workload::Config;

fn main() {
    let scale = Scale::from_args();
    let mut r = Report::new("ablations");
    let cfg = Config {
        threads: scale.full_threads,
        key_range: scale.small_range,
        update_percent: 50,
        zipf_alpha: 0.99,
        run_duration: scale.duration,
        repeats: scale.repeats,
        sparsify_keys: false,
        seed: 8,
    };
    let series = Series::lf("leaftree");

    for threads in [scale.full_threads, scale.oversub_threads] {
        let cfg = Config {
            threads,
            ..cfg.clone()
        };

        println!("## threads = {threads}: baseline (all optimizations on)");
        r.push(run_point(series, &cfg));

        println!("## threads = {threads}: ccas off");
        flock_sync::set_ccas_enabled(false);
        let mut m = run_point(series, &cfg);
        m.name = "leaftree-lf[no-ccas]";
        r.push(m);
        flock_sync::set_ccas_enabled(true);

        println!("## threads = {threads}: descriptor reuse off");
        flock_core::set_descriptor_reuse(false);
        let mut m = run_point(series, &cfg);
        m.name = "leaftree-lf[no-reuse]";
        r.push(m);
        flock_core::set_descriptor_reuse(true);

        println!("## threads = {threads}: helping off");
        flock_core::set_helping(false);
        let mut m = run_point(series, &cfg);
        m.name = "leaftree-lf[no-helping]";
        r.push(m);
        flock_core::set_helping(true);
    }
    r.write().expect("write results/ablations.csv");
}
