//! The recorded perf trajectory: one command that measures the primitive
//! suite plus multi-thread structure throughput and writes `BENCH_<pr>.json`
//! (schema in EXPERIMENTS.md). Each perf-relevant PR commits one snapshot so
//! hot-path regressions are visible in review and enforced in CI.
//!
//! ```sh
//! # write a fresh snapshot
//! cargo run --release -p flock-bench --bin perf_trajectory -- --out BENCH_2.json
//! # CI quick mode: primitives only, fail on >2x regression vs the baseline
//! cargo run --release -p flock-bench --bin perf_trajectory -- \
//!     --primitives-only --check BENCH_2.json
//! ```

use std::time::{Duration, Instant};

use flock_bench::bench_json::{BenchReport, FairnessSample, ThroughputSample, run_primitive_suite};
use flock_bench::{
    Series, run_point, run_point_fat, run_point_read_mostly, run_point_scan, run_point_updates,
    run_point_updates_composite,
};
use flock_workload::Config;

/// Regression gate for `--check`: fail when a primitive slows down by more
/// than this factor vs. the committed baseline.
const REGRESSION_FACTOR: f64 = 2.0;

/// Clamp on the calibration ratio: outside this range the "host speed"
/// explanation is implausible and the raw baseline is used as-is.
const CALIBRATION_CLAMP: (f64, f64) = (1.0 / 3.0, 3.0);

/// Host-speed ratio (current / baseline): a **low quantile** (second
/// lowest) of the per-case ratios over every primitive present in both
/// reports, clamped.
///
/// The baseline was recorded on one machine; CI runners can be
/// systematically 2–3x slower (or faster) — a hardware delta, not a
/// regression, and without calibration it would trip (or mask) the gate
/// deterministically. The low quantile exploits that a hardware delta
/// moves *every* ratio together while a code regression cannot slow the
/// cases that do not share the touched path (the blocking lock and
/// top-level store cases sit outside the lock-free hot paths): even a
/// regression hitting a majority of cases leaves the low end of the ratio
/// distribution near 1.0, so it cannot rescale the gate out from under
/// itself — the failure mode a median or mean calibration has. Taking the
/// second-lowest (not the minimum) tolerates one noisy-fast outlier;
/// mis-calibrating low only tightens the gate, which the 2x margin
/// absorbs.
fn calibration(current: &BenchReport, baseline: &BenchReport) -> f64 {
    let mut ratios: Vec<f64> = current
        .primitives
        .iter()
        .filter_map(|new| {
            // Contended cases are excluded from calibration: their own
            // run-to-run spread (2-3x, see CONTENDED_FACTOR_SCALE) exceeds
            // the gate margin, so a lucky-fast contended window could drag
            // the low-quantile ratio down and rescale the baseline under
            // unchanged uncontended cases. They keep their widened gate;
            // only the stable uncontended cases estimate host speed.
            // Fat-value cases are excluded for the same reason: they are
            // allocator-bound, and allocator behavior varies across hosts
            // independently of the CPU-speed delta the calibration models.
            // The update-heavy cases (native vs composite Map::update)
            // inherit both exclusions: the composite side allocates per op.
            // Pool cases are reclamation- and scheduler-bound (the cross-
            // thread case runs a second thread), so they are excluded too.
            if new.name.starts_with("contended_")
                || new.name.starts_with("fat_value_")
                || new.name.starts_with("update_")
                || new.name.starts_with("pool_")
            {
                return None;
            }
            let old = baseline.primitives.iter().find(|p| p.name == new.name)?;
            // Sub-ns cases are noise-dominated; floor like the gate does.
            (old.ns_per_op >= 1.0 && new.ns_per_op > 0.0).then(|| new.ns_per_op / old.ns_per_op)
        })
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let low_quantile = ratios[1.min(ratios.len() - 1)];
    low_quantile.clamp(CALIBRATION_CLAMP.0, CALIBRATION_CLAMP.1)
}

fn throughput_sweep(duration: Duration, repeats: usize) -> Vec<ThroughputSample> {
    let mut out = Vec::new();
    // The ISSUE-2 trajectory triple: a hashtable (flat), an (a,b)-tree
    // (shallow) and a leaf tree (deep) — one representative per structure
    // class — in both lock modes, at 1/4/8 threads (8 oversubscribes the
    // usual CI container, deliberately: helping must not collapse there).
    for structure in ["hashtable", "abtree", "leaftree"] {
        for series in [Series::lf(structure), Series::bl(structure)] {
            for threads in [1usize, 4, 8] {
                let cfg = Config {
                    threads,
                    key_range: 100_000,
                    update_percent: 20,
                    zipf_alpha: 0.75,
                    run_duration: duration,
                    repeats,
                    sparsify_keys: false,
                    seed: 2,
                };
                let m = run_point(series, &cfg);
                println!(
                    "{:<24} threads={:<2} {:>8.3} Mop/s",
                    m.name, threads, m.mops_mean
                );
                out.push(ThroughputSample {
                    series: m.name.to_string(),
                    threads,
                    mops: m.mops_mean,
                });
            }
        }
    }
    // Fat-value workload (ISSUE 4): the same zipfian mix over heap-
    // indirected `Indirect<[u64; 4]>` values, so the cost of the indirect
    // `ValueRepr` strategy is a recorded trajectory point, not folklore.
    // One flat structure and one tree, both lock modes, 1/4 threads.
    for structure in ["hashtable", "abtree"] {
        for series in [Series::lf(structure), Series::bl(structure)] {
            for threads in [1usize, 4] {
                let cfg = Config {
                    threads,
                    key_range: 100_000,
                    update_percent: 20,
                    zipf_alpha: 0.75,
                    run_duration: duration,
                    repeats,
                    sparsify_keys: false,
                    seed: 2,
                };
                let m = run_point_fat(series, &cfg);
                println!(
                    "{:<24} threads={:<2} {:>8.3} Mop/s",
                    m.name, threads, m.mops_mean
                );
                out.push(ThroughputSample {
                    series: m.name.to_string(),
                    threads,
                    mops: m.mops_mean,
                });
            }
        }
    }
    // Update-heavy workload (ISSUE 5): 50% native `Map::update` / 50% get
    // over the prefilled key set, against the identical mix forced down the
    // remove+insert composite — the recorded price of atomic update at the
    // structure level. One flat and one tree structure, lock-free mode,
    // 1/4 threads.
    for structure in ["hashtable", "abtree"] {
        for threads in [1usize, 4] {
            let cfg = Config {
                threads,
                key_range: 100_000,
                update_percent: 50,
                zipf_alpha: 0.75,
                run_duration: duration,
                repeats,
                sparsify_keys: false,
                seed: 2,
            };
            for m in [
                run_point_updates(Series::lf(structure), &cfg),
                run_point_updates_composite(Series::lf(structure), &cfg),
            ] {
                println!(
                    "{:<24} threads={:<2} {:>8.3} Mop/s",
                    m.name, threads, m.mops_mean
                );
                out.push(ThroughputSample {
                    series: m.name.to_string(),
                    threads,
                    mops: m.mops_mean,
                });
            }
        }
    }
    // Read-mostly workload (ISSUE 8): the 95/5 mix the optimistic
    // version-validated read path exists for — get/contains run unlogged
    // `Acquire` descents re-checked against the owning lock's version.
    // Same representative triple, both lock modes, 1/4 threads.
    for structure in ["hashtable", "abtree", "leaftree"] {
        for series in [Series::lf(structure), Series::bl(structure)] {
            for threads in [1usize, 4] {
                let cfg = Config {
                    threads,
                    key_range: 100_000,
                    update_percent: 5, // pinned by run_point_read_mostly anyway
                    zipf_alpha: 0.75,
                    run_duration: duration,
                    repeats,
                    sparsify_keys: false,
                    seed: 2,
                };
                let m = run_point_read_mostly(series, &cfg);
                println!(
                    "{:<24} threads={:<2} {:>8.3} Mop/s",
                    m.name, threads, m.mops_mean
                );
                out.push(ThroughputSample {
                    series: m.name.to_string(),
                    threads,
                    mops: m.mops_mean,
                });
            }
        }
    }
    // Ordered-scan workload (ISSUE 8): SCAN_WIDTH-key `range` scans racing
    // 5% point mutations — the validated-snapshot leaf reads under
    // contention. One shallow and one deep tree, lock-free mode, 1/4
    // threads; one op = one whole scan, so Mop/s are not comparable with
    // the point series.
    for structure in ["abtree", "leaftree"] {
        for threads in [1usize, 4] {
            let cfg = Config {
                threads,
                key_range: 100_000,
                update_percent: 5,
                zipf_alpha: 0.75,
                run_duration: duration,
                repeats,
                sparsify_keys: false,
                seed: 2,
            };
            let m = run_point_scan(Series::lf(structure), &cfg);
            println!(
                "{:<24} threads={:<2} {:>8.3} Mop/s",
                m.name, threads, m.mops_mean
            );
            out.push(ThroughputSample {
                series: m.name.to_string(),
                threads,
                mops: m.mops_mean,
            });
        }
    }
    out
}

/// Critical-section compute per storm op (see `hot_lock_storm`'s docs):
/// ~140µs of dependent multiply-adds. Long enough that draining the
/// published arrivals fills a scheduler slice on an oversubscribed host —
/// so completions flow through helping/handoff in admission order instead
/// of collapsing into pure CPU-share accounting — while the accumulated
/// windows still give every thread hundreds of ops of resolution.
const FAIR_CS_SPIN: u32 = 100_000;

/// Out-of-lock think time per storm op. The committed series uses ZERO:
/// on a single-core host a sleeping thread hands the CPU — and therefore
/// the next release instant — to exactly one runnable waiter, so service
/// order collapses to the scheduler's wake order under *both* policies
/// and the series stops discriminating (measured: max/min ≈ 1.0–1.2 for
/// both at 500µs think). The knob stays because on a multicore host think
/// time is the standard fairness-bench shape: it creates genuinely
/// simultaneous wake-up races for Race admission to lose.
const FAIR_THINK: Duration = Duration::ZERO;

/// Accumulation windows per fairness series. Per-window scheduler-share
/// noise averages out across windows (the summed counts' spread shrinks
/// ~√windows) while the admission policy's systematic effect does not, so
/// more windows make the race-vs-fifo ordering stable, not just tighter.
const FAIR_REPEATS: usize = 8;

/// Hot-lock admission fairness (ISSUE 10): `threads` workers hammer ONE
/// strict `Locked` cell built with each admission policy; per-thread op
/// counts are summed over `repeats` windows and reduced to the max/min
/// ratio and Jain's index. The `fair-race` rows record the CAS race's
/// spread; `fair-fifo` is the constant-handoff policy whose whole point is
/// pulling that spread toward 1.0 at some throughput cost. 8 threads
/// matches the contended primitives; 32 heavily oversubscribes the CI
/// container, where the race's cache-luck streaks are longest.
fn fairness_sweep(window: Duration, repeats: usize) -> Vec<FairnessSample> {
    use flock_api::testing::hot_lock_storm;
    use flock_core::Admission;
    flock_core::set_lock_mode(flock_core::LockMode::LockFree);
    let repeats = repeats.max(FAIR_REPEATS);
    // Dev knobs for methodology experiments; the committed BENCH_9 numbers
    // use the defaults.
    let repeats = std::env::var("FAIR_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(repeats);
    let window = std::env::var("FAIR_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(window);
    let mut out = Vec::new();
    for threads in [8usize, 32] {
        for (label, admission) in [
            ("fair-race", Admission::Race),
            ("fair-fifo", Admission::Fifo),
        ] {
            let mut per_thread = vec![0u64; threads];
            let mut secs = 0.0f64;
            for _ in 0..repeats {
                let t0 = Instant::now();
                let counts = hot_lock_storm(admission, threads, window, FAIR_CS_SPIN, FAIR_THINK);
                secs += t0.elapsed().as_secs_f64();
                for (acc, c) in per_thread.iter_mut().zip(&counts) {
                    *acc += c;
                }
            }
            // Reuse the workload driver's (tested) fairness reductions.
            let m = flock_workload::Measurement {
                name: label,
                mops_mean: per_thread.iter().sum::<u64>() as f64 / secs / 1e6,
                mops_stddev: 0.0,
                total_ops: per_thread.iter().sum(),
                per_thread_ops: per_thread,
                config: Config {
                    threads,
                    ..Config::default()
                },
            };
            println!(
                "{:<24} threads={:<2} {:>8.3} Mop/s  max/min={:<8.2} jain={:.3}",
                label,
                threads,
                m.mops_mean,
                m.max_min_ratio(),
                m.jain_index()
            );
            if std::env::var_os("FAIR_DEBUG").is_some() {
                let mut sorted = m.per_thread_ops.clone();
                sorted.sort_unstable();
                println!("  counts: {sorted:?}");
            }
            out.push(FairnessSample {
                series: label.to_string(),
                threads,
                mops: m.mops_mean,
                max_min_ratio: m.max_min_ratio(),
                jain: m.jain_index(),
            });
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let primitives_only = flag("--primitives-only");
    let fairness_only = flag("--fairness-only");
    let full = flag("--full");
    let budget = if full {
        Duration::from_millis(500)
    } else {
        Duration::from_millis(200)
    };
    let (duration, repeats) = if full {
        (Duration::from_millis(500), 3)
    } else {
        (Duration::from_millis(200), 2)
    };

    let primitives = if fairness_only {
        Vec::new()
    } else {
        println!("== primitive suite (best of batches, lower is better) ==");
        run_primitive_suite(budget)
    };

    let throughput = if primitives_only || fairness_only {
        Vec::new()
    } else {
        println!("== structure throughput (mean of timed runs, higher is better) ==");
        throughput_sweep(duration, repeats)
    };

    let fairness = if primitives_only {
        Vec::new()
    } else {
        println!("== hot-lock admission fairness (max/min → 1.0 is fairer) ==");
        fairness_sweep(duration, repeats)
    };

    let report = BenchReport {
        primitives,
        throughput,
        fairness,
    };

    if let Some(out) = value("--out") {
        std::fs::write(&out, report.to_json()).expect("write --out file");
        println!("wrote {out}");
    }

    if let Some(baseline_path) = value("--check") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let mut baseline = BenchReport::parse_json(&text);
        assert!(
            !baseline.primitives.is_empty(),
            "baseline {baseline_path} contains no primitive samples"
        );
        // Rescale the committed baseline to this host's speed so the gate
        // measures algorithmic regressions, not hardware deltas.
        let calib = calibration(&report, &baseline);
        println!("host-speed calibration vs {baseline_path}: {calib:.2}x");
        for p in &mut baseline.primitives {
            p.ns_per_op *= calib;
        }
        let regressions = report.primitive_regressions(&baseline, REGRESSION_FACTOR);
        if regressions.is_empty() {
            println!(
                "check ok: no primitive regressed by more than {REGRESSION_FACTOR}x vs \
                 {baseline_path} (calibrated)"
            );
        } else {
            eprintln!("perf regressions vs {baseline_path} (calibrated {calib:.2}x):");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
