//! Figure 5 (a–h): binary trees under a wide range of workloads.
//!
//! Series: leaftree-bl, leaftree-lf (ours) vs natarajan + ellen (lock-free)
//! and a Bronson-style blocking BST. Panels:
//!
//! * a: large range, 50% upd, α=.75, thread sweep
//! * b: large range, full threads, α=.75, update sweep
//! * c: large range, full threads, 50% upd, α sweep
//! * d: large range, oversubscribed, 50% upd, α sweep
//! * e: small range, 50% upd, α=.75, thread sweep
//! * f: small range, full threads, α=.75, update sweep
//! * g: small range, oversubscribed, 5% upd, α sweep
//! * h: oversubscribed, 5% upd, α=.75, size sweep
//!
//! Run a single panel with `--panel <a..h>`; default runs all.

use flock_bench::{ALPHAS, Report, Scale, Series, UPDATE_SWEEP, run_point};
use flock_workload::Config;

fn tree_series() -> Vec<Series> {
    vec![
        Series::bl("leaftree"),
        Series::lf("leaftree"),
        Series::base("natarajan"),
        Series::base("ellen"),
        Series::base("bronson_style_bst"),
    ]
}

fn panel_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let scale = Scale::from_args();
    let panel = panel_arg();
    let run = |p: &str| panel.as_deref().map(|sel| sel == p).unwrap_or(true);
    let base_cfg = Config {
        threads: scale.full_threads,
        key_range: scale.large_range,
        update_percent: 50,
        zipf_alpha: 0.75,
        run_duration: scale.duration,
        repeats: scale.repeats,
        sparsify_keys: false,
        seed: 5,
    };

    if run("a") {
        let mut r = Report::new("fig5a_large_thread_sweep");
        for &t in &scale.thread_sweep {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: t,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5a");
    }
    if run("b") {
        let mut r = Report::new("fig5b_large_update_sweep");
        for u in UPDATE_SWEEP {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        update_percent: u,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5b");
    }
    if run("c") {
        let mut r = Report::new("fig5c_large_zipf_sweep");
        for a in ALPHAS {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        zipf_alpha: a,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5c");
    }
    if run("d") {
        let mut r = Report::new("fig5d_large_zipf_oversub");
        for a in ALPHAS {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: scale.oversub_threads,
                        zipf_alpha: a,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5d");
    }
    if run("e") {
        let mut r = Report::new("fig5e_small_thread_sweep");
        for &t in &scale.thread_sweep {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: t,
                        key_range: scale.small_range,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5e");
    }
    if run("f") {
        let mut r = Report::new("fig5f_small_update_sweep");
        for u in UPDATE_SWEEP {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        key_range: scale.small_range,
                        update_percent: u,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5f");
    }
    if run("g") {
        let mut r = Report::new("fig5g_small_zipf_oversub");
        for a in ALPHAS {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: scale.oversub_threads,
                        key_range: scale.small_range,
                        update_percent: 5,
                        zipf_alpha: a,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5g");
    }
    if run("h") {
        let mut r = Report::new("fig5h_size_sweep_oversub");
        let sizes: Vec<u64> = if std::env::args().any(|a| a == "--paper") {
            vec![10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
        } else {
            vec![1_000, 10_000, 100_000, 1_000_000]
        };
        for range in sizes {
            for s in tree_series() {
                r.push(run_point(
                    s,
                    &Config {
                        threads: scale.oversub_threads,
                        key_range: range,
                        update_percent: 5,
                        ..base_cfg.clone()
                    },
                ));
            }
        }
        r.write().expect("write fig5h");
    }
}
