//! Run the full reproduction: every figure plus the ablations, writing
//! `results/*.csv`. Pass `--paper` for the paper-scale parameters.
//!
//! This is a thin orchestrator: each figure also exists as its own binary
//! (`fig4`, `fig5`, `fig6`, `fig7`, `ablate`) for selective reruns.

use std::process::Command;

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in ["fig4", "fig5", "fig6", "fig7", "ablate"] {
        println!("===== running {bin} =====");
        let status = Command::new(exe_dir.join(bin))
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!("===== done; see results/*.csv =====");
}
