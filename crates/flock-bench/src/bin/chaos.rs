//! `chaos` — the fault-injection runner: CI-checked progress under stalled
//! threads, panic-storm survival, epoch degradation under a forever-pinned
//! thread, and oversubscription churn.
//!
//! Requires the `chaos` feature (which swaps the protocol seam probes from
//! no-ops to policy dispatch — this binary must **never** share a build
//! with the perf trajectory):
//!
//! ```sh
//! cargo run --release -p flock-bench --features chaos --bin chaos -- \
//!     --seed 7 [--merge-into BENCH_6.json]
//! ```
//!
//! Four arms, every one a hard assertion (nonzero exit on violation; the
//! seed is printed first so any failure is replayable):
//!
//! 1. **Stall/progress** — K=2 victim threads run a native `update` of a
//!    pre-inserted key and are parked *inside their critical sections*
//!    ([`Seam::InThunk`]) — an update of a present key cannot return
//!    through an outside-the-lock read path, so a parked victim provably
//!    crossed the seam mid-thunk — and never released during the
//!    measurement window. Every Flock structure in lock-free mode must keep
//!    completing operations (a four-way insert/get/update/remove mix) on
//!    the very keys the victims hold (helpers finish the stalled thunks
//!    from their committed descriptors). The same
//!    structures in blocking mode, with the victim parked holding the TTAS
//!    word ([`Seam::BlockingCritical`]), must demonstrably stall — the
//!    documented inversion. Both sides are recorded as `-stall` throughput
//!    series, mergeable into the committed `BENCH_<pr>.json`.
//! 2. **Panic storm** — a saboteur thread's seam crossings inject panics
//!    mid-thunk while workers hammer the same structure. Every injected
//!    panic must surface as exactly one observed panic (the saboteur's own
//!    unwind, or the owner's "critical section panicked during helped
//!    execution" report), and the structure must stay fully usable.
//! 3. **Epoch degradation** — a thread is parked while pinned
//!    ([`Seam::EpochPinned`]) and a retire-heavy workload runs against it.
//!    `epoch_stats()` must report the stuck reservation and the growing
//!    retire bags; growth stays bounded by what was actually retired, and
//!    reclaim resumes once the pin is released.
//! 4. **Churn** — repeated spawn/join batches under load must reclaim
//!    thread ids (high-water mark stays one batch wide, not rounds×batch).
//! 5. **FIFO convoy** — a strict-lock waiter under FIFO admission is parked
//!    *forever* right after publishing its arrival slot
//!    ([`Seam::FifoArrived`]): the convoy hazard of any queue-based lock.
//!    Survivors hammering the same lock must keep completing operations
//!    (recorded as a `-stall` series), the parked waiter's critical section
//!    must run exactly once while it is still parked (a releasing owner or
//!    a deferring younger waiter installs its published descriptor and
//!    helpers finish it), and its done slot must be skipped — never
//!    convoyed behind. This is the lock-free progress property the FIFO
//!    policy is not allowed to trade away for fairness.

use std::sync::Arc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use flock_api::Map;
use flock_bench::bench_json::{BenchReport, ThroughputSample};
use flock_bench::make_map;
use flock_chaos::{
    ChaosPolicy, Composite, PanicPolicy, Seam, StallPolicy, churn, clear_chaos_policy,
    set_chaos_policy,
};
use flock_core::{Admission, Lock, LockMode, Mutable};

/// Every Flock registry structure (the lock-free-capable side of the
/// registry; baselines bring their own locks and never cross a seam).
const FLOCK_STRUCTURES: [&str; 8] = [
    "dlist",
    "lazylist",
    "hashtable",
    "leaftree",
    "leaftree-strict",
    "leaftreap",
    "abtree",
    "arttree",
];

/// Structures demonstrating the blocking-mode stall inversion (one per
/// structure class; running all eight would only repeat the same 2-second
/// dead window).
const BLOCKING_INVERSION: [&str; 3] = ["hashtable", "abtree", "leaftree"];

/// Keys the victims stall while holding; workers hammer exactly these.
const HOT: [u64; 2] = [3, 11];
/// Permanently stalled victims per structure (the ISSUE's K).
const K_VICTIMS: usize = 2;
/// Worker threads competing with the stalled victims.
const WORKERS: usize = 2;
/// Measurement window per structure.
const WINDOW: Duration = Duration::from_millis(400);
/// Lock-free progress floor: completed ops in the window, all on keys a
/// victim holds. Hundreds per second is "alive"; a helped path does tens of
/// thousands — the floor catches livelock, not slowness.
const MIN_LF_OPS: u64 = 100;
/// Blocking stall ceiling: ops the blocking side may sneak in before the
/// victim parks. Must sit far under `MIN_LF_OPS` for the inversion to mean
/// anything.
const MAX_BL_OPS: u64 = 20;
/// Panics injected by the storm arm.
const INJECTIONS: usize = 25;

/// Is this caught payload one of the two panics the storm can legitimately
/// produce — the injection itself, or the owner-side report of a helped
/// critical section that panicked? Anything else is protocol state leaking
/// out as an unexpected panic.
fn expected_storm_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied());
    msg.is_some_and(|m| {
        m.contains(flock_chaos::INJECTED_PANIC)
            || m.contains("critical section panicked during helped execution")
    })
}

struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Park victims at `seam` mid-critical-section, run workers against the
/// held keys for `window`, return (completed ops, victims seen parked).
fn stalled_window(
    map: &dyn Map<u64, u64>,
    seam: Seam,
    window: Duration,
    seed: u64,
) -> (u64, usize) {
    // Pre-insert the hot keys (before any policy is armed) so the victim op
    // below is a native `update` of a *present* key: an update must run its
    // read-modify-write inside the owning lock's critical section, so a
    // victim that parks did so provably at the seam inside a thunk — it
    // cannot have completed through an outside-the-lock read path the way
    // an insert-of-present-key can. (The EXPERIMENTS.md §8 caveat, closed.)
    for &hot in &HOT {
        map.insert(hot, hot);
    }
    let stall = StallPolicy::new(seam);
    set_chaos_policy(stall.clone());
    let completed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut parked_seen = 0;
    std::thread::scope(|s| {
        for k in 0..K_VICTIMS {
            let stall = Arc::clone(&stall);
            let hot = HOT[k % HOT.len()];
            s.spawn(move || {
                stall.arm_current();
                // Sentinel fits the 48-bit inline value payload.
                let _ = map.update(hot, (1 << 47) - 1);
            });
        }
        // In blocking mode the second victim can block on the first's lock
        // before reaching its own critical section (same leaf / bucket), so
        // ≥1 parked is the requirement; lock-free mode reliably parks both
        // (an armed victim stalls even if its first crossing is a help).
        stall.wait_parked(K_VICTIMS, Duration::from_secs(2));
        parked_seen = stall.parked_count();
        for w in 0..WORKERS {
            let (completed, stop) = (&completed, &stop);
            let mut rng = Xorshift::new(seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let r = rng.next();
                    let key = HOT[(r as usize) % HOT.len()];
                    // Four-way mix including native `update`: helpers must
                    // complete stalled update thunks too, not just
                    // insert/remove descriptors.
                    match r % 4 {
                        0 => {
                            map.insert(key, r & ((1 << 47) - 1));
                        }
                        1 => {
                            map.get(key);
                        }
                        2 => {
                            let _ = map.update(key, r & ((1 << 47) - 1));
                        }
                        _ => {
                            map.remove(key);
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Release);
        // Only now do the victims (and any worker wedged behind a blocking
        // victim) get to finish and observe `stop`.
        stall.release_all();
    });
    clear_chaos_policy();
    (completed.load(Ordering::Relaxed), parked_seen)
}

/// Arm 1: lock-free progress under K stalled victims; blocking inversion.
fn stall_arm(seed: u64) -> Vec<ThroughputSample> {
    let mut samples = Vec::new();
    println!("== stall arm: {K_VICTIMS} victims parked mid-critical-section ==");
    for structure in FLOCK_STRUCTURES {
        flock_core::set_lock_mode(LockMode::LockFree);
        let map = make_map(structure, 1024);
        let (ops, parked) = stalled_window(&*map, Seam::InThunk, WINDOW, seed);
        drop(map);
        flock_epoch::flush_all();
        let mops = ops as f64 / WINDOW.as_secs_f64() / 1e6;
        println!(
            "{structure:<16}-lf  parked={parked}  {ops:>8} ops in {WINDOW:?}  ({mops:.4} Mop/s)"
        );
        assert!(
            parked >= K_VICTIMS,
            "{structure}: only {parked}/{K_VICTIMS} victims parked (seed {seed})"
        );
        assert!(
            ops >= MIN_LF_OPS,
            "{structure}: lock-free mode must make progress past stalled victims — \
             {ops} ops < {MIN_LF_OPS} (seed {seed})"
        );
        samples.push(ThroughputSample {
            series: format!("{structure}-lf-stall"),
            threads: WORKERS,
            mops,
        });
    }
    for structure in BLOCKING_INVERSION {
        flock_core::set_lock_mode(LockMode::Blocking);
        let map = make_map(structure, 1024);
        let (ops, parked) = stalled_window(&*map, Seam::BlockingCritical, WINDOW, seed);
        drop(map);
        flock_epoch::flush_all();
        flock_core::set_lock_mode(LockMode::LockFree);
        let mops = ops as f64 / WINDOW.as_secs_f64() / 1e6;
        println!(
            "{structure:<16}-bl  parked={parked}  {ops:>8} ops in {WINDOW:?}  ({mops:.4} Mop/s)"
        );
        assert!(
            parked >= 1,
            "{structure}-bl: no victim parked in the critical section (seed {seed})"
        );
        assert!(
            ops <= MAX_BL_OPS,
            "{structure}-bl: blocking mode was expected to stall behind the parked \
             lock holder, but completed {ops} ops (seed {seed})"
        );
        samples.push(ThroughputSample {
            series: format!("{structure}-bl-stall"),
            threads: WORKERS,
            mops,
        });
    }
    samples
}

/// Arm 2: panic storm — every injected panic surfaces exactly once, the
/// structure survives.
fn panic_arm(seed: u64) {
    println!("== panic arm: {INJECTIONS} panics injected mid-thunk ==");
    flock_core::set_lock_mode(LockMode::LockFree);
    let inject = PanicPolicy::new(Seam::InThunk, INJECTIONS);
    set_chaos_policy(Arc::new(Composite(vec![
        Arc::clone(&inject) as Arc<dyn ChaosPolicy>
    ])));
    let map = make_map("hashtable", 1024);
    let observed = AtomicU64::new(0);
    let unexpected = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Saboteur: armed, so its thunk runs — own ops, replays, and help
        // runs alike — eat the injected panics. The op mix alternates
        // insert/remove so key presence toggles: an insert of an
        // already-present key returns through the outside-the-lock check
        // without ever crossing a seam, so an insert-only storm goes quiet
        // the moment its keys are all present.
        {
            let (map, inject, observed, unexpected, stop) =
                (&*map, &inject, &observed, &unexpected, &stop);
            let mut rng = Xorshift::new(seed ^ 0xDEAD_BEEF);
            s.spawn(move || {
                inject.arm_current();
                while !stop.load(Ordering::Acquire) {
                    let r = rng.next();
                    let key = HOT[(r as usize) % HOT.len()];
                    if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if r.is_multiple_of(2) {
                            map.insert(key, r);
                        } else {
                            map.remove(key);
                        }
                    })) {
                        observed.fetch_add(1, Ordering::Relaxed);
                        if !expected_storm_panic(&*p) {
                            unexpected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Workers: unarmed — but when the saboteur's panic lands in a help
        // run of *their* descriptor, the contract panic surfaces here.
        for w in 0..WORKERS {
            let (map, observed, unexpected, completed, stop) =
                (&*map, &observed, &unexpected, &completed, &stop);
            let mut rng = Xorshift::new(seed ^ (0xC0FFEE + w as u64));
            s.spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let r = rng.next();
                    let key = HOT[(r as usize) % HOT.len()];
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if r.is_multiple_of(3) {
                            map.remove(key);
                        } else {
                            map.insert(key, r);
                        }
                    })) {
                        Err(p) => {
                            observed.fetch_add(1, Ordering::Relaxed);
                            if !expected_storm_panic(&*p) {
                                unexpected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(()) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let t0 = Instant::now();
        let mut timed_out = false;
        while inject.remaining() > 0 {
            if t0.elapsed() > Duration::from_secs(30) {
                timed_out = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        // Stop the workers *before* any assertion: a panic while they still
        // spin would leave the scope join waiting forever.
        stop.store(true, Ordering::Release);
        assert!(
            !timed_out,
            "panic arm: only {}/{INJECTIONS} injections fired in 30s (seed {seed})",
            INJECTIONS - inject.remaining()
        );
    });
    clear_chaos_policy();
    let observed = observed.load(Ordering::Relaxed);
    let unexpected = unexpected.load(Ordering::Relaxed);
    let completed = completed.load(Ordering::Relaxed);
    println!(
        "injected {INJECTIONS}, observed {observed} panics ({unexpected} unexpected); \
         {completed} worker ops completed"
    );
    // At-most-once, never invented: each observed panic is one of the two
    // expected kinds, and there are no more observations than injections.
    // Equality does NOT hold in general — an injection landing in a help
    // run of an operation whose owner already completed and returned is
    // swallowed by the helper's recovery (the panic aborted only a
    // redundant replay), so it surfaces nowhere.
    assert_eq!(
        unexpected, 0,
        "unexpected panic kinds escaped (seed {seed})"
    );
    assert!(
        observed as usize <= INJECTIONS,
        "more panics observed ({observed}) than injected ({INJECTIONS}) (seed {seed})"
    );
    assert!(
        observed >= 1,
        "no injected panic was ever observed (seed {seed})"
    );
    assert!(completed > 0, "workers made no progress through the storm");
    // The structure (and its locks) came through unpoisoned (the remove
    // first: the storm may have left the key present, and `insert` of a
    // present key reports `false` by contract).
    let _ = map.remove(HOT[0]);
    assert!(map.insert(HOT[0], 1), "map unusable after the panic storm");
    assert_eq!(map.get(HOT[0]), Some(1));
    drop(map);
    flock_epoch::flush_all();
}

/// Arm 3: epoch degradation under a forever-pinned thread.
fn epoch_arm(seed: u64) {
    println!("== epoch arm: retire-heavy load against a stuck reservation ==");
    flock_core::set_lock_mode(LockMode::LockFree);
    let stall = StallPolicy::new(Seam::EpochPinned);
    set_chaos_policy(Arc::clone(&stall) as Arc<dyn ChaosPolicy>);
    let map = make_map("hashtable", 4096);
    let mut peak_bag = 0usize;
    let mut max_age = 0u64;
    let mut saw_pinned = false;
    std::thread::scope(|s| {
        {
            let stall = Arc::clone(&stall);
            s.spawn(move || {
                stall.arm_current();
                // Parks inside pin_with, reservation published: the
                // forever-pinned thread of the ISSUE.
                drop(flock_epoch::pin());
            });
        }
        let parked = stall.wait_parked(1, Duration::from_secs(5));
        if !parked {
            // Release before asserting so the scope join cannot hang on a
            // late-arriving pinner.
            stall.release_all();
        }
        assert!(parked, "pinner never parked at EpochPinned (seed {seed})");
        // Retire-heavy: every insert over an existing key displaces (and
        // epoch-retires) a node; removes retire too. The stuck reservation
        // must not stop any of it from *completing* — only from being freed.
        let mut rng = Xorshift::new(seed ^ 0x5EED);
        for i in 0..20_000u64 {
            let key = rng.next() % 512;
            if i.is_multiple_of(3) {
                map.remove(key);
            } else {
                map.insert(key, i);
            }
            if i % 1024 == 0 {
                let st = flock_api::epoch_stats();
                saw_pinned |= st.pinned_threads >= 1;
                peak_bag = peak_bag.max(st.retire_bag_bytes);
                max_age = max_age.max(st.oldest_reservation_age);
            }
        }
        stall.release_all();
    });
    clear_chaos_policy();
    drop(map);
    flock_epoch::flush_all();
    let post = flock_api::epoch_stats();
    println!(
        "peak retire bags {peak_bag} B, oldest reservation age {max_age} epochs; \
         after release + flush: {} B",
        post.retire_bag_bytes
    );
    assert!(
        saw_pinned,
        "epoch_stats never reported the stuck pinner (seed {seed})"
    );
    assert!(
        peak_bag > 0,
        "retire-heavy load produced no reported bag growth"
    );
    assert!(
        max_age >= 1,
        "oldest_reservation_age never aged under a stuck pin (seed {seed})"
    );
    // Bounded: bags hold at most what the workload retired (64 MiB is two
    // orders of magnitude above this workload's worst case).
    assert!(
        peak_bag < 64 << 20,
        "retire bags grew unboundedly: {peak_bag} B (seed {seed})"
    );
    assert!(
        post.retire_bag_bytes < peak_bag,
        "reclaim did not resume after the pin was released (seed {seed})"
    );
}

/// Arm 4: oversubscription churn reclaims thread ids.
fn churn_arm(seed: u64) {
    println!("== churn arm: spawn/join batches under load ==");
    flock_core::set_lock_mode(LockMode::LockFree);
    let map = make_map("leaftree", 1024);
    const ROUNDS: usize = 10;
    const BATCH: usize = 8;
    let before = flock_sync::tid::high_water_mark();
    let hwm = churn(ROUNDS, BATCH, |i| {
        let mut rng = Xorshift::new(seed ^ (i as u64 + 1));
        for _ in 0..200 {
            let r = rng.next();
            let key = r % 128;
            match r % 3 {
                0 => {
                    map.insert(key, r);
                }
                1 => {
                    map.get(key);
                }
                _ => {
                    map.remove(key);
                }
            }
        }
    });
    drop(map);
    flock_epoch::flush_all();
    println!("tid high-water {hwm} (was {before}) after {ROUNDS} rounds x {BATCH} workers");
    assert!(
        hwm <= before + BATCH,
        "thread ids not reclaimed across churn: high-water {hwm}, was {before}, \
         batch {BATCH} (seed {seed})"
    );
}

/// Arm 5: FIFO convoy — a strict-lock waiter parked forever at its
/// published arrival ([`Seam::FifoArrived`]) must not stall the queue.
///
/// The victim publishes its wait slot and freezes before ever entering the
/// wait loop, so it holds the oldest ticket for the whole window without
/// being able to install, help, or retract anything itself. Every survivor's
/// admission scan therefore finds it first: the only way forward is the
/// protocol's own — a deferring younger waiter proxy-installs the victim's
/// published descriptor, helpers run its thunk to done, and from then on
/// the done slot is skipped by `candidate_eligible`. Three assertions:
///
/// * survivors clear a throughput floor (lock-free progress, the property
///   FIFO admission is not allowed to trade for fairness);
/// * the victim's critical section executes exactly once *while the victim
///   is still parked* (counter bookkeeping: shared counter == survivor ops
///   + 1 before the victim is ever released);
/// * releasing the victim afterwards changes nothing — it finds its
///   descriptor done and departs without re-running (still exactly once),
///   and the lock is left unheld and usable.
fn fifo_stall_arm(seed: u64) -> ThroughputSample {
    println!("== fifo stall arm: waiter parked forever at its published arrival ==");
    flock_core::set_lock_mode(LockMode::LockFree);
    let stall = StallPolicy::new(Seam::FifoArrived);
    set_chaos_policy(stall.clone());
    let lock = Arc::new(Lock::new_with(Admission::Fifo));
    let counter = Arc::new(Mutable::new(0u64));
    let survivor_ops = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut parked = false;
    let mut survivors = 0u64;
    let mut while_parked = 0u64;
    std::thread::scope(|s| {
        {
            let (stall, lock, counter) =
                (Arc::clone(&stall), Arc::clone(&lock), Arc::clone(&counter));
            s.spawn(move || {
                stall.arm_current();
                let c = Arc::clone(&counter);
                lock.lock(move || c.store(c.load() + 1));
            });
        }
        parked = stall.wait_parked(1, Duration::from_secs(2));
        if !parked {
            // Unblock a late-arriving victim before the assert below so the
            // scope join cannot hang on it.
            stall.release_all();
        }
        let mut workers = Vec::new();
        if parked {
            for _ in 0..WORKERS {
                let (lock, counter) = (Arc::clone(&lock), Arc::clone(&counter));
                let (survivor_ops, stop) = (&survivor_ops, &stop);
                workers.push(s.spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let c = Arc::clone(&counter);
                        lock.lock(move || c.store(c.load() + 1));
                        survivor_ops.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            std::thread::sleep(WINDOW);
            stop.store(true, Ordering::Release);
        }
        for w in workers {
            let _ = w.join();
        }
        // Workers are fully drained and the victim is still parked: snapshot
        // the exactly-once evidence, *then* release (asserting first could
        // hang the scope join on the parked victim).
        survivors = survivor_ops.load(Ordering::Relaxed);
        while_parked = counter.load();
        stall.release_all();
    });
    clear_chaos_policy();
    assert!(
        parked,
        "FIFO waiter never parked at its published arrival (seed {seed})"
    );
    let mops = survivors as f64 / WINDOW.as_secs_f64() / 1e6;
    println!(
        "locked-fifo       parked=1  {survivors:>8} survivor ops in {WINDOW:?}  ({mops:.4} Mop/s)"
    );
    assert!(
        survivors >= MIN_LF_OPS,
        "survivors must make progress past the parked FIFO waiter — \
         {survivors} ops < {MIN_LF_OPS} (seed {seed})"
    );
    assert_eq!(
        while_parked,
        survivors + 1,
        "parked waiter's critical section not applied exactly once while it \
         was still parked (seed {seed})"
    );
    assert_eq!(
        counter.load(),
        survivors + 1,
        "releasing the parked waiter re-applied its critical section (seed {seed})"
    );
    assert!(
        !lock.is_locked(),
        "lock left held after the parked waiter departed (seed {seed})"
    );
    assert_eq!(
        lock.try_lock(|| 7u32),
        Some(7),
        "lock unusable after the FIFO stall window (seed {seed})"
    );
    ThroughputSample {
        series: "locked-fifo-stall".into(),
        threads: WORKERS,
        mops,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = value("--seed").map_or(7, |s| s.parse().expect("--seed takes a u64"));
    // Printed before any arm runs: a failing run is replayable from its log.
    println!("chaos runner: seed {seed} (replay with --seed {seed})");

    let t0 = Instant::now();
    let mut samples = stall_arm(seed);
    panic_arm(seed);
    epoch_arm(seed);
    churn_arm(seed);
    samples.push(fifo_stall_arm(seed));

    if let Some(path) = value("--merge-into") {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read --merge-into {path}: {e}"));
        let mut report = BenchReport::parse_json(&text);
        report.throughput.retain(|t| !t.series.ends_with("-stall"));
        report.throughput.extend(samples);
        std::fs::write(&path, report.to_json()).expect("write --merge-into file");
        println!("merged -stall series into {path}");
    }

    println!(
        "chaos runner: all arms passed in {:.1}s (seed {seed})",
        t0.elapsed().as_secs_f64()
    );
}
