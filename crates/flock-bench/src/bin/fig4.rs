//! Figure 4: try-lock vs strict lock on `leaftree`.
//!
//! Paper workload: 100K keys, 144 threads, 50% updates, zipfian α sweep
//! {0, 0.75, 0.9, 0.99}; four series — trylock/strictlock × blocking/
//! lock-free. Expected shape: try-lock ≥ strict lock everywhere, the gap
//! growing with α, in both modes.

use flock_bench::{ALPHAS, Report, Scale, Series, run_point};
use flock_workload::Config;

fn main() {
    let scale = Scale::from_args();
    let mut report = Report::new("fig4_try_vs_strict");
    let series = [
        Series::bl("leaftree"),
        Series::lf("leaftree"),
        Series::bl("leaftree-strict"),
        Series::lf("leaftree-strict"),
    ];
    for alpha in ALPHAS {
        for s in series {
            let cfg = Config {
                threads: scale.full_threads,
                key_range: scale.small_range,
                update_percent: 50,
                zipf_alpha: alpha,
                run_duration: scale.duration,
                repeats: scale.repeats,
                sparsify_keys: false,
                seed: 4,
            };
            report.push(run_point(s, &cfg));
        }
    }
    report
        .write()
        .expect("write results/fig4_try_vs_strict.csv");
}
