//! Summarize `results/*.csv` into the qualitative checks EXPERIMENTS.md
//! records: lf/bl overhead without oversubscription, lf/bl advantage with
//! oversubscription, try vs strict, and the baseline comparisons.

use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Row {
    structure: String,
    threads: usize,
    key_range: u64,
    update_percent: u32,
    alpha: f64,
    mops: f64,
}

fn load(file: &str) -> Vec<Row> {
    let Ok(text) = std::fs::read_to_string(format!("results/{file}.csv")) else {
        return Vec::new();
    };
    text.lines()
        .skip(1)
        .filter_map(|l| {
            let f: Vec<&str> = l.split(',').collect();
            Some(Row {
                structure: f.first()?.to_string(),
                threads: f.get(1)?.parse().ok()?,
                key_range: f.get(2)?.parse().ok()?,
                update_percent: f.get(3)?.parse().ok()?,
                alpha: f.get(4)?.parse().ok()?,
                mops: f.get(5)?.parse().ok()?,
            })
        })
        .collect()
}

/// Geometric-mean ratio of `a` over `b` across matching configurations.
fn ratio(rows: &[Row], a: &str, b: &str, pred: impl Fn(&Row) -> bool) -> Option<f64> {
    let index = |name: &str| -> BTreeMap<(usize, u64, u32, u64), f64> {
        rows.iter()
            .filter(|r| r.structure == name && pred(r))
            .map(|r| {
                (
                    (r.threads, r.key_range, r.update_percent, r.alpha.to_bits()),
                    r.mops,
                )
            })
            .collect()
    };
    let (ia, ib) = (index(a), index(b));
    let mut log_sum = 0.0;
    let mut n = 0;
    for (k, va) in &ia {
        if let Some(vb) = ib.get(k)
            && *vb > 0.0
            && *va > 0.0
        {
            log_sum += (va / vb).ln();
            n += 1;
        }
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

fn show(label: &str, r: Option<f64>) {
    match r {
        Some(v) => println!("  {label}: {v:.2}x"),
        None => println!("  {label}: (no data)"),
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);

    println!("== Figure 4 (try vs strict, leaftree, small range, 50% upd) ==");
    let f4 = load("fig4_try_vs_strict");
    show(
        "trylock-bl / strictlock-bl (all alpha)",
        ratio(&f4, "leaftree-bl", "leaftree-strict-bl", |_| true),
    );
    show(
        "trylock-lf / strictlock-lf (all alpha)",
        ratio(&f4, "leaftree-lf", "leaftree-strict-lf", |_| true),
    );
    show(
        "trylock-bl / strictlock-bl (alpha=0.99)",
        ratio(&f4, "leaftree-bl", "leaftree-strict-bl", |r| r.alpha > 0.98),
    );

    println!("== Figure 5 (trees): lf vs bl ==");
    for (file, label) in [
        ("fig5a_large_thread_sweep", "5a large thread sweep"),
        ("fig5e_small_thread_sweep", "5e small thread sweep"),
    ] {
        let rows = load(file);
        show(
            &format!("{label}: lf/bl at <= cores"),
            ratio(&rows, "leaftree-lf", "leaftree-bl", |r| r.threads <= cores),
        );
        show(
            &format!("{label}: lf/bl oversubscribed"),
            ratio(&rows, "leaftree-lf", "leaftree-bl", |r| r.threads > cores),
        );
    }
    for (file, label) in [
        ("fig5d_large_zipf_oversub", "5d large oversub zipf"),
        ("fig5g_small_zipf_oversub", "5g small oversub zipf"),
        ("fig5h_size_sweep_oversub", "5h size sweep oversub"),
    ] {
        let rows = load(file);
        show(
            &format!("{label}: lf/bl"),
            ratio(&rows, "leaftree-lf", "leaftree-bl", |_| true),
        );
        show(
            &format!("{label}: lf vs bronson-style"),
            ratio(&rows, "leaftree-lf", "bronson_style_bst", |_| true),
        );
    }

    println!("== Figure 6 (other sets): lf vs bl, oversubscribed ==");
    let f6 = load("fig6b_sets_zipf_oversub");
    for s in ["arttree", "leaftreap", "hashtable", "abtree"] {
        show(
            &format!("{s}: lf/bl"),
            ratio(&f6, &format!("{s}-lf"), &format!("{s}-bl"), |_| true),
        );
    }
    show(
        "abtree-lf / srivastava_abtree",
        ratio(&f6, "abtree-lf", "srivastava_abtree", |_| true),
    );

    println!("== Figure 7 (lists) ==");
    let f7a = load("fig7a_list_size_sweep");
    show(
        "lazylist-lf / harris_list_opt",
        ratio(&f7a, "lazylist-lf", "harris_list_opt", |_| true),
    );
    show(
        "dlist-lf / lazylist-lf (back-pointer cost)",
        ratio(&f7a, "dlist-lf", "lazylist-lf", |_| true),
    );
    let f7b = load("fig7b_list_thread_sweep");
    show(
        "7b small list: lazylist lf/bl (all threads)",
        ratio(&f7b, "lazylist-lf", "lazylist-bl", |_| true),
    );

    println!("== Ablations (leaftree-lf, alpha=0.99) ==");
    let ab = load("ablations");
    show(
        "baseline / no-ccas",
        ratio(&ab, "leaftree-lf", "leaftree-lf[no-ccas]", |_| true),
    );
    show(
        "baseline / no-reuse",
        ratio(&ab, "leaftree-lf", "leaftree-lf[no-reuse]", |_| true),
    );
    show(
        "baseline / no-helping",
        ratio(&ab, "leaftree-lf", "leaftree-lf[no-helping]", |_| true),
    );
}
