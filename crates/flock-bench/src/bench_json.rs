//! JSON benchmark reports: the recorded perf trajectory (`BENCH_<pr>.json`).
//!
//! Every perf-relevant PR commits one `BENCH_<n>.json` at the repo root so
//! the trajectory of the hot paths is recorded, machine-readable, and
//! CI-checkable (the quick bench job fails on a >2x primitive regression
//! against the committed baseline). The schema is documented in
//! EXPERIMENTS.md; everything here is dependency-free — the writer emits
//! one entry per line, and the reader is a minimal scanner over exactly
//! that shape (it is a baseline checker, not a general JSON parser).

use std::time::{Duration, Instant};

/// Gate widening for `contended_*` cases (see
/// [`BenchReport::primitive_regressions`]): 2–3x single-run spreads were
/// measured for contended locks on the 2-core container, so their
/// regression gate is `factor * this` (2.0 → 4.0). Catches "contention made
/// an order of magnitude worse", not micro-deltas — the uncontended cases
/// keep the tight gate.
pub const CONTENDED_FACTOR_SCALE: f64 = 2.0;

/// Gate widening for `fat_value_*` cases (the indirect `ValueRepr` path):
/// every operation goes through the global allocator, whose run-to-run
/// variance (thread-cache state, madvise timing) is far above the
/// fence-level deltas the tight gate hunts. Widened like the contended
/// cases; also excluded from host-speed calibration (perf_trajectory).
pub const FAT_VALUE_FACTOR_SCALE: f64 = 2.0;

/// Gate widening for `update_*` cases (native vs composite `Map::update`):
/// the composite side allocates and epoch-retires a node per operation and
/// both sides traverse a structure, so their spread is allocator- and
/// cache-bound like the fat cases. Widened identically; also excluded from
/// host-speed calibration (perf_trajectory).
pub const UPDATE_FACTOR_SCALE: f64 = 2.0;

/// Gate widening for `pool_*` cases (the slab-pool primitives): the
/// alloc/retire cycle is reclamation-bound (its cost depends on where the
/// epoch floor happens to sit when the batch runs) and the cross-thread
/// case adds channel backpressure and a second scheduled thread. Widened
/// like the other allocator-bound families; also excluded from host-speed
/// calibration (perf_trajectory).
pub const POOL_FACTOR_SCALE: f64 = 2.0;

/// One primitive microbenchmark result (lower is better).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveSample {
    /// Case name, e.g. `uncontended_try_lock_lock_free`.
    pub name: String,
    /// Best observed nanoseconds per operation.
    pub ns_per_op: f64,
}

/// One multi-thread throughput result (higher is better).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSample {
    /// Series label, e.g. `hashtable-lf`.
    pub series: String,
    /// Worker thread count.
    pub threads: usize,
    /// Mean throughput in Mop/s.
    pub mops: f64,
}

/// One fairness measurement: the hot-lock admission workload (`fair-*`
/// series) at one thread count. Throughput plus the two per-thread-spread
/// numbers EXPERIMENTS.md §11 tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessSample {
    /// Series label, e.g. `fair-race`, `fair-fifo`.
    pub series: String,
    /// Worker thread count.
    pub threads: usize,
    /// Mean throughput in Mop/s.
    pub mops: f64,
    /// Max/min per-thread op-count ratio (1.0 = perfectly fair; a starved
    /// thread is reported as the max count itself, see
    /// `Measurement::max_min_ratio`).
    pub max_min_ratio: f64,
    /// Jain's fairness index `(Σx)²/(n·Σx²)` in `(0, 1]`.
    pub jain: f64,
}

/// A full benchmark report: primitives plus structure throughput.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Primitive suite results.
    pub primitives: Vec<PrimitiveSample>,
    /// Structure throughput results.
    pub throughput: Vec<ThroughputSample>,
    /// Hot-lock admission fairness results (empty before BENCH_9).
    pub fairness: Vec<FairnessSample>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl BenchReport {
    /// Serialize to the `flock-bench-v1` JSON shape (one entry per line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"flock-bench-v1\",\n");
        out.push_str(&format!(
            "  \"host_cores\": {},\n",
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(0)
        ));
        out.push_str("  \"primitives\": [\n");
        for (i, p) in self.primitives.iter().enumerate() {
            let comma = if i + 1 == self.primitives.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}}}{}\n",
                json_escape(&p.name),
                p.ns_per_op,
                comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"throughput\": [\n");
        for (i, t) in self.throughput.iter().enumerate() {
            let comma = if i + 1 == self.throughput.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"series\": \"{}\", \"threads\": {}, \"mops\": {:.4}}}{}\n",
                json_escape(&t.series),
                t.threads,
                t.mops,
                comma
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"fairness\": [\n");
        for (i, f) in self.fairness.iter().enumerate() {
            let comma = if i + 1 == self.fairness.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"series\": \"{}\", \"threads\": {}, \"mops\": {:.4}, \"max_min_ratio\": {:.4}, \"jain\": {:.4}}}{}\n",
                json_escape(&f.series),
                f.threads,
                f.mops,
                f.max_min_ratio,
                f.jain,
                comma
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a report previously written by [`BenchReport::to_json`].
    ///
    /// Scans for the one-object-per-line entries the writer emits; unknown
    /// lines are ignored, so the format can grow fields without breaking
    /// older checkers.
    pub fn parse_json(text: &str) -> Self {
        let mut report = BenchReport::default();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            if let (Some(name), Some(ns)) =
                (extract_str(line, "name"), extract_num(line, "ns_per_op"))
            {
                report.primitives.push(PrimitiveSample {
                    name,
                    ns_per_op: ns,
                });
            } else if let (Some(series), Some(threads), Some(mops), Some(ratio), Some(jain)) = (
                extract_str(line, "series"),
                extract_num(line, "threads"),
                extract_num(line, "mops"),
                extract_num(line, "max_min_ratio"),
                extract_num(line, "jain"),
            ) {
                // Must be tried before the throughput shape: fairness lines
                // are a superset of it.
                report.fairness.push(FairnessSample {
                    series,
                    threads: threads as usize,
                    mops,
                    max_min_ratio: ratio,
                    jain,
                });
            } else if let (Some(series), Some(threads), Some(mops)) = (
                extract_str(line, "series"),
                extract_num(line, "threads"),
                extract_num(line, "mops"),
            ) {
                report.throughput.push(ThroughputSample {
                    series,
                    threads: threads as usize,
                    mops,
                });
            }
        }
        report
    }

    /// Compare this (new) report's primitives against `baseline`, returning
    /// every case whose ns/op regressed by more than its gate factor —
    /// `factor` (e.g. 2.0) for uncontended cases, widened by
    /// [`CONTENDED_FACTOR_SCALE`] for `contended_*` cases, whose run-to-run
    /// spread on small oversubscribed runners exceeds a 2x gate even with
    /// best-of-window measurement (the host-speed calibration cannot absorb
    /// case-specific scheduler noise).
    ///
    /// Cases present in only one report are skipped: the suite may grow.
    pub fn primitive_regressions(&self, baseline: &BenchReport, factor: f64) -> Vec<String> {
        let mut bad = Vec::new();
        for new in &self.primitives {
            if let Some(old) = baseline.primitives.iter().find(|p| p.name == new.name) {
                let case_factor = if new.name.starts_with("contended_") {
                    factor * CONTENDED_FACTOR_SCALE
                } else if new.name.starts_with("fat_value_") {
                    factor * FAT_VALUE_FACTOR_SCALE
                } else if new.name.starts_with("update_") {
                    factor * UPDATE_FACTOR_SCALE
                } else if new.name.starts_with("pool_") {
                    factor * POOL_FACTOR_SCALE
                } else {
                    factor
                };
                // Guard tiny denominators: sub-ns cases are noise-dominated.
                let floor = old.ns_per_op.max(1.0);
                if new.ns_per_op > floor * case_factor {
                    bad.push(format!(
                        "{}: {:.1} ns/op vs baseline {:.1} ns/op (>{:.1}x)",
                        new.name, new.ns_per_op, old.ns_per_op, case_factor
                    ));
                }
            }
        }
        bad
    }
}

/// Extract `"key": "value"` from a single-line JSON object.
fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract `"key": <number>` from a single-line JSON object.
fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Run `op` in batches for ~`budget`, returning the best (lowest) ns/op —
/// the usual defense against scheduler noise.
pub fn measure_best(budget: Duration, mut op: impl FnMut()) -> f64 {
    const BATCH: u32 = 10_000;
    for _ in 0..BATCH {
        op(); // warm-up batch
    }
    let mut best = f64::INFINITY;
    let t0 = Instant::now();
    while t0.elapsed() < budget {
        let b0 = Instant::now();
        for _ in 0..BATCH {
            op();
        }
        let ns = b0.elapsed().as_nanos() as f64 / BATCH as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// Contended measurement: `threads` workers hammer `op` (with their worker
/// index); returns wall-clock nanoseconds per completed operation across
/// all workers (lower is better — a saturated single lock approaches
/// serial cost plus contention overhead). Best of three rounds, matching
/// the rest of the suite: contended runs are scheduler-noise-dominated
/// (spreads of 2–3x per single window were observed on the 2-core
/// container), and the fastest window is the reproducible one.
pub fn measure_contended(budget: Duration, threads: usize, op: impl Fn(usize) + Sync) -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    const ROUNDS: u32 = 3;
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let stop = AtomicBool::new(false);
        let total = AtomicU64::new(0);
        let start = std::sync::Barrier::new(threads + 1);
        let elapsed = std::thread::scope(|s| {
            for t in 0..threads {
                let (op, stop, total, start) = (&op, &stop, &total, &start);
                s.spawn(move || {
                    start.wait();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            op(t);
                        }
                        n += 64;
                    }
                    total.fetch_add(n, Ordering::Relaxed);
                });
            }
            start.wait();
            let t0 = Instant::now();
            std::thread::sleep(budget / ROUNDS);
            stop.store(true, Ordering::Relaxed);
            t0.elapsed()
        });
        let ns = elapsed.as_nanos() as f64
            / total.load(std::sync::atomic::Ordering::Relaxed).max(1) as f64;
        if ns < best {
            best = ns;
        }
    }
    best
}

/// The primitive microbenchmark suite, shared by `cargo bench -p
/// flock-bench` and the `perf_trajectory` binary so both report identical
/// cases. Prints each case as it completes and returns all samples.
pub fn run_primitive_suite(budget: Duration) -> Vec<PrimitiveSample> {
    use flock_core::{Lock, LockMode, Mutable, set_lock_mode};
    use std::hint::black_box;
    use std::sync::Arc;

    let mut samples = Vec::new();
    let mut case = |name: &str, ns: f64| {
        println!("{name:<36} {ns:>10.1} ns/op");
        samples.push(PrimitiveSample {
            name: name.to_string(),
            ns_per_op: ns,
        });
    };

    set_lock_mode(LockMode::LockFree);
    let m = Mutable::new(0u64);
    case(
        "mutable_load_top_level",
        measure_best(budget, || {
            black_box(m.load());
        }),
    );
    let mut i = 0u64;
    case(
        "mutable_store_top_level",
        measure_best(budget, || {
            i = (i + 1) & 0xFFFF_FFFF;
            m.store(black_box(i));
        }),
    );

    for (label, mode) in [
        ("lock_free", LockMode::LockFree),
        ("blocking", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        let l = Arc::new(Lock::new());
        let v = Arc::new(Mutable::new(0u64));
        case(
            &format!("uncontended_try_lock_{label}"),
            measure_best(budget, || {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || v2.store(v2.load() + 1)));
            }),
        );
    }
    set_lock_mode(LockMode::LockFree);

    // In-thunk store cost: one thunk doing 1 store vs 33 stores; the
    // difference isolates 32 idempotent stores (log commit + tag scan +
    // announce + CAS) from the fixed try_lock machinery around them. The
    // wide spread keeps the derived per-store number out of the noise of
    // the two absolute measurements.
    {
        let l = Arc::new(Lock::new());
        let v = Arc::new(Mutable::new(0u64));
        let one = {
            let v = Arc::clone(&v);
            measure_best(budget, || {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || v2.store(v2.load() + 1)));
            })
        };
        let many = {
            let v = Arc::clone(&v);
            measure_best(budget, || {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || {
                    for _ in 0..33 {
                        v2.store(v2.load() + 1);
                    }
                }));
            })
        };
        case("mutable_store_in_thunk", ((many - one) / 32.0).max(0.0));
    }

    // Fat-value (indirect ValueRepr) primitives: what the representation
    // layer costs when the value does NOT fit 48 bits — encode allocates a
    // box, stores epoch-retire the displaced one, loads clone out of the
    // live one. The matching inline cases above are the "pays nothing"
    // baseline the trajectory keeps honest.
    {
        use flock_epoch::Indirect;
        type Fat = Indirect<[u64; 4]>;
        let m: Mutable<Fat> = Mutable::new(Indirect([0; 4]));
        {
            // Indirect loads decode under an epoch guard.
            let _g = flock_epoch::pin();
            case(
                "fat_value_load_top_level",
                measure_best(budget, || {
                    black_box(m.load());
                }),
            );
        }
        let mut i = 0u64;
        case(
            "fat_value_store_top_level",
            measure_best(budget, || {
                i = i.wrapping_add(1);
                m.store(black_box(Indirect([i, i ^ 7, !i, i << 1])));
            }),
        );
        // In-thunk fat store, isolated with the same 1-vs-33 derivation as
        // mutable_store_in_thunk: this is the full idempotent
        // allocate → commit → CAS → retire pipeline per store.
        let l = Arc::new(Lock::new());
        let v: Arc<Mutable<Fat>> = Arc::new(Mutable::new(Indirect([0; 4])));
        let one = {
            let v = Arc::clone(&v);
            measure_best(budget, || {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || {
                    let cur = v2.load();
                    v2.store(Indirect([cur.0[0].wrapping_add(1), 0, 0, 0]));
                }));
            })
        };
        let many = {
            let v = Arc::clone(&v);
            measure_best(budget, || {
                let v2 = Arc::clone(&v);
                black_box(l.try_lock(move || {
                    for _ in 0..33 {
                        let cur = v2.load();
                        v2.store(Indirect([cur.0[0].wrapping_add(1), 0, 0, 0]));
                    }
                }));
            })
        };
        case("fat_value_store_in_thunk", ((many - one) / 32.0).max(0.0));
        flock_epoch::flush_all();
    }

    let outer = Arc::new(Lock::new());
    let inner = Arc::new(Lock::new());
    case(
        "nested_try_lock_lock_free",
        measure_best(budget, || {
            let i = Arc::clone(&inner);
            black_box(outer.try_lock(move || i.try_lock(|| true)));
        }),
    );

    case(
        "epoch_pin_unpin",
        measure_best(budget, || {
            let g = flock_epoch::pin();
            black_box(g.epoch());
        }),
    );

    // Contended lock paths (ROADMAP: the trajectory should cover contention,
    // not just uncontended ops): N threads hammer ONE lock. 2 threads =
    // handoff/helping cost with a core each; 8 threads oversubscribes the
    // usual CI container, so descheduled holders and helping are exercised.
    // try_lock counts failed attempts as work too (that is the real cost
    // profile of optimistic retry loops); lock() measures full acquire.
    for (label, mode) in [
        ("lock_free", LockMode::LockFree),
        ("blocking", LockMode::Blocking),
    ] {
        set_lock_mode(mode);
        for threads in [2usize, 8] {
            let l = Arc::new(Lock::new());
            let v = Arc::new(Mutable::new(0u64));
            case(
                &format!("contended_try_lock_{label}_{threads}t"),
                measure_contended(budget, threads, |_| {
                    let v2 = Arc::clone(&v);
                    black_box(l.try_lock(move || v2.store(v2.load() + 1)));
                }),
            );
        }
        for threads in [2usize, 8] {
            let l = Arc::new(Lock::new());
            let v = Arc::new(Mutable::new(0u64));
            case(
                &format!("contended_lock_{label}_{threads}t"),
                measure_contended(budget, threads, |_| {
                    let v2 = Arc::clone(&v);
                    l.lock(move || v2.store(v2.load() + 1));
                }),
            );
        }
    }
    set_lock_mode(LockMode::LockFree);

    // Native vs composite Map::update (ISSUE 5): the atomic in-place slot
    // store priced against the remove+insert fallback it replaced, single-
    // threaded over a prefilled structure — one flat (hashtable) and one
    // tree (abtree) representative, plus the fat (indirect) native case
    // whose slot RMW runs the full allocate→commit→CAS→retire pipeline.
    // `update_*` cases carry the widened gate and sit outside host-speed
    // calibration (the composite side is allocator-bound).
    {
        use flock_api::Map as _;
        use flock_ds::{abtree::ABTree, hashtable::HashTable};
        const KEYS: u64 = 32;
        let h: HashTable<u64, u64> = HashTable::with_capacity(64);
        for k in 0..KEYS {
            h.insert(k, k);
        }
        let mut i = 0u64;
        case(
            "update_native_hashtable",
            measure_best(budget, || {
                i = (i + 1) % KEYS;
                black_box(h.update(i, i));
            }),
        );
        let hc = crate::CompositeUpdate(h);
        let mut i = 0u64;
        case(
            "update_composite_hashtable",
            measure_best(budget, || {
                i = (i + 1) % KEYS;
                black_box(hc.update(i, i));
            }),
        );
        let t: ABTree<u64, u64> = ABTree::new();
        for k in 0..KEYS {
            t.insert(k, k);
        }
        let mut i = 0u64;
        case(
            "update_native_abtree",
            measure_best(budget, || {
                i = (i + 1) % KEYS;
                black_box(t.update(i, i));
            }),
        );
        let tc = crate::CompositeUpdate(t);
        let mut i = 0u64;
        case(
            "update_composite_abtree",
            measure_best(budget, || {
                i = (i + 1) % KEYS;
                black_box(tc.update(i, i));
            }),
        );
        use flock_epoch::Indirect;
        let hf: HashTable<u64, Indirect<[u64; 4]>> = HashTable::with_capacity(64);
        for k in 0..KEYS {
            hf.insert(k, Indirect([k; 4]));
        }
        let mut i = 0u64;
        case(
            "update_native_hashtable_fat",
            measure_best(budget, || {
                i = (i + 1) % KEYS;
                black_box(hf.update(i, Indirect([i, i ^ 7, !i, i << 1])));
            }),
        );
        flock_epoch::flush_all();
    }

    let l = Arc::new(Lock::new());
    let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
    case(
        "locked_alloc_retire_cycle",
        measure_best(budget, || {
            let s = Arc::clone(&slot);
            let _ = l.try_lock(move || {
                let old = s.load();
                let fresh = flock_core::alloc(|| 1u64);
                s.store(fresh);
                if !old.is_null() {
                    // SAFETY: old was unlinked by the store, under the lock.
                    unsafe { flock_core::retire(old) };
                }
            });
        }),
    );

    // Slab-pool primitives (ISSUE 9): the allocator's two signature paths,
    // priced without the lock machinery that locked_alloc_retire_cycle
    // wraps around them. `pool_alloc_retire_cycle` is the pure pipeline —
    // pin, pool alloc, retire, unpin — so every slot round-trips through
    // the calling thread's magazine once the collector frees it back.
    // `pool_cross_thread_free` breaks that round-trip on purpose: slots
    // are allocated here and freed on a consumer thread, so this thread's
    // magazine never refills from its own frees (every refill is a
    // global-pool miss) while the consumer's magazine overflows and
    // flushes back — the remote-free seam the magazine design must not
    // make pathological.
    case(
        "pool_alloc_retire_cycle",
        measure_best(budget, || {
            let g = flock_epoch::pin();
            let p = flock_epoch::alloc(black_box(1u64));
            // SAFETY: fresh private allocation, retired once.
            unsafe { flock_epoch::retire(p) };
            drop(g);
        }),
    );
    flock_epoch::flush_all();

    {
        struct Batch(Vec<*mut u64>);
        // SAFETY: the raw slot pointers are plain data; each batch's slots
        // are uniquely owned and hand over wholesale to the consumer, the
        // only thread that frees them.
        unsafe impl Send for Batch {}
        const XFER: usize = 256;
        // Bounded channel: backpressure keeps the free backlog (and the
        // page footprint) finite if the consumer falls behind; blocked
        // sends are part of the measured cross-thread cost.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Batch>(4);
        let consumer = std::thread::spawn(move || {
            for Batch(ptrs) in rx {
                for p in ptrs {
                    // SAFETY: uniquely owned by the batch, freed once.
                    unsafe { flock_epoch::free_now(p) };
                }
            }
        });
        let mut buf: Vec<*mut u64> = Vec::with_capacity(XFER);
        let ns = measure_best(budget, || {
            buf.push(flock_epoch::alloc(0u64));
            if buf.len() == XFER {
                tx.send(Batch(std::mem::take(&mut buf))).unwrap();
                buf.reserve(XFER);
            }
        });
        tx.send(Batch(std::mem::take(&mut buf))).unwrap();
        drop(tx);
        consumer.join().unwrap();
        case("pool_cross_thread_free", ns);
    }

    // Fat-value contention (ISSUE 9): 4 threads hammer one lock whose
    // thunk runs the full indirect-store pipeline (pool alloc → commit →
    // CAS → epoch retire). On the allocator this is the mixed case: the
    // winner allocates and the displaced value is freed later on whichever
    // thread collects, so magazines see both local recycling and
    // collector-routed returns under contention.
    {
        use flock_epoch::Indirect;
        let l = Arc::new(Lock::new());
        let v: Arc<Mutable<Indirect<[u64; 4]>>> = Arc::new(Mutable::new(Indirect([0; 4])));
        case(
            "contended_fat_value_store_4t",
            measure_contended(budget, 4, |t| {
                let v2 = Arc::clone(&v);
                let x = t as u64;
                black_box(l.try_lock(move || {
                    let cur = v2.load();
                    v2.store(Indirect([cur.0[0].wrapping_add(1), x, !x, x << 1]));
                }));
            }),
        );
        flock_epoch::flush_all();
    }

    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let report = BenchReport {
            primitives: vec![
                PrimitiveSample {
                    name: "a".into(),
                    ns_per_op: 12.5,
                },
                PrimitiveSample {
                    name: "b".into(),
                    ns_per_op: 0.4,
                },
            ],
            throughput: vec![ThroughputSample {
                series: "hashtable-lf".into(),
                threads: 4,
                mops: 1.2345,
            }],
            fairness: vec![FairnessSample {
                series: "fair-fifo".into(),
                threads: 32,
                mops: 0.5,
                max_min_ratio: 1.25,
                jain: 0.99,
            }],
        };
        let parsed = BenchReport::parse_json(&report.to_json());
        assert_eq!(parsed.primitives.len(), 2);
        assert_eq!(parsed.primitives[0].name, "a");
        assert!((parsed.primitives[0].ns_per_op - 12.5).abs() < 1e-9);
        assert_eq!(parsed.throughput.len(), 1);
        assert_eq!(parsed.throughput[0].series, "hashtable-lf");
        assert_eq!(parsed.throughput[0].threads, 4);
        assert!((parsed.throughput[0].mops - 1.2345).abs() < 1e-9);
        // Fairness lines carry series/threads/mops too; they must not leak
        // into the throughput vec.
        assert_eq!(parsed.fairness.len(), 1);
        assert_eq!(parsed.fairness[0].series, "fair-fifo");
        assert!((parsed.fairness[0].max_min_ratio - 1.25).abs() < 1e-9);
        assert!((parsed.fairness[0].jain - 0.99).abs() < 1e-9);
    }

    #[test]
    fn regression_check_flags_only_big_regressions() {
        let old = BenchReport {
            primitives: vec![
                PrimitiveSample {
                    name: "x".into(),
                    ns_per_op: 10.0,
                },
                PrimitiveSample {
                    name: "y".into(),
                    ns_per_op: 10.0,
                },
                PrimitiveSample {
                    name: "gone".into(),
                    ns_per_op: 1.0,
                },
            ],
            throughput: vec![],
            fairness: vec![],
        };
        let new = BenchReport {
            primitives: vec![
                PrimitiveSample {
                    name: "x".into(),
                    ns_per_op: 19.0, // < 2x: fine
                },
                PrimitiveSample {
                    name: "y".into(),
                    ns_per_op: 21.0, // > 2x: regression
                },
                PrimitiveSample {
                    name: "new_case".into(),
                    ns_per_op: 100.0, // no baseline: skipped
                },
            ],
            throughput: vec![],
            fairness: vec![],
        };
        let bad = new.primitive_regressions(&old, 2.0);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].starts_with("y:"));
    }

    #[test]
    fn subnanosecond_cases_use_noise_floor() {
        let old = BenchReport {
            primitives: vec![PrimitiveSample {
                name: "tiny".into(),
                ns_per_op: 0.3,
            }],
            throughput: vec![],
            fairness: vec![],
        };
        let new = BenchReport {
            primitives: vec![PrimitiveSample {
                name: "tiny".into(),
                ns_per_op: 1.5, // 5x of 0.3, but under the 1ns floor * 2
            }],
            throughput: vec![],
            fairness: vec![],
        };
        assert!(new.primitive_regressions(&old, 2.0).is_empty());
    }
}
