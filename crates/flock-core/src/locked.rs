//! [`Locked<T>`]: a [`Lock`] fused with the data it protects.
//!
//! Every example and test of the bare [`Lock`] API used to hand-roll the
//! same pattern: a struct holding a `Lock` next to some [`Mutable`] fields,
//! an `Arc` around it, and a pre-cloned `Arc` moved into every thunk so the
//! closure could be `'static`. `Locked<T>` packages that pattern once:
//!
//! ```
//! use flock_core::{Locked, Mutable};
//!
//! let account = Locked::new(Mutable::new(100u32));
//!
//! // `try_with` runs the closure under the cell's lock; `None` means the
//! // lock was busy, `Some(r)` carries the closure's own result out.
//! let withdrew = account.try_with(|balance| {
//!     let b = balance.load();
//!     if b < 30 {
//!         return false;
//!     }
//!     balance.store(b - 30);
//!     true
//! });
//! assert_eq!(withdrew, Some(true));
//! assert_eq!(account.load(), 70); // Deref: unlocked atomic read
//! ```
//!
//! The closure receives `&T` rather than capturing it, so callers no longer
//! clone `Arc`s by hand: the cell keeps its data behind an internal `Arc`
//! and clones that into each thunk, which is what makes the `'static` bound
//! satisfiable while helpers may still be replaying the thunk after the
//! caller returned.
//!
//! As with any Flock critical section, shared state mutated inside the
//! closure must live in [`Mutable`]/[`UpdateOnce`](crate::UpdateOnce) cells
//! so replays stay idempotent; plain fields of `T` are fine for constants.

use std::sync::Arc;

use crate::lock::Lock;

/// A [`Lock`] fused with the `T` it protects. See the [module docs](self)
/// for the usage pattern.
///
/// The protected data lives behind an internal `Arc<T>`: each critical
/// section holds a clone, so in lock-free mode a helper replaying the thunk
/// after the caller moved on still reads live data. The cell itself can be
/// shared by reference (scoped threads) or wrapped in an outer `Arc` for
/// spawned threads and multi-cell critical sections.
pub struct Locked<T> {
    lock: Lock,
    data: Arc<T>,
}

impl<T: Default> Default for Locked<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Locked<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locked")
            .field("locked", &self.lock.is_locked())
            .field("data", &self.data)
            .finish()
    }
}

impl<T> Locked<T> {
    /// A new unlocked cell protecting `data`, using the process-default
    /// [`Admission`](crate::Admission) policy.
    pub fn new(data: T) -> Self {
        Self::new_with(data, crate::config::default_admission())
    }

    /// A new unlocked cell protecting `data` with an explicit
    /// [`Admission`](crate::Admission) policy for its lock — see
    /// [`Lock::new_with`].
    pub fn new_with(data: T, admission: crate::Admission) -> Self {
        Self {
            lock: Lock::new_with(admission),
            data: Arc::new(data),
        }
    }

    /// Consume the cell and return the protected data, if no critical
    /// section still references it.
    ///
    /// `None` can occur transiently in lock-free mode: a descriptor whose
    /// thunk captured the data may sit in the epoch collector until the
    /// next flush ([`flock_epoch::flush_all`]).
    pub fn try_into_inner(self) -> Option<T> {
        Arc::into_inner(self.data)
    }

    /// Is the cell's lock currently held? (Racy observation, diagnostics.)
    pub fn is_locked(&self) -> bool {
        self.lock.is_locked()
    }

    /// The underlying [`Lock`], for advanced compositions (hand-over-hand
    /// release via [`Lock::unlock_early`], lock-order diagnostics).
    pub fn lock_ref(&self) -> &Lock {
        &self.lock
    }

    /// The cell's current [`crate::LockVersion`] (`None` while a critical
    /// section holds the lock) — see [`Lock::version`].
    pub fn version(&self) -> Option<crate::LockVersion> {
        self.lock.version()
    }

    /// Optimistic version-validated read over the protected data: `f` runs
    /// with plain unlocked loads, bracketed by this cell's lock version;
    /// on bounded validation failure `fallback` (a committed read) decides.
    /// See [`Lock::read_validated`].
    pub fn read_validated<R>(&self, f: impl Fn(&T) -> R, fallback: impl FnOnce(&T) -> R) -> R {
        self.lock
            .read_validated(|| f(&self.data), || fallback(&self.data))
    }
}

impl<T: Send + Sync + 'static> Locked<T> {
    /// Try to acquire the cell's lock and run `f` over the protected data.
    ///
    /// Returns `None` if the lock was busy (after helping the holder in
    /// lock-free mode), `Some(r)` with `f`'s result otherwise. Nest calls on
    /// other cells inside `f` in a consistent order for multi-cell atomicity.
    pub fn try_with<R, F>(&self, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let data = Arc::clone(&self.data);
        self.lock.try_lock(move || f(&data))
    }

    /// Acquire the cell's lock (waiting — and helping, in lock-free mode —
    /// until it is free) and run `f` over the protected data.
    pub fn with<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let data = Arc::clone(&self.data);
        self.lock.lock(move || f(&data))
    }

    /// Try to lock **two** cells and run `f` over both protected values.
    ///
    /// The locks are always acquired in address order (the "simply nested"
    /// discipline the paper's lock-freedom theorem requires), regardless of
    /// argument order, so any set of `try_with2` callers is deadlock-free
    /// without callers choosing an order themselves; `f` still receives the
    /// data in the order the *arguments* were passed. Returns `None` when
    /// either lock was busy (after helping the holder in lock-free mode),
    /// `Some(r)` once `f` ran under both locks.
    ///
    /// The cells are taken as `&Arc<Self>` because the second acquisition
    /// happens inside the first critical section, which may outlive this
    /// call in lock-free mode (helpers can replay it) — the thunk keeps its
    /// own handles alive.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are the same cell.
    pub fn try_with2<R, F>(a: &Arc<Self>, b: &Arc<Self>, f: F) -> Option<R>
    where
        R: Send + 'static,
        F: Fn(&T, &T) -> R + Send + Sync + 'static,
    {
        assert!(
            !Arc::ptr_eq(a, b),
            "Locked::try_with2 requires two distinct cells"
        );
        let (first, second) = if Arc::as_ptr(a) < Arc::as_ptr(b) {
            (a, b)
        } else {
            (b, a)
        };
        let f = Arc::new(f);
        let (ad, bd) = (Arc::clone(&a.data), Arc::clone(&b.data));
        let second = Arc::clone(second);
        first
            .lock
            .try_lock(move || {
                let f = Arc::clone(&f);
                let (ad, bd) = (Arc::clone(&ad), Arc::clone(&bd));
                second.lock.try_lock(move || f(&ad, &bd))
            })
            .flatten()
    }
}

/// Unlocked read access to the protected data.
///
/// This is safe — all shared mutation inside `T` goes through atomic
/// [`Mutable`](crate::Mutable) cells — and is exactly the optimistic
/// traversal pattern of the paper's data structures: read without the lock,
/// take the lock (re-validating) only to mutate.
impl<T> std::ops::Deref for Locked<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::TEST_MODE_LOCK;
    use crate::{LockMode, Mutable, set_lock_mode};

    fn both_modes(test: impl Fn()) {
        let _guard = TEST_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            set_lock_mode(mode);
            test();
        }
        set_lock_mode(LockMode::LockFree);
    }

    #[test]
    fn try_with_runs_and_returns() {
        both_modes(|| {
            let cell = Locked::new(Mutable::new(5u32));
            let doubled = cell.try_with(|m| {
                let v = m.load();
                m.store(v * 2);
                v
            });
            assert_eq!(doubled, Some(5));
            assert_eq!(cell.load(), 10);
            assert!(!cell.is_locked());
        });
    }

    #[test]
    fn with_waits_and_returns() {
        both_modes(|| {
            let cell = Locked::new(Mutable::new(1u32));
            let r = cell.with(|m| m.load() + 41);
            assert_eq!(r, 42);
        });
    }

    #[test]
    fn concurrent_counter_exact() {
        both_modes(|| {
            let cell = Locked::new(Mutable::new(0u64));
            const PER_THREAD: u64 = 1_000;
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let cell = &cell;
                    s.spawn(move || {
                        let mut done = 0;
                        while done < PER_THREAD {
                            if cell.try_with(|m| m.store(m.load() + 1)).is_some() {
                                done += 1;
                            }
                        }
                    });
                }
            });
            assert_eq!(cell.load(), 4 * PER_THREAD);
        });
    }

    #[test]
    fn nested_cells_compose() {
        both_modes(|| {
            struct Acct {
                bal: Mutable<u32>,
            }
            let a = Arc::new(Locked::new(Acct {
                bal: Mutable::new(100),
            }));
            let b = Arc::new(Locked::new(Acct {
                bal: Mutable::new(0),
            }));
            // Fixed a → b lock order; move 30 across atomically, with both
            // locks held for the whole transfer. The inner closure reaches
            // the source data through a cloned handle (Deref) because it
            // cannot borrow from the outer closure's `&T` argument.
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let moved = a.try_with(move |_src| {
                let a3 = Arc::clone(&a2);
                b2.try_with(move |dst| {
                    let bal = a3.bal.load();
                    if bal < 30 {
                        return false;
                    }
                    a3.bal.store(bal - 30);
                    dst.bal.store(dst.bal.load() + 30);
                    true
                })
            });
            // Outer acquired, inner acquired, funds sufficed.
            assert_eq!(moved, Some(Some(true)));
            assert_eq!(a.bal.load(), 70);
            assert_eq!(b.bal.load(), 30);
            assert_eq!(a.bal.load() + b.bal.load(), 100, "money conserved");
        });
    }

    #[test]
    fn try_with2_transfers_atomically() {
        both_modes(|| {
            let a = Arc::new(Locked::new(Mutable::new(100u32)));
            let b = Arc::new(Locked::new(Mutable::new(0u32)));
            // Argument order, not address order, decides which &T is which.
            let moved = Locked::try_with2(&a, &b, |src, dst| {
                let bal = src.load();
                if bal < 30 {
                    return false;
                }
                src.store(bal - 30);
                dst.store(dst.load() + 30);
                true
            });
            assert_eq!(moved, Some(true));
            assert_eq!(a.load(), 70);
            assert_eq!(b.load(), 30);
            // Swapped argument order still works (locks reorder internally).
            let back = Locked::try_with2(&b, &a, |src, dst| {
                let bal = src.load();
                src.store(bal - 30);
                dst.store(dst.load() + 30);
                true
            });
            assert_eq!(back, Some(true));
            assert_eq!(a.load(), 100);
            assert_eq!(b.load(), 0);
        });
    }

    #[test]
    fn try_with2_concurrent_conserves_total() {
        both_modes(|| {
            const CELLS: usize = 8;
            const INITIAL: u64 = 1_000;
            let cells: Vec<Arc<Locked<Mutable<u64>>>> = (0..CELLS)
                .map(|_| Arc::new(Locked::new(Mutable::new(INITIAL))))
                .collect();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let cells = &cells;
                    s.spawn(move || {
                        let mut state = t * 31 + 7;
                        for _ in 0..2_000 {
                            state ^= state << 13;
                            state ^= state >> 7;
                            state ^= state << 17;
                            let i = (state as usize) % CELLS;
                            let j = ((state >> 8) as usize) % CELLS;
                            if i == j {
                                continue;
                            }
                            let _ = Locked::try_with2(&cells[i], &cells[j], |a, b| {
                                let av = a.load();
                                if av == 0 {
                                    return false;
                                }
                                a.store(av - 1);
                                b.store(b.load() + 1);
                                true
                            });
                        }
                    });
                }
            });
            let total: u64 = cells.iter().map(|c| c.load()).sum();
            assert_eq!(total, CELLS as u64 * INITIAL, "money conserved");
        });
    }

    /// Panic-safety: a closure that unwinds out of `with` leaves the cell's
    /// lock released, and the data stays usable (no poisoning — shared
    /// state lives in `Mutable` cells that a partial run never corrupts,
    /// because an unwound thunk's effects were applied under the lock or
    /// not at all).
    #[test]
    fn panic_in_with_releases_lock() {
        both_modes(|| {
            let cell = Locked::new(Mutable::new(5u32));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cell.with(|_| -> u32 { panic!("with boom") })
            }));
            assert!(r.is_err());
            assert!(!cell.is_locked(), "cell lock leaked by a panicking with");
            assert_eq!(cell.with(|m| m.load()), 5);
        });
    }

    /// Panic-safety: a closure that unwinds out of `try_with2` releases
    /// *both* locks — the inner lock's unwind path must compose with the
    /// outer critical section's, not just its own.
    #[test]
    fn panic_in_try_with2_releases_both_locks() {
        both_modes(|| {
            let a = Arc::new(Locked::new(Mutable::new(1u32)));
            let b = Arc::new(Locked::new(Mutable::new(2u32)));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Locked::try_with2(&a, &b, |_, _| -> u32 { panic!("with2 boom") })
            }));
            assert!(r.is_err());
            assert!(!a.is_locked(), "first lock leaked by panicking try_with2");
            assert!(!b.is_locked(), "second lock leaked by panicking try_with2");
            // Both cells fully functional afterwards.
            let moved = Locked::try_with2(&a, &b, |x, y| {
                x.store(x.load() + 1);
                y.store(y.load() + 1);
                x.load() + y.load()
            });
            assert_eq!(moved, Some(2 + 3));
        });
    }

    #[test]
    #[should_panic(expected = "distinct cells")]
    fn try_with2_rejects_same_cell() {
        let a = Arc::new(Locked::new(Mutable::new(0u32)));
        let b = Arc::clone(&a);
        let _ = Locked::try_with2(&a, &b, |_, _| ());
    }

    #[test]
    fn deref_reads_outside_lock() {
        both_modes(|| {
            let cell = Locked::new(Mutable::new(9u32));
            assert_eq!(cell.load(), 9);
            cell.with(|m| m.store(11));
            assert_eq!(cell.load(), 11);
        });
    }

    #[test]
    fn try_into_inner_returns_data() {
        let cell = Locked::new(String::from("x"));
        assert_eq!(cell.try_into_inner(), Some(String::from("x")));
    }
}
