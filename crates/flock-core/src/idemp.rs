//! Idempotent memory management inside thunks (paper Algorithm 2,
//! `allocate`/`retire`), plus the idempotent descriptor create/retire needed
//! for nested locks (Theorem 4.1's conditions).
//!
//! * [`alloc`] — every run constructs its own object, then commits the
//!   pointer to the thunk log; losers free theirs immediately (it was never
//!   published) and adopt the winner's.
//! * [`retire`] — runs compete for ownership of the retire by committing a
//!   marker; only the first performs the epoch retire, so each object is
//!   retired at most once.
//!
//! Outside a thunk, these degrade to plain allocate / epoch-retire.

use flock_sync::ThreadCtx;

use crate::ctx;
use crate::descriptor::{self, Descriptor};

/// Idempotently allocate an object initialized by `init`.
///
/// Inside a thunk, every run calls `init` (so `init` must be deterministic
/// given the thunk's committed loads — true for ordinary node construction);
/// exactly one resulting object is kept and returned by all runs.
///
/// The returned pointer is shared; free it only via [`retire`].
pub fn alloc<T>(init: impl FnOnce() -> T) -> *mut T {
    let fresh = flock_epoch::alloc(init());
    let (committed, first) = ctx::commit_raw(fresh as u64);
    if !first && committed != fresh as u64 {
        // Some other run committed its allocation first; ours was never
        // visible to anyone.
        // SAFETY: `fresh` was allocated above and never shared.
        unsafe { flock_epoch::free_now(fresh) };
    }
    committed as usize as *mut T
}

/// Marker committed to the log by the winning retire.
const RETIRE_MARKER: u64 = 1;

/// Idempotently retire an object allocated with [`alloc`].
///
/// # Safety
///
/// `ptr` must have been produced by [`alloc`] (or `flock_epoch::alloc`), must
/// be unlinked from all shared structures, and must be logically retired at
/// most once per thunk (multiple *runs* of that retire are the whole point
/// and are safe). The calling thread must be inside an epoch guard.
pub unsafe fn retire<T>(ptr: *mut T) {
    let (_, first) = ctx::commit_raw(RETIRE_MARKER);
    if first {
        // SAFETY: forwarded contract; only the first run reaches this.
        unsafe { flock_epoch::retire(ptr) };
    }
}

/// Idempotently create a descriptor while running an outer thunk: all
/// runners allocate, one pointer wins via the log, losers recycle their
/// private copy.
pub(crate) fn create_descriptor_idempotent<R, F>(
    tc: &ThreadCtx,
    thunk: F,
    guard: &flock_epoch::EpochGuard,
) -> *mut Descriptor
where
    R: Send + 'static,
    F: Fn() -> R + Send + Sync + 'static,
{
    debug_assert!(tc.in_thunk());
    let fresh = descriptor::create_descriptor(thunk, guard.epoch(), true);
    let (committed, first) = ctx::commit_raw_in(tc, fresh as u64);
    if !first && committed != fresh as u64 {
        // SAFETY: `fresh` lost the race and was never published anywhere.
        unsafe { descriptor::recycle_unshared(fresh) };
    }
    committed as usize as *mut Descriptor
}

/// Idempotently retire a nested descriptor: the first run performs the epoch
/// retire; flags stay sticky until the memory is actually reclaimed, which
/// keeps raw `done` reads divergence-free for late replayers.
pub(crate) fn retire_descriptor_idempotent(tc: &ThreadCtx, d: *const Descriptor) {
    let (_, first) = ctx::commit_raw_in(tc, RETIRE_MARKER);
    if first {
        // SAFETY: `d` came from `create_descriptor_idempotent`, the lock
        // word no longer references it, and callers hold an epoch guard.
        unsafe { flock_epoch::retire(d as *mut Descriptor) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_outside_thunk_is_plain() {
        let p = alloc(|| 123u64);
        // SAFETY: p is fresh and unshared.
        unsafe {
            assert_eq!(*p, 123);
            let _g = flock_epoch::pin();
            retire(p);
        }
        flock_epoch::flush_all();
    }

    #[test]
    fn alloc_and_retire_many() {
        let _g = flock_epoch::pin();
        for i in 0..100u64 {
            let p = alloc(move || i);
            // SAFETY: fresh allocation, retired once, pinned.
            unsafe {
                assert_eq!(*p, i);
                retire(p);
            }
        }
    }
}
