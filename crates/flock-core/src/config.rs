//! Global runtime configuration, unified in **one atomic config word**.
//!
//! Three knobs share the word (PR 10; previously `set_lock_mode` and
//! `set_helping` were two ad-hoc statics with separate orderings):
//!
//! * **Lock mode** (bit 0): lock-free (descriptor + helping) vs blocking
//!   (TTAS) implementations of every [`Lock`](crate::Lock) operation —
//!   the paper's runtime-switchable mode.
//! * **Helping** (bit 1, inverted: set = disabled): the ablation hook that
//!   turns off helping so its cost/benefit can be measured. Disabling it
//!   forfeits lock-freedom.
//! * **Default admission** (bit 2): the [`Admission`] policy
//!   [`Lock::new`](crate::Lock::new) stamps on newly created locks —
//!   CAS-race (the paper's implicit policy) or FIFO handoff. Pre-existing
//!   locks keep the policy they were created with; see the `admission`
//!   module docs in `lock.rs` for the protocol.
//!
//! All three are *configuration*, not protocol state: they are meant to be
//! flipped only while no Flock operations are in flight (between benchmark
//! phases, at test boundaries), and mixing values on live locks is
//! unsupported. They deliberately live in a **plain std atomic** — not the
//! `flock_sync::atomic` shim — so the model checker does not turn every
//! configuration read into a scheduling point. All protocol state on the
//! hot paths lives in `Mutable`/`Descriptor`, which do route through the
//! shim.
//!
//! Setters publish with `SeqCst`; the hot-path getters load `Relaxed` (one
//! load, no fence), which is exactly the visibility the "only while
//! quiescent" contract needs.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::admission::Admission;
use crate::lock::LockMode;

/// Bit 0: set = blocking mode, clear = lock-free mode.
const MODE_BLOCKING: u32 = 1 << 0;
/// Bit 1: set = helping **disabled** (clear-by-default keeps the zero word
/// meaning "lock-free, helping on, race admission").
const HELPING_OFF: u32 = 1 << 1;
/// Bit 2: set = newly created locks default to FIFO admission.
const ADMISSION_FIFO: u32 = 1 << 2;

/// The config word. Zero = the defaults: lock-free mode, helping enabled,
/// race admission.
static CONFIG: AtomicU32 = AtomicU32::new(0);

#[inline]
fn set_bit(bit: u32, on: bool) {
    if on {
        CONFIG.fetch_or(bit, Ordering::SeqCst);
    } else {
        CONFIG.fetch_and(!bit, Ordering::SeqCst);
    }
}

/// Select the global lock mode.
///
/// Must only be changed while no Flock operations are in flight (e.g.
/// between benchmark phases); mixing modes on a live lock is not supported,
/// matching the C++ library's runtime flag.
pub fn set_lock_mode(mode: LockMode) {
    set_bit(MODE_BLOCKING, mode == LockMode::Blocking);
}

/// The current global lock mode.
#[inline]
pub fn lock_mode() -> LockMode {
    if CONFIG.load(Ordering::Relaxed) & MODE_BLOCKING == 0 {
        LockMode::LockFree
    } else {
        LockMode::Blocking
    }
}

/// Enable/disable helping (ablation hook): when disabled, a lock-free
/// `try_lock` that finds the lock taken simply fails without running the
/// holder's thunk. This forfeits lock-freedom and exists only to measure
/// what helping costs/buys. Not meant to be toggled while operations run.
pub fn set_helping(enabled: bool) {
    set_bit(HELPING_OFF, !enabled);
}

/// Is helping currently enabled?
#[inline]
pub(crate) fn helping_enabled() -> bool {
    CONFIG.load(Ordering::Relaxed) & HELPING_OFF == 0
}

/// Set the [`Admission`] policy that [`Lock::new`](crate::Lock::new) (and
/// every structure constructor that does not select one explicitly) stamps
/// on **newly created** locks. Existing locks keep their policy — admission
/// is a per-lock property fixed at construction.
pub fn set_default_admission(admission: Admission) {
    set_bit(ADMISSION_FIFO, admission == Admission::Fifo);
}

/// The admission policy newly created locks receive by default.
#[inline]
pub fn default_admission() -> Admission {
    if CONFIG.load(Ordering::Relaxed) & ADMISSION_FIFO == 0 {
        Admission::Race
    } else {
        Admission::Fifo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The three knobs pack into one word without clobbering each other.
    #[test]
    fn knobs_are_independent() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::Blocking);
        set_helping(false);
        set_default_admission(Admission::Fifo);
        assert_eq!(lock_mode(), LockMode::Blocking);
        assert!(!helping_enabled());
        assert_eq!(default_admission(), Admission::Fifo);
        set_lock_mode(LockMode::LockFree);
        assert!(!helping_enabled(), "mode write must not clobber helping");
        assert_eq!(default_admission(), Admission::Fifo);
        set_helping(true);
        set_default_admission(Admission::Race);
        assert_eq!(lock_mode(), LockMode::LockFree);
        assert!(helping_enabled());
        assert_eq!(default_admission(), Admission::Race);
    }
}
