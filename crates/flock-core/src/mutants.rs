//! Deliberate protocol weakenings for validating the model checker.
//!
//! Each knob re-creates a bug class the `flock-model` test suite claims to
//! catch; a model test flips the knob and asserts the checker **finds** a
//! failing schedule. Everything here is `cfg(feature = "model")`-gated and
//! absent from production builds; the knobs are plain std atomics (test
//! configuration, not modeled protocol state).

use core::sync::atomic::{AtomicBool, Ordering};

/// Skip committing `Mutable` loads to the thunk log: runs of the same thunk
/// may observe different values and diverge — the exact replay-divergence
/// (double-applied effects) the log-based idempotence scheme exists to
/// prevent.
pub static SKIP_LOAD_COMMIT: AtomicBool = AtomicBool::new(false);

pub(crate) fn skip_load_commit() -> bool {
    SKIP_LOAD_COMMIT.load(Ordering::Relaxed)
}

/// Break log-commit agreement: `commit_at` reports every commit as the
/// winner with the caller's own value instead of CAS-adjudicating. Helpers
/// stop adopting the first committer's values, so replays diverge.
pub static LOG_NO_AGREEMENT: AtomicBool = AtomicBool::new(false);

pub(crate) fn log_no_agreement() -> bool {
    LOG_NO_AGREEMENT.load(Ordering::Relaxed)
}

/// Drop the generation re-checks from the help path (`Lock::help` behaves
/// as before the descriptor-generation fix): a stalled helper that survives
/// an exact `TAG_LIMIT`-install wraparound of one lock word revalidates a
/// *reincarnated* packed word — the same-value-different-incarnation ABA
/// the generation counter exists to reject — and can run or unlock a
/// descriptor that is not the one it observed.
pub static SKIP_GEN_CHECK: AtomicBool = AtomicBool::new(false);

pub(crate) fn skip_gen_check() -> bool {
    SKIP_GEN_CHECK.load(Ordering::Relaxed)
}

/// Drop the doneness/generation revalidation from FIFO handoff candidate
/// selection (`admission::candidate_eligible` accepts any published slot):
/// a releasing owner can then hand the lock to a **stale** arrival — e.g.
/// its own just-completed descriptor still published in the
/// release-to-depart window — installing a done descriptor as the lock
/// holder. The reincarnation that follows (the slab is recycled into a new
/// operation while the old install is still being helped) lets a helper run
/// a thunk against a lock it never acquired: a lost update.
pub static FIFO_SKIP_VALIDATION: AtomicBool = AtomicBool::new(false);

pub(crate) fn fifo_skip_validation() -> bool {
    FIFO_SKIP_VALIDATION.load(Ordering::Relaxed)
}
