//! Thunk descriptors: the unit of helping.
//!
//! A descriptor bundles a thunk (the critical-section closure), its shared
//! log, a `done` flag, a `helped` flag and its birth epoch. Installing a
//! descriptor on a lock word is how a thread "takes" a lock in lock-free
//! mode; any contender can then run the descriptor to completion.
//!
//! ## Lifecycle (see DESIGN.md §3)
//!
//! * **Top-level** descriptors (created outside any thunk) belong to exactly
//!   one thread. After the owning `try_lock` finishes, the owner reuses the
//!   descriptor immediately if no helper ever touched it (`helped == false`,
//!   the common case, §6 of the paper), and otherwise retires it through the
//!   epoch collector.
//! * **Nested** descriptors (created while running an outer thunk) are
//!   created idempotently — all runners of the outer thunk share one — so no
//!   single runner owns them: they are always retired idempotently through
//!   the epoch collector and their `done`/`helped` flags stay sticky until
//!   the memory is actually freed. This is what makes the raw `done` reads
//!   in the lock algorithm divergence-free for replayers.

use std::cell::RefCell;

use flock_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::log::LogBlock;

/// Maximum closure size stored inline in a descriptor; larger thunks spill to
/// a `Box`. 88 bytes holds ~11 words of captures, comfortably covering the
/// data-structure operations in `flock-ds`.
const INLINE_BYTES: usize = 88;
const INLINE_WORDS: usize = INLINE_BYTES / 8;

/// Type-erased storage for a `Fn() -> R + Send + Sync + 'static` closure.
///
/// The result type `R` is erased together with the closure: the stored
/// `call` thunk either writes the computed `R` into a caller-provided slot
/// (owner path — the caller must know the matching `R`) or drops it in
/// place (helper path — helpers run thunks only for their logged side
/// effects and discard the value, which is why `R: Send` is required).
struct ThunkSlot {
    buf: [std::mem::MaybeUninit<u64>; INLINE_WORDS],
    /// Invokes the closure stored in `buf` (inline) or behind it (boxed).
    /// Writes the result to the second argument (a `*mut R`) when non-null,
    /// drops it otherwise.
    call: Option<unsafe fn(*const u8, *mut u8)>,
    /// Drops the closure in place.
    drop_fn: Option<unsafe fn(*mut u8)>,
}

impl ThunkSlot {
    const fn empty() -> Self {
        Self {
            buf: [std::mem::MaybeUninit::uninit(); INLINE_WORDS],
            call: None,
            drop_fn: None,
        }
    }

    /// Store `f`, dropping any previous closure. Requires exclusive access
    /// (descriptor not yet published, or past its grace period).
    fn set<R, F>(&mut self, f: F)
    where
        R: Send + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        self.clear();
        unsafe fn call_inline<R, F: Fn() -> R>(p: *const u8, out: *mut u8) {
            // SAFETY: `p` points at a valid `F` written by `set`.
            let r = (unsafe { &*p.cast::<F>() })();
            if out.is_null() {
                drop(r);
            } else {
                // SAFETY: caller passes a slot of the `R` this closure was
                // stored with (ThunkSlot::call contract).
                unsafe { out.cast::<R>().write(r) };
            }
        }
        unsafe fn drop_inline<F>(p: *mut u8) {
            // SAFETY: exclusive access; `p` holds a valid `F`.
            unsafe { std::ptr::drop_in_place(p.cast::<F>()) }
        }
        unsafe fn call_boxed<R, F: Fn() -> R>(p: *const u8, out: *mut u8) {
            // SAFETY: `p` points at the Box<F> written by `set`.
            let r = (unsafe { &**p.cast::<Box<F>>() })();
            if out.is_null() {
                drop(r);
            } else {
                // SAFETY: as in `call_inline`.
                unsafe { out.cast::<R>().write(r) };
            }
        }
        unsafe fn drop_boxed<F>(p: *mut u8) {
            // SAFETY: exclusive access; `p` holds a valid Box<F>.
            unsafe { std::ptr::drop_in_place(p.cast::<Box<F>>()) }
        }

        if std::mem::size_of::<F>() <= INLINE_BYTES && std::mem::align_of::<F>() <= 8 {
            // SAFETY: size/align checked; buf is exclusively ours.
            unsafe {
                std::ptr::write(self.buf.as_mut_ptr().cast::<F>(), f);
            }
            self.call = Some(call_inline::<R, F>);
            self.drop_fn = Some(drop_inline::<F>);
        } else {
            let boxed: Box<F> = Box::new(f);
            // SAFETY: a Box is one word, fits the 11-word buffer.
            unsafe {
                std::ptr::write(self.buf.as_mut_ptr().cast::<Box<F>>(), boxed);
            }
            self.call = Some(call_boxed::<R, F>);
            self.drop_fn = Some(drop_boxed::<F>);
        }
    }

    /// Invoke the stored closure. May be called concurrently by many threads
    /// (the closure is `Fn + Sync`).
    ///
    /// # Safety
    ///
    /// `out` is either null (the result is dropped) or a pointer to an
    /// uninitialized `R` slot, where `R` is the exact return type the
    /// closure was stored with via [`ThunkSlot::set`].
    #[inline]
    unsafe fn call(&self, out: *mut u8) {
        let call = self.call.expect("descriptor thunk called before set");
        // SAFETY: `call` was installed together with a valid closure in
        // `buf`, and publication of the descriptor pointer (SeqCst CAS)
        // happens-after `set`; `out` per forwarded contract.
        unsafe { call(self.buf.as_ptr().cast::<u8>(), out) }
    }

    /// Drop the stored closure, if any. Requires exclusive access.
    fn clear(&mut self) {
        if let Some(d) = self.drop_fn.take() {
            // SAFETY: exclusive access, closure valid, dropped once.
            unsafe { d(self.buf.as_mut_ptr().cast::<u8>()) };
        }
        self.call = None;
    }
}

impl Drop for ThunkSlot {
    fn drop(&mut self) {
        self.clear();
    }
}

/// A helping descriptor (paper Algorithm 2's `descriptor` struct, plus the
/// implementation fields from §6).
pub struct Descriptor {
    thunk: ThunkSlot,
    first_block: LogBlock,
    /// Set (sticky) once any run of the thunk completes.
    done: AtomicBool,
    /// Set (sticky per incarnation) when any run of the thunk unwound
    /// instead of completing. The panic-safety contract (`Lock` docs,
    /// EXPERIMENTS.md §8) keys replay decisions off this flag: a partially
    /// committed log must never be replayed by a runner that would execute
    /// *past* the panic point after the lock was released. Always written
    /// before `done` and read after it, so a `done` observer sees it.
    panicked: AtomicBool,
    /// Set by any thread that intends to help this descriptor; an unhelped
    /// top-level descriptor can be reused without a grace period.
    helped: AtomicBool,
    /// Epoch reserved by the creating operation; helpers adopt it.
    birth_epoch: AtomicU64,
    /// Incarnation counter of this descriptor slab: bumped on every
    /// (re)initialization in [`create_descriptor`], never reset. Two
    /// observations of the same slab with equal generations are the same
    /// incarnation — the help path's defense against lock-word tag
    /// wraparound, where the packed word `(tag, ptr)` can recur while the
    /// descriptor behind it was pool-recycled (see `Lock::help`).
    generation: AtomicU64,
    /// True when the descriptor was created while running another thunk.
    nested: bool,
}

// SAFETY: descriptors are shared across helper threads by design. The thunk
// is `Send + Sync`; flags and log are atomics; `thunk`/`nested` are written
// only before publication or with exclusive access (pool reuse / drop).
unsafe impl Send for Descriptor {}
unsafe impl Sync for Descriptor {}

impl Descriptor {
    fn new() -> Self {
        Self {
            thunk: ThunkSlot::empty(),
            first_block: LogBlock::new(),
            done: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            helped: AtomicBool::new(false),
            birth_epoch: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            nested: false,
        }
    }

    pub(crate) fn first_block(&self) -> &LogBlock {
        &self.first_block
    }

    /// Run the stored thunk, writing its result to `out` (or dropping it
    /// when `out` is null).
    ///
    /// # Safety
    ///
    /// See [`ThunkSlot::call`]: `out` must be null or point at an
    /// uninitialized slot of the thunk's exact return type.
    pub(crate) unsafe fn call_thunk(&self, out: *mut u8) {
        // SAFETY: forwarded contract.
        unsafe { self.thunk.call(out) }
    }

    pub(crate) fn is_done(&self) -> bool {
        // Ordering: Acquire. Callers on the lock paths get the store–load
        // ordering this check needs from a preceding lock-word load that
        // read past the completing helper's release CAM (the try_lock fast
        // path); a stale `false` elsewhere only causes a redundant,
        // idempotent replay. Acquire (not Relaxed) so that a `true` also
        // carries the completed run's log writes for the replay read-back.
        // The announcement protocol uses `is_done_announced` instead.
        self.done.load(Ordering::Acquire)
    }

    /// The done-check of the announce-then-revalidate protocol
    /// (`Mutable::store`'s ABA defense).
    ///
    /// Ordering: on TSO this load is `SeqCst` — it is the announcer's side
    /// of a Dekker pair whose barrier is the `SeqCst` announcement swap
    /// (see `flock_sync::announce`, "Memory ordering"), and a `SeqCst`
    /// load is a plain `mov` there. On weakly-ordered targets Acquire
    /// suffices: the `SeqCst` fence inside `announce` is the barrier.
    pub(crate) fn is_done_announced(&self) -> bool {
        // `model` builds always take the weak-target arm (the variant x86
        // CI cannot falsify natively), matching `flock_sync::announce`.
        const ORDER: Ordering = if cfg!(all(target_arch = "x86_64", not(feature = "model"))) {
            Ordering::SeqCst
        } else {
            Ordering::Acquire
        };
        self.done.load(ORDER)
    }

    pub(crate) fn set_done(&self) {
        // Update-once location: a plain store is idempotent (paper §6,
        // "Constants and Update-once Locations").
        //
        // Ordering: on TSO, SeqCst — the flag participates in the
        // SC-total-order argument of the announcement protocol (a scanner
        // that misses an announcement must have its lock acquisition, and
        // therefore this earlier flag write, SC-ordered before the
        // announcer's done-read; see `flock_sync::announce`). On
        // weakly-ordered targets Release suffices: there the announcer is
        // anchored by announce's SeqCst fence, and the flag reaches the
        // scanner through the release unlock CAM it already follows. Both
        // choices keep the thunk's effects ordered before the flag. (The
        // seed used SeqCst store + a separate announce fence — one more
        // full barrier per in-thunk store than this split pays.)
        const ORDER: Ordering = if cfg!(all(target_arch = "x86_64", not(feature = "model"))) {
            Ordering::SeqCst
        } else {
            Ordering::Release
        };
        self.done.store(true, ORDER);
    }

    /// Did any run of this incarnation's thunk panic instead of completing?
    ///
    /// Ordering: Acquire, paired with the Release in [`mark_panicked`].
    /// The flag is always stored before `done`, and the lock paths read it
    /// after observing `done` (itself Acquire), so "done and not panicked"
    /// is a stable conclusion: no runner can set the flag afterwards for
    /// this incarnation (the run that would is the one that set `done`).
    ///
    /// [`mark_panicked`]: Descriptor::mark_panicked
    pub(crate) fn thunk_panicked(&self) -> bool {
        self.panicked.load(Ordering::Acquire)
    }

    /// Record that a run of the thunk unwound. Must be called before the
    /// same runner's `set_done` (see [`Descriptor::thunk_panicked`]).
    pub(crate) fn mark_panicked(&self) {
        self.panicked.store(true, Ordering::Release);
    }

    pub(crate) fn was_helped(&self) -> bool {
        // Ordering: SeqCst — the read side of the Dekker pair with the
        // unlock CAM: the owner unlocks (SeqCst RMW), then reads `helped`;
        // a helper marks `helped`, fences (epoch adoption), then reads the
        // lock word. SeqCst on both flag accesses keeps the "owner misses
        // the mark AND helper misses the unlock" interleaving impossible.
        // This is the reuse-decision path, once per completed op — not
        // worth weakening.
        self.helped.load(Ordering::SeqCst)
    }

    pub(crate) fn mark_helped(&self) {
        // Ordering: SeqCst — write side of the Dekker pair, see
        // `was_helped`. Help paths only run under contention.
        self.helped.store(true, Ordering::SeqCst);
    }

    /// This slab's incarnation number (see the field docs).
    ///
    /// Ordering: Acquire. A helper that observed the descriptor installed
    /// on a lock word (SeqCst load reading from the SeqCst install CAS)
    /// already synchronizes with the incarnation's initialization; Acquire
    /// here keeps the *re-read* in the generation-validated help protocol
    /// from floating above the lock-word load it follows, so "generation
    /// unchanged" really does mean "no `create_descriptor` ran in between".
    pub(crate) fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    pub(crate) fn birth_epoch(&self) -> u64 {
        // Ordering: Relaxed. The epoch is written before the descriptor is
        // published (install CAS / log commit, both release writes) and
        // read only by threads that acquired the descriptor pointer from
        // one of those locations, so it is covered by that happens-before.
        self.birth_epoch.load(Ordering::Relaxed)
    }

    #[allow(dead_code)] // diagnostic accessor, used by tests
    pub(crate) fn is_nested(&self) -> bool {
        self.nested
    }
}

/// Per-thread pool of top-level descriptors (paper §6: "if a descriptor is
/// never helped, which is the common case, then it can be reused immediately
/// instead of being retired").
const POOL_CAP: usize = 32;

/// Global switch for the reuse-if-unhelped optimization (ablation hook):
/// when disabled, every top-level descriptor is retired through the epoch
/// collector. Not meant to be toggled while operations run.
static REUSE_ENABLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enable/disable descriptor reuse (ablation hook).
pub fn set_descriptor_reuse(enabled: bool) {
    REUSE_ENABLED.store(enabled, Ordering::SeqCst);
}

fn reuse_enabled() -> bool {
    REUSE_ENABLED.load(Ordering::Relaxed)
}

/// Once a descriptor has been published (installed on a lock word), a stale
/// helper that read the old lock word may still write its `helped` flag at
/// any later time, even after the descriptor was recycled. Such writes are
/// harmless on *live* memory (they at worst force the next incarnation down
/// the conservative retire path), so published descriptors may be pooled —
/// but they must never be immediately *freed*: when they leave the pool
/// (overflow or thread exit) they go through the epoch collector.
///
/// Entries are raw `flock_epoch::alloc` pointers (not `Box`es): every
/// descriptor shares the epoch allocator's provenance, so the collector's
/// pool-aware drop path can return the memory to the slab pool uniformly.
struct Pool {
    items: RefCell<Vec<DescPtr>>,
}

/// A pooled, fully reset descriptor (thread-local container; never sent).
struct DescPtr(*mut Descriptor);

impl Drop for Pool {
    fn drop(&mut self) {
        for DescPtr(raw) in self.items.borrow_mut().drain(..) {
            flock_epoch::debug_track_alloc(raw);
            // SAFETY: pool entries were fully reset and are reachable only
            // via possible stale-helper pointers; the orphan retire defers
            // the free past any pinned helper. TLS-destructor-safe variant.
            unsafe { flock_epoch::retire_orphan(raw) };
        }
    }
}

thread_local! {
    static POOL: Pool = const {
        Pool {
            items: RefCell::new(Vec::new()),
        }
    };
}

/// Model-engine worker reset: drain the calling thread's descriptor pool
/// (as its TLS destructor would), so pooled model workers start every
/// execution with the same (empty) pool a fresh thread has. The drained
/// descriptors may have been published, so they go through the orphan
/// retire, exactly like `Pool::drop`; the model engine frees orphans
/// between executions.
#[cfg(feature = "model")]
pub fn model_drain_descriptor_pool() {
    POOL.with(|p| {
        for DescPtr(raw) in p.items.borrow_mut().drain(..) {
            flock_epoch::debug_track_alloc(raw);
            // SAFETY: pool entries are fully reset and unreachable except
            // via possible stale-helper pointers; orphan retire defers the
            // free past any pinned helper (none live between executions).
            unsafe { flock_epoch::retire_orphan(raw) };
        }
    });
}

/// Create (or recycle) a descriptor holding `f`.
///
/// The returned pointer is fully initialized but not yet published; the
/// caller publishes it by CASing it into a lock word or committing it to a
/// log, both of which order the initialization before any helper's reads.
pub(crate) fn create_descriptor<R, F>(f: F, birth_epoch: u64, nested: bool) -> *mut Descriptor
where
    R: Send + 'static,
    F: Fn() -> R + Send + Sync + 'static,
{
    let raw = match POOL.with(|p| p.items.borrow_mut().pop()) {
        Some(DescPtr(raw)) => {
            flock_epoch::debug_track_alloc(raw);
            raw
        }
        // Fresh slab from the epoch allocator (and through its slab pool
        // when the descriptor fits a size class), so every descriptor has
        // the provenance `flock_epoch::retire` expects.
        None => flock_epoch::alloc(Descriptor::new()),
    };
    // SAFETY: pooled entries are unshared-for-writing (stale helpers may
    // still store the atomic flags, which reinitialization below clears);
    // fresh entries are exclusively ours.
    let d = unsafe { &mut *raw };
    // A stale helper of a previous incarnation may have marked the pooled
    // descriptor `helped` after its reset; clear the flags here, *before*
    // publication, so the marks cannot leak into this incarnation's checks.
    d.done.store(false, Ordering::Relaxed);
    d.panicked.store(false, Ordering::Relaxed);
    d.helped.store(false, Ordering::Relaxed);
    // New incarnation: bump the generation so any helper still holding a
    // pre-recycle observation of this slab fails its generation re-check
    // (the tag-wrap defense in `Lock::help`). Release pairs with the
    // Acquire in `generation()`; the bump is also ordered before any
    // publication of this incarnation by the install CAS / log commit.
    d.generation.fetch_add(1, Ordering::Release);
    d.thunk.set(f);
    // Ordering: Relaxed — pre-publication write, ordered by the install
    // CAS / log commit that later publishes the descriptor (see
    // `birth_epoch`).
    d.birth_epoch.store(birth_epoch, Ordering::Relaxed);
    d.nested = nested;
    raw
}

/// Return an **unshared** descriptor to the pool (install CAM failed at top
/// level, or the idempotent-create race was lost): no other thread has seen
/// it, so it can be reset and reused with no grace period.
///
/// # Safety
///
/// `d` must come from [`create_descriptor`] and must never have been
/// published (not CASed into a lock word, not committed to a log).
pub(crate) unsafe fn recycle_unshared(d: *mut Descriptor) {
    // SAFETY: unshared per contract, so we have exclusive access.
    let desc = unsafe { &mut *d };
    desc.thunk.clear();
    // SAFETY: exclusive access.
    unsafe { desc.first_block.reset() };
    desc.done.store(false, Ordering::Relaxed);
    desc.panicked.store(false, Ordering::Relaxed);
    desc.helped.store(false, Ordering::Relaxed);
    let pooled = POOL.with(|p| {
        let mut pool = p.items.borrow_mut();
        if pool.len() < POOL_CAP {
            flock_epoch::debug_track_dealloc(d, "descriptor-recycle");
            pool.push(DescPtr(d));
            true
        } else {
            false
        }
    });
    if !pooled {
        // Pool full: safe to free immediately since never published
        // (returns the slab to the epoch allocator's pool).
        // SAFETY: unshared per contract; came from `flock_epoch::alloc`.
        unsafe { flock_epoch::free_now(d) };
    }
}

/// Dispose of a finished **top-level** descriptor after its `try_lock`
/// completed: reuse immediately if never helped, otherwise retire through the
/// epoch collector.
///
/// # Safety
///
/// Caller must be the unique owner thread of this top-level descriptor, the
/// lock word must no longer reference it, and the calling thread must be
/// pinned (for the retire path).
pub(crate) unsafe fn dispose_top_level(d: *mut Descriptor) {
    // SAFETY: `d` is valid; owner-only call.
    let helped = unsafe { (*d).was_helped() };
    if !helped && reuse_enabled() {
        // No helper committed to running this descriptor before the lock
        // word stopped referencing it (the helped→revalidate protocol
        // guarantees any running helper's mark is visible by now), so it
        // can be reused. A *stale* helper may still mark `helped` later;
        // that is why published descriptors never leave the pool through a
        // plain free (see `Pool`).
        // SAFETY: ownership argument above; see DESIGN.md §3.
        let desc = unsafe { &mut *d };
        desc.thunk.clear();
        // SAFETY: no running helper (argument above); stale helpers never
        // touch the log.
        unsafe { desc.first_block.reset() };
        desc.done.store(false, Ordering::Relaxed);
        desc.panicked.store(false, Ordering::Relaxed);
        desc.helped.store(false, Ordering::Relaxed);
        let pooled = POOL.with(|p| {
            let mut pool = p.items.borrow_mut();
            if pool.len() < POOL_CAP {
                flock_epoch::debug_track_dealloc(d, "descriptor-recycle");
                pool.push(DescPtr(d));
                true
            } else {
                false
            }
        });
        if !pooled {
            // Pool full: must not free immediately (stale helpers), so
            // hand the memory to the collector instead.
            // SAFETY: unreferenced by the lock word; retired once.
            unsafe { flock_epoch::retire(d) };
        }
    } else {
        // SAFETY: pinned per contract; descriptor unreachable from the lock
        // word; stray helpers hold epoch protection.
        unsafe { flock_epoch::retire(d) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::AtomicUsize;

    /// Run `d`'s thunk and read back its typed result.
    ///
    /// # Safety
    ///
    /// `R` must be the exact return type `d`'s closure was created with.
    unsafe fn call_for<R: Send + 'static>(d: *const Descriptor) -> R {
        let mut out = std::mem::MaybeUninit::<R>::uninit();
        // SAFETY: d live per caller; out slot matches R per caller.
        unsafe { (*d).call_thunk(out.as_mut_ptr().cast()) };
        // SAFETY: call_thunk wrote the slot.
        unsafe { out.assume_init() }
    }

    #[test]
    fn inline_thunk_roundtrip() {
        let x = 41u64;
        let d = create_descriptor(move || x + 1 == 42, 0, false);
        // SAFETY: d is live and unshared.
        unsafe {
            assert!(call_for::<bool>(d));
            assert!(!(*d).is_done());
            recycle_unshared(d);
        }
    }

    #[test]
    fn big_thunk_spills_to_box() {
        let big = [7u64; 64]; // 512 bytes of captures
        let d = create_descriptor(move || big.iter().sum::<u64>() == 7 * 64, 0, false);
        // SAFETY: d is live and unshared.
        unsafe {
            assert!(call_for::<bool>(d));
            recycle_unshared(d);
        }
    }

    #[test]
    fn non_bool_results_roundtrip() {
        let d = create_descriptor(|| Some(17u64), 0, false);
        // SAFETY: d is live and unshared; R matches.
        unsafe {
            assert_eq!(call_for::<Option<u64>>(d), Some(17));
            // Helper-style discard run: result dropped in place.
            (*d).call_thunk(std::ptr::null_mut());
            recycle_unshared(d);
        }
    }

    #[test]
    fn discarded_result_is_dropped() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&drops);
        let d = create_descriptor(move || Probe(Arc::clone(&d2)), 0, false);
        // SAFETY: d is live and unshared.
        unsafe {
            (*d).call_thunk(std::ptr::null_mut());
            assert_eq!(drops.load(Ordering::Relaxed), 1, "discarded result dropped");
            recycle_unshared(d);
        }
    }

    #[test]
    fn closure_dropped_on_recycle() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let probe = Probe(Arc::clone(&drops));
        let d = create_descriptor(move || !std::ptr::eq(&probe.0, std::ptr::null()), 0, false);
        // SAFETY: d is live and unshared.
        unsafe { recycle_unshared(d) };
        assert_eq!(drops.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_reuses_descriptors() {
        let d1 = create_descriptor(|| true, 0, false);
        let addr1 = d1 as usize;
        // SAFETY: unshared.
        unsafe { recycle_unshared(d1) };
        let d2 = create_descriptor(|| false, 0, false);
        assert_eq!(d2 as usize, addr1, "pool should hand back the same slab");
        // SAFETY: unshared.
        unsafe { recycle_unshared(d2) };
    }

    #[test]
    fn flags_roundtrip() {
        let d = create_descriptor(|| true, 5, true);
        // SAFETY: d is live and unshared.
        unsafe {
            assert_eq!((*d).birth_epoch(), 5);
            assert!((*d).is_nested());
            assert!(!(*d).was_helped());
            (*d).mark_helped();
            assert!((*d).was_helped());
            (*d).set_done();
            assert!((*d).is_done());
            // nested descriptors are never pool-recycled in production, but
            // the unshared path is fine for a test teardown since nothing
            // else saw it. Reset flags manually to satisfy the debug assert.
            (*d).done.store(false, Ordering::SeqCst);
            (*d).helped.store(false, Ordering::SeqCst);
            recycle_unshared(d);
        }
    }
}
