//! Pluggable **lock admission**: who gets a contended lock next.
//!
//! The paper's lock-free lock leaves admission implicit: every strict-lock
//! waiter races a CAS to install its descriptor on the lock word, and the
//! cache-luckiest thread wins. That is the fastest policy and the one every
//! benchmark in the paper uses, but under a hot lock it is measurably
//! unfair — the same core can win the race many times in a row while other
//! threads starve (see EXPERIMENTS.md §11). This module factors the
//! admission decision out of `Lock` into a compile-time strategy so the
//! race stays the zero-cost default while a FIFO-ish **constant handoff**
//! variant can be selected per lock:
//!
//! * [`Race`] — CAS-race admission, exactly the paper's behavior. Every
//!   hook is an inlined no-op; `Lock`'s strict-acquire loop instantiated at
//!   `Race` compiles to the same code the pre-policy implementation had
//!   (the CI bench gate keeps this honest).
//! * [`Fifo`] — arriving strict-lock waiters publish an **arrival word**
//!   ([`flock_sync::wait_slot`]): which lock, a global arrival ticket, and
//!   the descriptor (pointer + slab generation) they want installed. A
//!   releasing owner scans for the oldest eligible arrival and CAMs the
//!   lock word *directly* from its own descriptor to the waiter's — a
//!   constant handoff that never reopens the race. Younger waiters defer
//!   installation while an older eligible arrival is published — and a
//!   younger waiter that finds the word *unlocked* anyway does not merely
//!   spin: it installs the oldest arrival's descriptor on its behalf
//!   (**proxy admission**, [`Admit::Proxy`]) and helps run it, so the
//!   queue head is admitted in ticket order even while its thread is
//!   descheduled.
//!
//! ## Why FIFO handoff keeps lock-free progress
//!
//! Queue locks convoy: if the thread at the head of the queue stalls, every
//! successor waits behind it. Flock's descriptors dissolve the convoy in
//! both directions:
//!
//! * A **stalled waiter that was handed the lock** holds it only in the
//!   sense that its *descriptor* is installed — any helper (including the
//!   other waiters' wait loops) runs the thunk to completion on its behalf,
//!   exactly as for a stalled CAS-race winner.
//! * A **stalled waiter that was never handed the lock** is skippable: its
//!   eligibility is revalidated on every scan ([`candidate_eligible`]), so
//!   once its descriptor completes (run by anyone) its slot stops matching
//!   and both the handoff scan and younger waiters' deference ignore it.
//! * Deference itself is **bounded** ([`DEFER_LIMIT`]): a waiter that has
//!   deferred that many times installs anyway. Fairness degrades to the
//!   race; progress never blocks on another thread's scheduling.
//!
//! ## Safety argument for the handoff
//!
//! The releasing owner scans and CAMs **while still holding the lock**: the
//! lock word provably contains the owner's own descriptor until the handoff
//! CAM itself. A candidate accepted by [`candidate_eligible`] (generation
//! matches the published value, not done) is therefore a descriptor whose
//! owner is currently in its wait loop — waiters retract or republish their
//! slot only *after* their descriptor is done — so installing it effects
//! exactly the install the waiter itself was waiting to perform. Torn slot
//! reads (module docs in `wait_slot`) fail the generation check and are
//! skipped. The CAM goes through `Mutable::cam_in`, which re-reads the word
//! and compares values before swapping: if a helper already completed and
//! released the owner's descriptor (so the owner no longer holds the lock),
//! the handoff degrades to a silent no-op and the lock stays released.
//!
//! **Proxy admission** installs from an *unlocked* word without holding
//! the lock, so its safety leans on two extra facts. First, an unlocked
//! word means every previously-installed descriptor already released, and
//! release is sequenced after `set_done` — so a scanned candidate that
//! passes the `!done` check was never installed, or the install raced and
//! the value-compared CAM fails harmlessly. Second, the scanning waiter
//! holds an epoch pin for the whole wait, and published descriptors only
//! retire through the epoch collector (see [`Fifo::arrive`]): a candidate
//! that completes between scan and CAM cannot be reinitialized under the
//! scanner's feet, so the worst case is installing an already-done
//! descriptor — which helpers replay as a no-op and release.
//!
//! Admission is a **per-lock property fixed at construction**
//! ([`Lock::new_with`](crate::Lock::new_with)), carried in dedicated low
//! bits of the lock word so that every unlock CAM — owner, helper, or
//! blocking-mode release — preserves it for free.

use flock_sync::chaos::{self, Seam};
use flock_sync::{ThreadCtx, wait_slot};

use crate::descriptor::Descriptor;

/// Runtime selector for a lock's admission policy. The policy is stamped
/// on the lock word at construction ([`Lock::new_with`](crate::Lock::new_with))
/// and never changes; `Lock::new` reads the process default from
/// [`crate::config::default_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Admission {
    /// CAS-race admission — the paper's implicit policy and the default.
    /// Fastest; fairness is whatever the cache hierarchy hands out.
    #[default]
    Race,
    /// FIFO-ish constant handoff — releasing owners hand the lock word to
    /// the oldest published waiter. Bounded unfairness under contention at
    /// some throughput cost; lock-free progress is preserved (module docs).
    Fifo,
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Race {}
    impl Sealed for super::Fifo {}
}

/// Marker trait for admission policy types ([`Race`], [`Fifo`]). Sealed:
/// the policy hooks pattern-match on crate-internal protocol state
/// (descriptors, lock words), so external policies cannot be supported
/// without exposing the protocol's unsafe internals.
pub trait AdmissionPolicy: sealed::Sealed + 'static {}

/// CAS-race admission (zero-sized). See [`Admission::Race`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Race;

/// FIFO constant-handoff admission (zero-sized). See [`Admission::Fifo`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl AdmissionPolicy for Race {}
impl AdmissionPolicy for Fifo {}

/// How many times a FIFO waiter defers installation to an older published
/// arrival before installing anyway (barging). This is the lock-freedom
/// valve: an older waiter whose thread is descheduled forever must not
/// block younger waiters, and once its descriptor is completed by a helper
/// it stops being deferred to at all — the limit only matters in the window
/// before any helper runs it. The limit must sit well above any plausible
/// waiter count: with proxy admission each deferral *installs* the older
/// arrival (so deferrals make progress for the queue), and a limit near the
/// thread count lets a freshly-arrived waiter under full contention burn
/// through its budget on legitimately-older arrivals and then barge —
/// reintroducing race-style admission exactly in the regime the policy
/// exists for. Small under the model checker to keep exhaustive
/// interleaving counts tractable while still exploring the barge path.
pub(crate) const DEFER_LIMIT: u32 = if cfg!(feature = "model") { 3 } else { 4096 };

/// What a waiter that found the lock word **unlocked** should do with it,
/// per its admission policy.
pub(crate) enum Admit {
    /// Install this waiter's own descriptor (race winner, front of the
    /// queue, or past the deference bound).
    Own,
    /// An **older** published arrival exists: install *its* descriptor on
    /// the word instead (proxy admission), then keep waiting. Without this,
    /// an unlocked word whose oldest waiter is descheduled makes every
    /// younger waiter spin uselessly until the deference bound — the
    /// admission-side analogue of helping, and the reason FIFO order
    /// survives oversubscription (the queue head need not be running to be
    /// admitted).
    Proxy(*const Descriptor),
}

/// Crate-internal admission hooks, implemented by [`Race`] and [`Fifo`].
/// Split from the public sealed marker because the hook signatures mention
/// `pub(crate)` protocol types. `Lock`'s strict-acquire loop is generic
/// over this trait; `Race`'s inlined no-ops make that instantiation
/// compile to the pre-policy code exactly.
pub(crate) trait AdmissionOps: AdmissionPolicy {
    /// Does this policy hand the lock word off at release (and must the
    /// wait loop therefore watch for its own descriptor being installed)?
    const HANDOFF: bool;

    /// Per-wait state created by [`Self::arrive`]. `Fifo`'s arrival clears
    /// its wait slot on drop, so departure is automatic on every exit path
    /// from the wait loop — including unwinds.
    type Arrival;

    /// Called once per strict-lock wait, after the descriptor is created
    /// and before the wait loop's first iteration.
    fn arrive(tc: &ThreadCtx, lock_addr: usize, d: *const Descriptor) -> Self::Arrival;

    /// The waiter observed the lock word unlocked: may it install its own
    /// descriptor, or should an older arrival be admitted first?
    fn admit(lock_addr: usize, arrival: &mut Self::Arrival) -> Admit;
}

impl AdmissionOps for Race {
    const HANDOFF: bool = false;
    type Arrival = ();

    #[inline(always)]
    fn arrive(_tc: &ThreadCtx, _lock_addr: usize, _d: *const Descriptor) {}

    #[inline(always)]
    fn admit(_lock_addr: usize, _arrival: &mut ()) -> Admit {
        Admit::Own
    }
}

/// A FIFO waiter's published arrival. Dropped (and the slot thereby
/// retracted) only **after** the wait concludes — the waiter's descriptor
/// is done by then, so the stale slot is inert: [`candidate_eligible`]
/// rejects done descriptors, which is exactly what makes that revalidation
/// load-bearing (and its removal a catchable mutant, see `mutants`).
pub(crate) struct FifoArrival {
    tid: usize,
    ticket: u64,
    deferrals: u32,
}

impl Drop for FifoArrival {
    fn drop(&mut self) {
        wait_slot::clear(self.tid);
    }
}

impl AdmissionOps for Fifo {
    const HANDOFF: bool = true;
    type Arrival = FifoArrival;

    fn arrive(tc: &ThreadCtx, lock_addr: usize, d: *const Descriptor) -> FifoArrival {
        let tid = tc.tid().0;
        let ticket = wait_slot::next_ticket();
        // SAFETY: `d` is this thread's own just-created, not-yet-installed
        // descriptor; reading its generation is trivially in-lifetime.
        let generation = unsafe { (*d).generation() };
        // Publishing the descriptor in a wait slot shares it with handoff
        // and deference scanners, so it must never take the immediate-reuse
        // path on completion: a scanner still pinned from before our
        // departure could otherwise observe the slab mid-reinitialization
        // (`done` already cleared, generation not yet bumped, thunk not yet
        // set) and hand the lock to a half-built descriptor. Marking it
        // helped up front forces `dispose_top_level` through the epoch
        // collector, whose grace period outlasts every such scanner.
        // SAFETY: as above.
        unsafe { (*d).mark_helped() };
        wait_slot::publish(tid, lock_addr, ticket, d as u64, generation);
        // Slot is public but the wait loop has not started: the convoy
        // hazard seam (a thread parked here forever may still be handed
        // the lock; helpers and the done-check keep everyone else moving).
        chaos::probe(Seam::FifoArrived);
        FifoArrival {
            tid,
            ticket,
            deferrals: 0,
        }
    }

    fn admit(lock_addr: usize, arrival: &mut FifoArrival) -> Admit {
        if arrival.deferrals >= DEFER_LIMIT {
            // Bounded deference: prefer progress over fairness from here on.
            return Admit::Own;
        }
        match wait_slot::oldest_waiter(lock_addr, candidate_eligible) {
            Some(w) if w.ticket < arrival.ticket => {
                arrival.deferrals += 1;
                Admit::Proxy(w.desc as usize as *const Descriptor)
            }
            _ => Admit::Own,
        }
    }
}

/// Is a scanned `(desc, generation)` arrival candidate still worth granting the
/// lock to? Shared by the releasing owner's handoff scan and younger
/// waiters' deference checks.
///
/// Rejects candidates whose descriptor slab has been reincarnated since
/// publication (generation mismatch — also covers torn slot reads) and
/// candidates whose operation already completed (done — covers both
/// helper-completed waiters, which must be *skipped not convoyed behind*,
/// and the publisher's own slot in the release-to-depart window).
///
/// # Safety of the dereference
///
/// `desc` was published as a real `Descriptor` pointer, and descriptor
/// slabs are never returned to the allocator once they may have been
/// shared — retirement recycles them through the epoch collector into the
/// immortal slab pool (`descriptor.rs` module docs). Reading the atomic
/// `generation`/`done` words of a recycled slab is therefore always a
/// valid (if stale) read; staleness is exactly what the generation
/// comparison then filters.
pub(crate) fn candidate_eligible(desc: u64, generation: u64) -> bool {
    let d = desc as usize as *const Descriptor;
    if d.is_null() {
        return false;
    }
    #[cfg(feature = "model")]
    if crate::mutants::fifo_skip_validation() {
        return true;
    }
    // SAFETY: see the function docs — published descriptor slabs are
    // immortal, so the atomic field reads are always in-bounds.
    unsafe { (*d).generation() == generation && !(*d).is_done() }
}
