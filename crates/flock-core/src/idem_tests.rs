//! White-box idempotence tests: run the *same* descriptor several times —
//! sequentially and racing — and assert the thunk's effects apply exactly
//! once and every run externalizes identical results (the paper's
//! Definition 1, exercised directly against the internals).

#![cfg(test)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use crate::ctx;
use crate::descriptor::{create_descriptor, recycle_unshared};
use crate::mutable::{Mutable, commit_value};
use crate::{LockMode, set_lock_mode};

static MODE: Mutex<()> = Mutex::new(());

fn locked_lf() -> std::sync::MutexGuard<'static, ()> {
    let g = MODE.lock().unwrap_or_else(|e| e.into_inner());
    set_lock_mode(LockMode::LockFree);
    g
}

/// Run `d` and read back its `bool` result (all descriptors in this file
/// are created from bool-returning thunks).
///
/// # Safety
///
/// `d` must be live and created from a `Fn() -> bool` thunk.
unsafe fn run_bool(d: *const crate::descriptor::Descriptor) -> bool {
    let mut out = std::mem::MaybeUninit::<bool>::uninit();
    // SAFETY: forwarded contract; out slot matches the thunk's return type.
    flock_sync::thread_ctx::with(|tc| unsafe { ctx::run_in(tc, d, out.as_mut_ptr().cast()) });
    // SAFETY: run wrote the slot.
    unsafe { out.assume_init() }
}

#[test]
fn sequential_reruns_apply_once() {
    let _m = locked_lf();
    let counter = Arc::new(Mutable::new(0u32));
    let c = Arc::clone(&counter);
    let d = create_descriptor(
        move || {
            c.store(c.load() + 1);
            true
        },
        0,
        false,
    );
    // Five runs of the same descriptor: one effect.
    for _ in 0..5 {
        // SAFETY: descriptor is live and owned by this test.
        assert!(unsafe { run_bool(d) });
    }
    assert_eq!(counter.load(), 1, "increment must apply exactly once");
    // SAFETY: never published to a lock word or log.
    unsafe { recycle_unshared(d) };
}

#[test]
fn reruns_agree_on_committed_nondeterminism() {
    let _m = locked_lf();
    let observed = Arc::new(Mutex::new(Vec::new()));
    let ticket = Arc::new(AtomicU64::new(100));
    let (obs, tk) = (Arc::clone(&observed), Arc::clone(&ticket));
    let d = create_descriptor(
        move || {
            // A genuinely nondeterministic input (different every call),
            // made deterministic by committing it to the log.
            let raw = tk.fetch_add(1, Ordering::SeqCst);
            let agreed = commit_value(raw);
            obs.lock().unwrap().push(agreed);
            true
        },
        0,
        false,
    );
    for _ in 0..4 {
        // SAFETY: live, test-owned descriptor.
        assert!(unsafe { run_bool(d) });
    }
    let seen = observed.lock().unwrap().clone();
    assert_eq!(seen.len(), 4);
    assert!(
        seen.iter().all(|&v| v == seen[0]),
        "all runs must observe the first committed value: {seen:?}"
    );
    assert_eq!(seen[0], 100, "the first run's value wins");
    // SAFETY: never published.
    unsafe { recycle_unshared(d) };
}

#[test]
fn racing_runs_apply_once() {
    let _m = locked_lf();
    for _round in 0..20 {
        let a = Arc::new(Mutable::new(0u32));
        let b = Arc::new(Mutable::new(1000u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let d = create_descriptor(
            move || {
                // A multi-step critical section with data flow between
                // locations — the kind of thing naive replay would corrupt.
                let x = a2.load();
                a2.store(x + 1);
                let y = b2.load();
                b2.store(y + x + 1);
                true
            },
            0,
            false,
        );
        let start = Arc::new(Barrier::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let start = Arc::clone(&start);
                let dp = crate::Sp(d);
                s.spawn(move || {
                    start.wait();
                    // SAFETY: the descriptor outlives the scope; runs of a
                    // thunk are exactly what idempotence makes safe.
                    assert!(unsafe { run_bool(dp.ptr()) });
                });
            }
        });
        assert_eq!(a.load(), 1, "store to a applied once");
        assert_eq!(b.load(), 1001, "store to b applied once");
        // SAFETY: runs finished (scope joined); never published.
        unsafe { recycle_unshared(d) };
    }
}

#[test]
fn racing_alloc_and_retire_exactly_once() {
    let _m = locked_lf();
    for _round in 0..20 {
        let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
        let s2 = Arc::clone(&slot);
        let d = create_descriptor(
            move || {
                let fresh = crate::alloc(|| 7u64);
                s2.store(fresh);
                true
            },
            0,
            false,
        );
        let start = Arc::new(Barrier::new(4));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let start = Arc::clone(&start);
                let dp = crate::Sp(d);
                s.spawn(move || {
                    let _g = flock_epoch::pin();
                    start.wait();
                    // SAFETY: as in racing_runs_apply_once.
                    unsafe { run_bool(dp.ptr()) };
                });
            }
        });
        // All runs agreed on one allocation; it is linked and intact.
        let p = slot.load();
        assert!(!p.is_null());
        // SAFETY: winner allocation is live (losers were freed privately;
        // the debug double-free tracker would catch any mistake).
        assert_eq!(unsafe { *p }, 7);
        let _g = flock_epoch::pin();
        // SAFETY: unlinked here; retired once.
        unsafe { crate::retire(p) };
        // SAFETY: never published.
        unsafe { recycle_unshared(d) };
    }
    flock_epoch::flush_all();
}

#[test]
fn long_thunk_spans_many_log_blocks() {
    let _m = locked_lf();
    let cells: Arc<Vec<Mutable<u32>>> = Arc::new((0..64).map(Mutable::new).collect());
    let c = Arc::clone(&cells);
    let d = create_descriptor(
        move || {
            // 64 loads + 64 stores = 192 log entries >> one 7-entry block.
            for m in c.iter() {
                m.store(m.load() + 1);
            }
            true
        },
        0,
        false,
    );
    for _ in 0..3 {
        // SAFETY: live, test-owned.
        assert!(unsafe { run_bool(d) });
    }
    for (i, m) in cells.iter().enumerate() {
        assert_eq!(m.load(), i as u32 + 1, "cell {i} bumped exactly once");
    }
    // SAFETY: never published (extension blocks freed by recycle).
    unsafe { recycle_unshared(d) };
}

#[test]
fn interleaved_runs_of_two_descriptors_stay_isolated() {
    let _m = locked_lf();
    let x = Arc::new(Mutable::new(0u32));
    let (x1, x2) = (Arc::clone(&x), Arc::clone(&x));
    let d1 = create_descriptor(
        move || {
            x1.store(x1.load() + 1);
            true
        },
        0,
        false,
    );
    let d2 = create_descriptor(
        move || {
            x2.store(x2.load() + 10);
            true
        },
        0,
        false,
    );
    // Interleave replays: 1,2,1,2. Each applies once.
    for _ in 0..2 {
        // SAFETY: live, test-owned descriptors.
        unsafe {
            run_bool(d1);
            run_bool(d2);
        }
    }
    assert_eq!(x.load(), 11);
    // SAFETY: never published.
    unsafe {
        recycle_unshared(d1);
        recycle_unshared(d2);
    }
}
