//! Ambient per-thread execution context: current log, position, descriptor.
//!
//! Mirrors the paper's process-local `log` and `position` variables
//! (Algorithm 2, lines 4–6). `run` installs a descriptor's log, runs its
//! thunk, and restores the previous context, which is what makes nested
//! thunks work.

use std::cell::Cell;

use crate::descriptor::Descriptor;
use crate::log::{EMPTY, LOG_BLOCK_ENTRIES, LogBlock};

#[derive(Clone, Copy)]
struct CtxState {
    /// Current log block, null when not running a thunk.
    block: *const LogBlock,
    /// Position within the current block.
    pos: usize,
    /// Descriptor being run, null at top level.
    descr: *const Descriptor,
}

const TOP_LEVEL: CtxState = CtxState {
    block: std::ptr::null(),
    pos: 0,
    descr: std::ptr::null(),
};

thread_local! {
    static CTX: Cell<CtxState> = const { Cell::new(TOP_LEVEL) };
}

/// Is the calling thread currently running a thunk (logging enabled)?
#[inline]
pub fn in_thunk() -> bool {
    CTX.with(|c| !c.get().block.is_null())
}

/// The descriptor currently being run by this thread, if any.
#[inline]
pub(crate) fn current_descriptor() -> *const Descriptor {
    CTX.with(|c| c.get().descr)
}

/// Commit `val` to the current thunk log, advancing the position.
///
/// Returns `(committed_value, was_first)`. Outside any thunk this is the
/// paper's line 32 fast path: the input comes straight back with
/// `was_first = true` and nothing is logged.
#[inline]
pub fn commit_raw(val: u64) -> (u64, bool) {
    debug_assert_ne!(val, EMPTY, "cannot commit the EMPTY sentinel");
    CTX.with(|c| {
        let mut s = c.get();
        if s.block.is_null() {
            return (val, true);
        }
        // SAFETY: `s.block` points to the running descriptor's log, which is
        // kept alive for at least as long as any thread can be running the
        // thunk (epoch-protected or owner-held).
        let mut block = unsafe { &*s.block };
        if s.pos == LOG_BLOCK_ENTRIES {
            let next = block.next_or_extend();
            s.block = next;
            s.pos = 0;
            // SAFETY: `next_or_extend` returns a valid block in the same
            // chain, protected by the same lifetime argument.
            block = unsafe { &*next };
        }
        let (committed, first) = block.commit_at(s.pos, val);
        s.pos += 1;
        c.set(s);
        (committed, first)
    })
}

/// Run descriptor `d`'s thunk under its log (paper Algorithm 2, `run`).
///
/// Saves the caller's context, installs `d`'s log at position 0, runs the
/// thunk, and restores the caller's context — even on unwind, so a panicking
/// thunk does not poison the thread for unrelated operations.
///
/// The thunk's result is written to `out` when non-null and dropped
/// otherwise (the helper path: helpers replay thunks for their logged
/// effects only). Because every load inside a thunk is committed to the
/// shared log, replays compute the identical result, so the owner can
/// recover the value by re-running even after being helped to completion.
///
/// # Safety
///
/// `d` must point to a live, initialized descriptor whose thunk and log stay
/// valid for the duration of the call (owner-held, or epoch-protected after
/// the helping protocol's revalidation). `out` must be null or point at an
/// uninitialized slot of the thunk's exact return type.
pub(crate) unsafe fn run(d: *const Descriptor, out: *mut u8) {
    struct Restore(CtxState);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| c.set(self.0));
        }
    }

    let saved = CTX.with(|c| c.get());
    let _restore = Restore(saved);
    // SAFETY: caller guarantees `d` is live and initialized.
    let dref = unsafe { &*d };
    CTX.with(|c| {
        c.set(CtxState {
            block: dref.first_block() as *const LogBlock,
            pos: 0,
            descr: d,
        })
    });
    // SAFETY: `out` per forwarded contract.
    unsafe { dref.call_thunk(out) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_commit_passes_through() {
        assert!(!in_thunk());
        let (v, first) = commit_raw(123);
        assert_eq!(v, 123);
        assert!(first);
    }

    #[test]
    fn top_level_has_no_descriptor() {
        assert!(current_descriptor().is_null());
    }
}
