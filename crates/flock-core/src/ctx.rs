//! Ambient per-thread execution context: current log, position, descriptor.
//!
//! Mirrors the paper's process-local `log` and `position` variables
//! (Algorithm 2, lines 4–6). `run_in` installs a descriptor's log, runs its
//! thunk, and restores the previous context, which is what makes nested
//! thunks work.
//!
//! The state itself lives in the workspace-wide single thread-local,
//! [`flock_sync::ThreadCtx`] (`log_block` / `log_pos` / `descriptor`, all
//! null/zero at top level). Hot paths fetch the context **once** via
//! `thread_ctx::with` and pass it down by reference; the `*_in` functions
//! here are those reference-taking forms, and the public wrappers exist for
//! call sites outside an operation.

use flock_sync::{ThreadCtx, thread_ctx};

use crate::descriptor::Descriptor;
use crate::log::{EMPTY, LOG_BLOCK_ENTRIES, LogBlock};

/// Is the calling thread currently running a thunk (logging enabled)?
#[inline]
pub fn in_thunk() -> bool {
    thread_ctx::with(|tc| tc.in_thunk())
}

/// Commit `val` to the current thunk log, advancing the position.
///
/// Returns `(committed_value, was_first)`. Outside any thunk this is the
/// paper's line 32 fast path: the input comes straight back with
/// `was_first = true` and nothing is logged.
#[inline]
pub fn commit_raw(val: u64) -> (u64, bool) {
    thread_ctx::with(|tc| commit_raw_in(tc, val))
}

/// [`commit_raw`] against an already-fetched thread context.
#[inline]
pub(crate) fn commit_raw_in(tc: &ThreadCtx, val: u64) -> (u64, bool) {
    debug_assert_ne!(val, EMPTY, "cannot commit the EMPTY sentinel");
    let block = tc.log_block.get() as *const LogBlock;
    if block.is_null() {
        return (val, true);
    }
    // SAFETY: `log_block` points to the running descriptor's log, which is
    // kept alive for at least as long as any thread can be running the
    // thunk (epoch-protected or owner-held).
    let mut block_ref = unsafe { &*block };
    let mut pos = tc.log_pos.get();
    if pos == LOG_BLOCK_ENTRIES {
        let next = block_ref.next_or_extend();
        tc.log_block.set(next as *const ());
        pos = 0;
        // SAFETY: `next_or_extend` returns a valid block in the same
        // chain, protected by the same lifetime argument.
        block_ref = unsafe { &*next };
    }
    let (committed, first) = block_ref.commit_at(pos, val);
    tc.log_pos.set(pos + 1);
    (committed, first)
}

/// Run descriptor `d`'s thunk under its log (paper Algorithm 2, `run`).
///
/// Saves the caller's context, installs `d`'s log at position 0, runs the
/// thunk, and restores the caller's context — even on unwind, so a panicking
/// thunk does not poison the thread for unrelated operations.
///
/// The thunk's result is written to `out` when non-null and dropped
/// otherwise (the helper path: helpers replay thunks for their logged
/// effects only). Because every load inside a thunk is committed to the
/// shared log, replays compute the identical result, so the owner can
/// recover the value by re-running even after being helped to completion.
///
/// # Safety
///
/// `d` must point to a live, initialized descriptor whose thunk and log stay
/// valid for the duration of the call (owner-held, or epoch-protected after
/// the helping protocol's revalidation). `out` must be null or point at an
/// uninitialized slot of the thunk's exact return type. `tc` must be the
/// calling thread's context.
pub(crate) unsafe fn run_in(tc: &ThreadCtx, d: *const Descriptor, out: *mut u8) {
    struct Restore<'a> {
        tc: &'a ThreadCtx,
        block: *const (),
        pos: usize,
        descr: *const (),
    }
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            self.tc.log_block.set(self.block);
            self.tc.log_pos.set(self.pos);
            self.tc.descriptor.set(self.descr);
        }
    }

    let _restore = Restore {
        tc,
        block: tc.log_block.get(),
        pos: tc.log_pos.get(),
        descr: tc.descriptor.get(),
    };
    // SAFETY: caller guarantees `d` is live and initialized.
    let dref = unsafe { &*d };
    tc.log_block
        .set(dref.first_block() as *const LogBlock as *const ());
    tc.log_pos.set(0);
    tc.descriptor.set(d as *const ());
    // Chaos seam: the thunk context is installed and the body is about to
    // execute — a stall here parks this runner mid-critical-section, a
    // panic here unwinds out of "the thunk" (the Restore guard above plus
    // the callers' panic handling keep both survivable). No-op by default.
    flock_sync::chaos::probe(flock_sync::chaos::Seam::InThunk);
    // SAFETY: `out` per forwarded contract.
    unsafe { dref.call_thunk(out) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_commit_passes_through() {
        assert!(!in_thunk());
        let (v, first) = commit_raw(123);
        assert_eq!(v, 123);
        assert!(first);
    }

    #[test]
    fn top_level_has_no_descriptor() {
        thread_ctx::with(|tc| assert!(tc.descriptor.get().is_null()));
    }
}
