//! # flock-core — lock-free locks via log-based idempotence
//!
//! The primary contribution of *"Lock-Free Locks Revisited"* (Ben-David,
//! Blelloch, Wei — PPoPP 2022), in Rust. Write critical sections as ordinary
//! closures over fine-grained locks; run them either **lock-free** — where a
//! thread that finds a lock taken *helps* the holder finish and release —
//! or **blocking** (plain spin locks), switched at runtime with
//! [`set_lock_mode`].
//!
//! ## The three layers
//!
//! 1. **Idempotence** ([`Mutable`], [`UpdateOnce`], [`commit_value`],
//!    [`alloc`], [`retire`]): a critical section (*thunk*) may be run
//!    concurrently by many helpers; a shared per-thunk *log* makes all runs
//!    observe identical values, so the thunk's effects apply exactly once.
//!    All the user must do is wrap shared mutable locations in [`Mutable`]
//!    and allocate/retire through this module.
//! 2. **Locks** ([`Lock::try_lock`], [`Lock::lock`], [`Lock::unlock_early`],
//!    and the packaged [`Locked<T>`] cell): ~20 lines over idempotent
//!    operations (paper Algorithm 3). Locks nest; thunks are generic over
//!    their result type, and try-locks return `None` instead of waiting —
//!    which is what optimistic fine-grained data structures want, without
//!    conflating "lock busy" with the thunk's own result.
//! 3. **Memory reclamation** (re-exported from [`flock_epoch`]): epoch-based,
//!    with helpers adopting the epoch of the thunk they help.
//!
//! ## Example: a guarded account with a typed result
//!
//! ```
//! use flock_core::{Locked, Mutable};
//!
//! let account = Locked::new(Mutable::new(100u32));
//!
//! // `None` would mean "lock busy"; the withdrawal outcome is the
//! // closure's own, separately typed result.
//! let withdrew = account.try_with(|balance| {
//!     let b = balance.load();
//!     if b < 30 { return false; }
//!     balance.store(b - 30);
//!     true
//! });
//! assert_eq!(withdrew, Some(true));
//! assert_eq!(account.load(), 70);
//! ```
//!
//! For structures that weave locks through their own nodes, the bare
//! [`Lock`] + [`Mutable`] layer is the right altitude; `Locked<T>` is the
//! packaged form of the common "one lock, one record" pattern.

#![warn(missing_docs)]

pub mod admission;
pub mod config;
mod ctx;
mod descriptor;
#[cfg(test)]
mod idem_tests;
mod idemp;
mod lock;
mod locked;
mod log;
mod mutable;
/// Model-only sanity mutants (see the `flock-model` crate). Compiled out of
/// every non-`model` build.
#[cfg(feature = "model")]
pub mod mutants;
mod value_slot;

pub use admission::{Admission, AdmissionPolicy, Fifo, Race};
pub use config::{default_admission, lock_mode, set_default_admission, set_helping, set_lock_mode};
pub use ctx::in_thunk;
#[cfg(feature = "model")]
pub use descriptor::model_drain_descriptor_pool;
pub use descriptor::set_descriptor_reuse;
pub use idemp::{alloc, retire};
#[cfg(feature = "model")]
pub use lock::model_probe;
pub use lock::{Lock, LockMode, LockVersion, OPTIMISTIC_READ_ATTEMPTS, read_validated};
pub use locked::Locked;
pub use log::{EMPTY, LOG_BLOCK_ENTRIES};
pub use mutable::{Mutable, UpdateOnce, commit_value};
pub use value_slot::ValueSlot;

// Re-export the reclamation entry points (and the indirect value
// representation built on them) so data-structure code needs only this
// crate.
pub use flock_epoch::{EpochGuard, Indirect, pin, pin_with};

/// A `Copy + Send + Sync` wrapper for raw pointers captured by thunks.
///
/// Thunks must capture their environment by value and be `Send + Sync +
/// 'static` (helpers may run them from other threads, possibly after the
/// creating stack frame is gone — the same reason the paper's C++ lambdas
/// must capture with `[=]`). Raw pointers are not `Send`/`Sync`, so wrap
/// them in `Sp`; safety is inherited from Flock's epoch reclamation: an `Sp`
/// obtained from a [`Mutable`] load inside an operation is valid for that
/// operation's lifetime.
pub struct Sp<T>(pub *mut T);

impl<T> Sp<T> {
    /// The wrapped pointer.
    #[inline(always)]
    pub fn ptr(&self) -> *mut T {
        self.0
    }

    /// Dereference.
    ///
    /// # Safety
    ///
    /// The pointee must be alive — guaranteed when the pointer was obtained
    /// during the current epoch-pinned operation and retired only through
    /// [`retire`].
    #[inline(always)]
    pub unsafe fn as_ref<'a>(&self) -> &'a T {
        // SAFETY: forwarded caller contract.
        unsafe { &*self.0 }
    }
}

impl<T> Clone for Sp<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Sp<T> {}
impl<T> PartialEq for Sp<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<T> Eq for Sp<T> {}
impl<T> std::fmt::Debug for Sp<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sp({:p})", self.0)
    }
}

// SAFETY: Sp is a plain address; cross-thread validity is provided by the
// epoch collector per the documented contract.
unsafe impl<T> Send for Sp<T> {}
unsafe impl<T> Sync for Sp<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The headline property: if a lock holder stalls forever, others
    /// complete its critical section (lock-free mode only).
    #[test]
    #[cfg_attr(miri, ignore)] // wall-clock park/deadline logic
    fn stalled_holder_is_helped() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        let lock = Arc::new(Lock::new());
        let value = Arc::new(Mutable::new(0u32));
        let entered = Arc::new(std::sync::Barrier::new(2));

        // Thread A: acquires the lock, then stalls forever *inside* the
        // thunk after performing a store. The stall simulates the owner
        // being descheduled, so it must hit only the owning thread: helpers
        // re-run the same thunk and take the fast path. (The park performs
        // no loggable operations, so runs stay log-synchronized.)
        let l = Arc::clone(&lock);
        let v = Arc::clone(&value);
        let e = Arc::clone(&entered);
        let stalled = std::thread::spawn(move || {
            let owner = std::thread::current().id();
            let e2 = Arc::clone(&e);
            let v2 = Arc::clone(&v);
            l.try_lock(move || {
                v2.store(v2.load() + 1);
                if std::thread::current().id() == owner {
                    e2.wait(); // signal "inside the critical section"
                    // Stall long enough that progress must come from helping.
                    std::thread::park_timeout(std::time::Duration::from_secs(600));
                }
            })
        });

        entered.wait();
        // Thread B: its try_lock must help A's section to completion and
        // then be able to acquire the lock itself, without waiting 600s.
        let v2 = Arc::clone(&value);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut acquired = false;
        while std::time::Instant::now() < deadline {
            let v3 = Arc::clone(&v2);
            if lock.try_lock(move || v3.store(v3.load() + 10)).is_some() {
                acquired = true;
                break;
            }
        }
        assert!(
            acquired,
            "helper failed to make progress past a stalled lock holder"
        );
        assert_eq!(
            value.load(),
            11,
            "stalled thunk's store applied exactly once"
        );
        stalled.thread().unpark();
        let _ = stalled.join();
    }

    /// A thunk helped to completion and then re-run by its owner must not
    /// double-apply effects.
    #[test]
    #[cfg_attr(miri, ignore)] // 2k-op concurrency stress, too slow under miri
    fn helped_thunk_applies_once() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        let lock = Arc::new(Lock::new());
        let counter = Arc::new(Mutable::new(0u32));
        let hits = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    let mut done = 0;
                    while done < 500 {
                        let c = Arc::clone(&counter);
                        if lock.try_lock(move || c.store(c.load() + 1)).is_some() {
                            done += 1;
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(counter.load() as usize, hits.load(Ordering::Relaxed));
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 800-op nested-lock stress, slow under miri
    fn nested_trylock_transfer() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        struct Acct {
            lock: Lock,
            bal: Mutable<u32>,
        }
        let a = Arc::new(Acct {
            lock: Lock::new(),
            bal: Mutable::new(100),
        });
        let b = Arc::new(Acct {
            lock: Lock::new(),
            bal: Mutable::new(0),
        });
        // Locks ordered a < b: always take a then b.
        let total = 100u32;
        std::thread::scope(|s| {
            for _ in 0..2 {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                s.spawn(move || {
                    for _ in 0..200 {
                        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                        let _ = a.lock.try_lock(move || {
                            let (a3, b3) = (Arc::clone(&a2), Arc::clone(&b2));
                            b2.lock.try_lock(move || {
                                let ab = a3.bal.load();
                                if ab > 0 {
                                    a3.bal.store(ab - 1);
                                    b3.bal.store(b3.bal.load() + 1);
                                }
                            })
                        });
                        // Move some back the other way too (same order).
                        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                        let _ = a.lock.try_lock(move || {
                            let (a3, b3) = (Arc::clone(&a2), Arc::clone(&b2));
                            b2.lock.try_lock(move || {
                                let bb = b3.bal.load();
                                if bb > 0 {
                                    b3.bal.store(bb - 1);
                                    a3.bal.store(a3.bal.load() + 1);
                                }
                            })
                        });
                    }
                });
            }
        });
        assert_eq!(a.bal.load() + b.bal.load(), total, "money conserved");
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 800-op reclamation stress, slow under miri
    fn idempotent_alloc_retire_under_lock() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        let lock = Arc::new(Lock::new());
        let slot: Arc<Mutable<*mut u64>> = Arc::new(Mutable::new(std::ptr::null_mut()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let lock = Arc::clone(&lock);
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    for i in 0..200 {
                        let slot2 = Arc::clone(&slot);
                        let _ = lock.try_lock(move || {
                            let old = slot2.load();
                            let fresh = alloc(move || t * 1000 + i);
                            slot2.store(fresh);
                            if !old.is_null() {
                                // SAFETY: old was unlinked by the store
                                // above, under the lock; retired once.
                                unsafe { retire(old) };
                            }
                        });
                    }
                });
            }
        });
        let last = slot.load();
        assert!(!last.is_null());
        flock_epoch::flush_all();
        // The final node is still linked; value must be intact (not freed).
        // SAFETY: never retired.
        let v = unsafe { *last };
        assert!(v < 4000);
        let _g = pin();
        // SAFETY: unlinked here, retired once.
        unsafe { retire(last) };
    }
}
