//! Per-node value slots: the shared idempotent value-slot primitive behind
//! every structure's native atomic `Map::update` ([`ValueSlot::set`] is
//! what the `update` overrides call; [`ValueSlot::rmw`] is the general
//! read-modify-write form offered for composed in-thunk critical
//! sections).
//!
//! The paper's central claim is that idempotent lock-free locks compose
//! arbitrary critical sections — including read-modify-write — without
//! giving up atomicity to helping. The structure-side pattern that realizes
//! it (proved on `hashtable` first, now shared by every Flock structure) is
//! always the same choreography:
//!
//! 1. the node that owns a key stores its value in a lock-word-adjacent
//!    [`ValueSlot`] (a [`Mutable<V>`] underneath) instead of a plain field;
//! 2. readers snapshot the slot **without any lock** ([`ValueSlot::read`]):
//!    one atomic load of the packed word, decoded under the caller's epoch
//!    guard for indirect (fat) values — they see the old value or the new
//!    one, never absence and never a third value;
//! 3. writers replace or read-modify-write the slot **inside the owning
//!    lock's thunk** ([`ValueSlot::set`] / [`ValueSlot::rmw`]), after
//!    re-validating that the node still holds the key. The `Mutable` store
//!    machinery makes the write idempotent: all runs of a helped thunk
//!    agree on one new encoding (log commit), exactly one CAS installs it
//!    (tag agreement + announcement), and for indirect values exactly one
//!    displaced encoding is epoch-retired per applied update.
//!
//! Which lock "owns" a slot is the structure's decision — the bucket lock
//! (hashtable), the node's own lock (dlist, lazylist, arttree), or the
//! leaf's parent lock (leaftree, leaftreap, abtree) — but it must be the
//! same lock (or set of locks) whose holder can remove or replace the node,
//! so that "the key is present" stays true for the duration of the thunk.
//! EXPERIMENTS.md §7 tabulates the per-structure placement.

use flock_sync::ValueRepr;

use crate::mutable::Mutable;

/// A per-node value slot with lock-free snapshot reads and idempotent
/// in-thunk replacement — see the module docs for the full choreography.
pub struct ValueSlot<V: ValueRepr> {
    cell: Mutable<V>,
}

impl<V: ValueRepr> ValueSlot<V> {
    /// A new slot holding `v` (allocates for indirect representations).
    pub fn new(v: V) -> Self {
        Self {
            cell: Mutable::new(v),
        }
    }

    /// Snapshot the current value without taking any lock.
    ///
    /// Outside a thunk this is one atomic load (plus an epoch-protected
    /// decode for indirect values — the cell pins itself, so bare callers
    /// are safe); inside a thunk the load is committed to the thunk log so
    /// every run of the thunk observes the same snapshot.
    #[inline]
    pub fn read(&self) -> V {
        self.cell.load()
    }

    /// Optimistic snapshot of the value for version-validated read paths:
    /// one plain `Acquire` load, no thunk-log traffic. Must be bracketed by
    /// the owning lock's version check (see
    /// [`read_validated`](crate::read_validated)) and never called from
    /// inside a thunk; [`ValueSlot::read`] is the committed form.
    #[inline]
    pub fn read_acquire(&self) -> V {
        self.cell.load_acquire()
    }

    /// Replace the stored value.
    ///
    /// Must run inside the owning lock's thunk (or while the slot is
    /// otherwise store-serialized): concurrent `set`/`rmw` on one slot are
    /// outside the model, concurrent [`ValueSlot::read`]s are the point.
    /// Idempotent under helping — one logical store per call, with the
    /// displaced indirect encoding retired exactly once.
    #[inline]
    pub fn set(&self, v: V) {
        self.cell.store(v);
    }

    /// Read-modify-write the stored value in place: replace it with
    /// `f(current)` and return the value that was replaced.
    ///
    /// Same contract as [`ValueSlot::set`], plus: `f` must be deterministic
    /// given its argument — the load below is committed to the thunk log,
    /// so every run of a helped thunk applies `f` to the identical
    /// snapshot and stores the identical result (allocated per run for
    /// indirect values; losers of the encode race free theirs).
    #[inline]
    pub fn rmw(&self, f: impl FnOnce(V) -> V) -> V {
        let old = self.cell.load();
        self.cell.store(f(old.clone()));
        old
    }
}

impl<V: ValueRepr + std::fmt::Debug> std::fmt::Debug for ValueSlot<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ValueSlot").field(&self.cell).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_set_rmw_top_level() {
        let s = ValueSlot::new(5u64);
        assert_eq!(s.read(), 5);
        s.set(7);
        assert_eq!(s.read(), 7);
        assert_eq!(s.rmw(|v| v * 10), 7);
        assert_eq!(s.read(), 70);
    }

    #[test]
    fn indirect_values_roundtrip() {
        use flock_epoch::Indirect;
        let s: ValueSlot<Indirect<Vec<u64>>> = ValueSlot::new(Indirect(vec![1, 2]));
        assert_eq!(s.read(), Indirect(vec![1, 2]));
        s.set(Indirect(vec![3]));
        assert_eq!(s.read(), Indirect(vec![3]));
        let old = s.rmw(|Indirect(mut v)| {
            v.push(4);
            Indirect(v)
        });
        assert_eq!(old, Indirect(vec![3]));
        assert_eq!(s.read(), Indirect(vec![3, 4]));
        drop(s);
        flock_epoch::flush_all();
    }

    /// The headline composition: an in-thunk RMW stays exactly-once under
    /// contention and helping, and concurrent lock-free readers never see a
    /// torn or absent value.
    #[test]
    #[cfg_attr(miri, ignore)] // multi-thread contention stress, slow under miri
    fn rmw_exactly_once_under_helping() {
        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_lock_mode(crate::LockMode::LockFree);
        let lock = Arc::new(crate::Lock::new());
        let slot = Arc::new(ValueSlot::new(0u64));
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let lock = Arc::clone(&lock);
                let slot = Arc::clone(&slot);
                s.spawn(move || {
                    let mut done = 0;
                    while done < PER_THREAD {
                        let s2 = Arc::clone(&slot);
                        if lock.try_lock(move || s2.rmw(|v| v + 1)).is_some() {
                            done += 1;
                        }
                    }
                });
            }
            let slot = Arc::clone(&slot);
            s.spawn(move || {
                for _ in 0..2_000 {
                    let v = slot.read();
                    assert!(v <= THREADS * PER_THREAD, "impossible snapshot {v}");
                }
            });
        });
        assert_eq!(slot.read(), THREADS * PER_THREAD);
    }
}
