//! Lock-free locks (paper §4, Algorithm 3) plus the blocking mode.
//!
//! A [`Lock`] is a single `Mutable` word holding a descriptor pointer and a
//! locked bit. `try_lock` in lock-free mode:
//!
//! 1. Load the lock word (idempotently — this nests).
//! 2. If unlocked: create a descriptor for the thunk, CAM it in, re-load.
//!    If we got in (or got helped to completion), run-and-unlock ourselves
//!    and return the thunk's result. Otherwise help whoever is there and
//!    report failure.
//! 3. If locked: help the installed descriptor, then report failure.
//!
//! Helping wraps `run` in the *observe-generation → mark → adopt →
//! revalidate → run → unlock* protocol: mark the descriptor helped, adopt
//! its epoch, re-read the lock word **and the descriptor's generation
//! counter** (all committed reads), and only run — and only issue the
//! unlock CAM — while both still match the observation. The generation
//! counter is what makes the full-packed-word comparison exact even across
//! a `TAG_LIMIT`-install tag wraparound of one lock word (see
//! [`Lock::help`]); committed reads keep replayers of an enclosing thunk
//! on identical log positions regardless of which branch they take
//! (DESIGN.md §3).
//!
//! In blocking mode the same lock word acts as a test-and-test-and-set bit
//! (with the descriptor pointer left null), no descriptor is created, and
//! nothing is logged — the paper's runtime-switchable blocking mode.
//!
//! ## Panic safety
//!
//! A critical section that panics must never poison the lock word, the
//! descriptor pool, or the epoch state. The contract (regression-tested
//! here and in `flock-chaos`; methodology in EXPERIMENTS.md §8):
//!
//! * **Blocking mode:** the TTAS bit is released on unwind (a drop guard in
//!   [`Lock::blocking_run`]) and the panic propagates to the caller.
//!   Pre-contract, a panic here left the word locked forever.
//! * **Lock-free mode:** every run site (owner in
//!   [`Lock::run_and_unlock_self`], helper in [`Lock::help`]) catches the
//!   unwind, marks the descriptor `panicked` **then** `done`, releases the
//!   lock, and disposes/skips exactly as after a completed run. The owner
//!   then resumes the panic; a helper swallows it (the panic belongs to the
//!   victim's critical section — the victim's owner reports it). A sticky
//!   `panicked` flag keeps any later runner from **replaying** a log that
//!   ends at a panic point: a non-panicking replay would otherwise keep
//!   executing — and applying effects — past the point where the lock was
//!   released. Owners that find the flag set report the panic instead of
//!   replaying (like a poisoned `std::sync::Mutex`, the flag is
//!   conservative: a racing helper may have completed the thunk).
//! * If the *panic-handling sequence itself* unwinds, no safe state can be
//!   re-established and the process aborts with a diagnostic (an
//!   [`AbortGuard`] armed around each handler) — never a silently hung or
//!   half-released lock.

use std::sync::atomic::Ordering;

use flock_sync::pack::{PackedValue, next_tag, pack, unpack_tag, unpack_val};
use flock_sync::{Backoff, ThreadCtx, thread_ctx};

use crate::admission::{self, Admission, AdmissionOps};
use crate::config::{helping_enabled, lock_mode};
use crate::ctx;
use crate::descriptor::{self, Descriptor};
use crate::idemp;

/// Which implementation [`Lock`] operations use, switchable at runtime via
/// [`crate::config::set_lock_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Descriptor-based lock-free locks with helping and logging.
    LockFree,
    /// Plain test-and-test-and-set spinning; no helping, no logging.
    Blocking,
}

/// An opaque observation of a [`Lock`]'s **version**: the full packed lock
/// word (ABA tag + descriptor bits), captured only while the lock was
/// unlocked. See [`Lock::version`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LockVersion(flock_sync::pack::PackedVersion);

/// How many optimistic attempts [`read_validated`] (and the structure read
/// paths built on it) make before falling back to the committed read path.
/// Bounded so a reader racing a write-heavy lock cannot livelock: after
/// this many failed validations the cost of the committed path is paid
/// once and the read always completes.
pub const OPTIMISTIC_READ_ATTEMPTS: usize = 3;

/// Run an optimistic, version-validated read with a bounded fallback.
///
/// `optimistic` performs the read with plain `Acquire` loads (e.g.
/// [`Mutable::load_acquire`](crate::Mutable::load_acquire) /
/// [`ValueSlot::read_acquire`](crate::ValueSlot::read_acquire)) bracketed
/// by [`Lock::version`] / [`Lock::validate`] on whichever lock owns the
/// data, returning `Some(r)` when validation passed and `None` when it
/// failed (lock busy, or a critical section committed mid-read). After
/// [`OPTIMISTIC_READ_ATTEMPTS`] failures — or immediately when called
/// inside a thunk, where uncommitted loads would desynchronize helper
/// replays — `fallback` (the committed read path) produces the result.
#[inline]
pub fn read_validated<R>(
    mut optimistic: impl FnMut() -> Option<R>,
    fallback: impl FnOnce() -> R,
) -> R {
    if crate::in_thunk() {
        // In-thunk reads must stay on the logged/committed path: every run
        // of a helped thunk has to observe identical values, and the
        // optimistic closure's raw loads are not committed to the log.
        return fallback();
    }
    for _ in 0..OPTIMISTIC_READ_ATTEMPTS {
        if let Some(r) = optimistic() {
            return r;
        }
        std::hint::spin_loop();
    }
    fallback()
}

impl From<LockMode> for u8 {
    fn from(m: LockMode) -> u8 {
        match m {
            LockMode::LockFree => 0,
            LockMode::Blocking => 1,
        }
    }
}

/// Aborts the process if dropped during an unwind. Armed (and disarmed with
/// `mem::forget` on success) around the panic-handling sequences that
/// restore protocol safety: if *they* panic, no safe state can be
/// re-established, and the contract's fallback is a loud abort rather than
/// a silently poisoned lock.
struct AbortGuard(&'static str);

impl Drop for AbortGuard {
    fn drop(&mut self) {
        eprintln!(
            "flock: fatal: {} unwound while restoring protocol safety after a \
             critical-section panic; aborting",
            self.0
        );
        std::process::abort();
    }
}

/// The lock word: a descriptor pointer with the two low bits free for
/// flags (descriptors are at least 8-byte aligned). Bit 0 is the locked
/// flag; bit 1 carries the lock's **admission policy** (set = FIFO),
/// stamped at construction and preserved by every acquire/release
/// transition — locked or unlocked, the word always knows its policy, so
/// release paths (including helpers') never need to consult the `Lock`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct LockWord {
    bits: u64,
}

const LOCKED_BIT: u64 = 1;
const FIFO_BIT: u64 = 1 << 1;
/// The bits that survive every lock/unlock transition.
const POLICY_MASK: u64 = FIFO_BIT;

impl LockWord {
    pub(crate) const UNLOCKED_EMPTY: LockWord = LockWord { bits: 0 };
    pub(crate) const UNLOCKED_FIFO: LockWord = LockWord { bits: FIFO_BIT };

    /// Locked on descriptor `d`, carrying `policy`'s admission bits.
    pub(crate) fn locked_with(d: *const Descriptor, policy: LockWord) -> Self {
        debug_assert_eq!(d as usize & 0b11, 0);
        LockWord {
            bits: d as u64 | LOCKED_BIT | (policy.bits & POLICY_MASK),
        }
    }

    pub(crate) fn is_locked(self) -> bool {
        self.bits & LOCKED_BIT != 0
    }

    pub(crate) fn is_fifo(self) -> bool {
        self.bits & FIFO_BIT != 0
    }

    /// This word's unlocked form (policy bits kept, descriptor dropped) —
    /// what every release CAM installs.
    pub(crate) fn unlocked(self) -> LockWord {
        LockWord {
            bits: self.bits & POLICY_MASK,
        }
    }

    /// This word's locked-with-null-descriptor form (policy bits kept) —
    /// the blocking mode's TTAS hold.
    pub(crate) fn locked_null(self) -> LockWord {
        LockWord {
            bits: (self.bits & POLICY_MASK) | LOCKED_BIT,
        }
    }

    pub(crate) fn descriptor(self) -> *const Descriptor {
        (self.bits & !(LOCKED_BIT | POLICY_MASK)) as usize as *const Descriptor
    }
}

// SAFETY: bits is a pointer (≤48 bits on supported platforms, debug-checked
// by the pointer PackedValue impls) plus one flag bit; round-trips exactly.
unsafe impl PackedValue for LockWord {
    #[inline(always)]
    fn to_bits(self) -> u64 {
        debug_assert!(self.bits <= flock_sync::VAL_MASK);
        self.bits
    }
    #[inline(always)]
    fn from_bits(bits: u64) -> Self {
        LockWord { bits }
    }
}

// SAFETY: inline strategy over the PackedValue impl above; the referenced
// descriptor is owned by the lock protocol, not the slot, so the
// reclamation hooks are no-ops (as for plain pointers).
unsafe impl flock_sync::ValueRepr for LockWord {
    const INDIRECT: bool = false;
    #[inline(always)]
    fn encode(v: Self) -> u64 {
        v.to_bits()
    }
    #[inline(always)]
    unsafe fn decode(bits: u64) -> Self {
        LockWord::from_bits(bits)
    }
    #[inline(always)]
    unsafe fn retire_bits(_bits: u64) {}
    #[inline(always)]
    unsafe fn dealloc_bits(_bits: u64) {}
}

/// A Flock lock.
///
/// One word; create with [`Lock::new`] and protect critical sections with
/// [`Lock::try_lock`] (preferred for optimistic fine-grained locking) or
/// [`Lock::lock`] (a strict lock that waits). Critical sections are *thunks*:
/// `Fn() -> R` closures capturing their environment by value. The result
/// type `R` is yours to choose — a validation `bool`, a looked-up value, or
/// `()` — and `try_lock` wraps it in an `Option` so "the lock was busy"
/// (`None`) is never conflated with whatever the thunk returned.
pub struct Lock {
    word: crate::mutable::Mutable<LockWord>,
}

impl Default for Lock {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Lock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lock")
            .field("locked", &self.is_locked())
            .finish()
    }
}

impl Lock {
    /// A new, unlocked lock using the process-default [`Admission`] policy
    /// ([`crate::config::default_admission`]; CAS-race unless configured).
    pub fn new() -> Self {
        Self::new_with(crate::config::default_admission())
    }

    /// A new, unlocked lock with an explicit [`Admission`] policy.
    /// Admission is a per-lock property fixed at construction: it is
    /// stamped into the lock word's policy bits and every acquire/release
    /// transition preserves it (see the `admission` module docs).
    pub fn new_with(admission: Admission) -> Self {
        let init = match admission {
            Admission::Race => LockWord::UNLOCKED_EMPTY,
            Admission::Fifo => LockWord::UNLOCKED_FIFO,
        };
        Self {
            word: crate::mutable::Mutable::new(init),
        }
    }

    /// This lock's admission policy (fixed at construction).
    pub fn admission(&self) -> Admission {
        if LockWord::from_bits(unpack_val(self.word.raw_packed())).is_fifo() {
            Admission::Fifo
        } else {
            Admission::Race
        }
    }

    /// This lock's identity for the wait-slot registry: its address.
    /// Stable (locks never move while shared) and never zero.
    #[inline]
    fn addr(&self) -> usize {
        self as *const Lock as usize
    }

    /// Is the lock currently held? (Racy observation, for diagnostics.)
    pub fn is_locked(&self) -> bool {
        LockWord::from_bits(unpack_val(self.word.raw_packed())).is_locked()
    }

    /// Observe the lock's current **version** for optimistic validation:
    /// the full packed lock word (tag + descriptor bits), returned only
    /// while the lock is *unlocked* — `None` means a critical section is
    /// (or may be) in flight and an optimistic read cannot start.
    ///
    /// The version doubles as a seqlock sequence number "for free": every
    /// acquisition CAS and every release CAM bumps the word's ABA tag, in
    /// both lock modes, so an unlocked word observed unchanged across a
    /// read window (see [`Lock::validate`]) proves **no critical section on
    /// this lock completed during the window** — every field the lock
    /// protects was stable. The residual is an exact
    /// [`TAG_LIMIT`](flock_sync::pack::TAG_LIMIT)-acquisition wraparound of
    /// this one word inside a single read (≥ 2¹⁵ acquire/release pairs
    /// between two adjacent loads of one reader), which the descriptor bits
    /// in the comparison narrow further; the committed fallback path of
    /// [`read_validated`] is the designed recovery for validation noise,
    /// and EXPERIMENTS.md §9 quantifies the window.
    #[inline]
    pub fn version(&self) -> Option<LockVersion> {
        let w = self.word.raw_packed();
        if LockWord::from_bits(unpack_val(w)).is_locked() {
            None
        } else {
            Some(LockVersion(flock_sync::pack::PackedVersion::from_word(w)))
        }
    }

    /// Validate an optimistic read window opened by [`Lock::version`]:
    /// `true` iff the lock word is byte-identical to the observation (and
    /// hence still unlocked). Issues the `Acquire` fence that orders the
    /// caller's preceding data loads before the validating re-read — the
    /// seqlock discipline: version → data reads → fence → re-read.
    #[inline]
    pub fn validate(&self, observed: LockVersion) -> bool {
        std::sync::atomic::fence(Ordering::Acquire);
        self.word.raw_packed() == observed.0.word()
    }

    /// Lock-scoped [`read_validated`]: run `optimistic` bracketed by this
    /// lock's [`version`](Lock::version)/[`validate`](Lock::validate), with
    /// the usual bounded fallback. For reads whose data is owned by a
    /// *single, known* lock (a hash bucket, a [`Locked`](crate::Locked)
    /// cell); traversals that discover the owning lock mid-read use the
    /// free-function form directly.
    #[inline]
    pub fn read_validated<R>(&self, optimistic: impl Fn() -> R, fallback: impl FnOnce() -> R) -> R {
        read_validated(
            || {
                let v = self.version()?;
                let r = optimistic();
                self.validate(v).then_some(r)
            },
            fallback,
        )
    }

    /// Attempt to acquire the lock and run `thunk` under it.
    ///
    /// Returns `Some(r)` with the thunk's result `r` if the lock was
    /// acquired, and `None` if the lock was busy (after helping the current
    /// holder in lock-free mode) — so "lock busy, back off" is distinguishable
    /// from whatever the thunk itself computed (e.g. a validation failure).
    /// Thunks capture by value (`move`) and may nest `try_lock` calls on
    /// locks that are smaller in the locking order.
    ///
    /// `R: Send` because in lock-free mode helper threads replay the thunk
    /// and drop their locally computed copy of the result.
    pub fn try_lock<R, F>(&self, thunk: F) -> Option<R>
    where
        R: Send + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        match lock_mode() {
            LockMode::Blocking => self.blocking_try_lock(thunk),
            LockMode::LockFree => self.lock_free_try_lock(thunk),
        }
    }

    /// Acquire the lock, waiting (and helping, in lock-free mode) until it is
    /// available, then run `thunk` and return its result — the paper's
    /// *strict lock*.
    pub fn lock<R, F>(&self, thunk: F) -> R
    where
        R: Send + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        match lock_mode() {
            LockMode::Blocking => {
                let mut backoff = Backoff::new();
                loop {
                    let w = self.word.raw_packed();
                    let cur = LockWord::from_bits(unpack_val(w));
                    if cur.is_locked() {
                        backoff.snooze();
                        continue;
                    }
                    if self.word.raw_cell().ccas(
                        w,
                        pack(next_tag(unpack_tag(w)), cur.locked_null().to_bits()),
                    ) {
                        return self.blocking_run(thunk);
                    }
                    backoff.spin();
                }
            }
            LockMode::LockFree => thread_ctx::with(|tc| {
                let guard = flock_epoch::pin_with(tc);
                // Resolve the admission policy once from the word's policy
                // bits (constant for the lock's lifetime) and monomorphize
                // the wait loop on it. Nested strict acquisitions on FIFO
                // locks take the Race loop regardless: arrival publication
                // and slot scans are unlogged state, so a helped replay of
                // the enclosing thunk could not reproduce them — `policy`
                // still carries the FIFO bit into the installed word so
                // top-level waiters' deference keeps working.
                let policy = LockWord::from_bits(unpack_val(self.word.raw_packed())).unlocked();
                if policy.is_fifo() && !tc.in_thunk() {
                    self.strict_lock_free::<admission::Fifo, R, F>(tc, &guard, policy, thunk)
                } else {
                    self.strict_lock_free::<admission::Race, R, F>(tc, &guard, policy, thunk)
                }
            }),
        }
    }

    /// The lock-free strict-acquire wait loop, monomorphized per admission
    /// policy `P`. At `P = Race` every policy hook inlines to nothing and
    /// this is exactly the pre-policy loop: create the descriptor once,
    /// then loop attempting to install it, helping whoever is in the way.
    /// At `P = Fifo` the waiter additionally publishes its arrival before
    /// the first iteration (retracted automatically when `arrival` drops on
    /// any exit path), watches for the lock word being **handed to it** by
    /// a releasing owner, and defers installation on unlocked words while
    /// an older eligible arrival is published (bounded — see `admission`).
    fn strict_lock_free<P, R, F>(
        &self,
        tc: &ThreadCtx,
        guard: &flock_epoch::EpochGuard,
        policy: LockWord,
        thunk: F,
    ) -> R
    where
        P: AdmissionOps,
        R: Send + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        let nested = tc.in_thunk();
        let d = if nested {
            idemp::create_descriptor_idempotent(tc, thunk, guard)
        } else {
            descriptor::create_descriptor(thunk, guard.epoch(), false)
        };
        let mine = LockWord::locked_with(d, policy);
        let mut arrival = P::arrive(tc, self.addr(), d);
        let mut backoff = Backoff::new();
        loop {
            let cur_packed = self.word.load_packed_in(tc);
            let cur = LockWord::from_bits(unpack_val(cur_packed));
            if P::HANDOFF {
                // A releasing owner may have installed our published
                // descriptor on our behalf (constant handoff), or helpers
                // may already have run it to completion after a handoff we
                // never observed installed.
                // SAFETY: `d` is ours, live until disposed; the done read
                // is conservative (a stale false only means another loop
                // iteration).
                if std::ptr::eq(cur.descriptor(), d) || unsafe { (*d).is_done() } {
                    return self.run_and_unlock_self::<R>(tc, d, mine, nested);
                }
            }
            if !cur.is_locked() {
                match P::admit(self.addr(), &mut arrival) {
                    admission::Admit::Own => {
                        self.word.cam_in(tc, cur, mine);
                        let cur2_packed = self.word.load_packed_in(tc);
                        let cur2 = LockWord::from_bits(unpack_val(cur2_packed));
                        // SAFETY: `d` is ours (or the committed nested
                        // descriptor), live until disposed below. The done
                        // read is ordered after the cur2 load: if a helper
                        // finished and unlocked us, cur2 read a value past
                        // its release CAM, so the helper's set_done is
                        // visible here (see lock_free_try_lock).
                        let done = unsafe { (*d).is_done() };
                        if done || cur2 == mine {
                            // Runs, unlocks and disposes (`d` was created
                            // from a thunk returning `R`; we are pinned).
                            return self.run_and_unlock_self::<R>(tc, d, mine, nested);
                        }
                        if cur2.is_locked() {
                            self.help(tc, cur2_packed, guard);
                        }
                    }
                    admission::Admit::Proxy(older) => {
                        // Admit the oldest published arrival on its behalf:
                        // CAM its descriptor onto the unlocked word, then
                        // loop — the next iteration observes the word
                        // locked and helps run it. Top level only: a
                        // replayed nested thunk could scan different slots
                        // across replays, and its log must stay
                        // deterministic (same reason `release_word` skips
                        // the handoff in-thunk). The safety argument for
                        // installing a descriptor this thread does not own
                        // is in `admission`'s module docs (proxy
                        // admission).
                        if !nested {
                            let next = LockWord::locked_with(older, cur);
                            self.word.cam_in(tc, cur, next);
                            // The scan-to-CAM window can admit a *completed*
                            // candidate: the older arrival finishes (via a
                            // handoff plus helpers) and its owner returns
                            // while this thread is stalled holding the
                            // Proxy decision. Helpers heal such a word, but
                            // only threads still interacting with the lock
                            // are helpers — if this thread's own op also
                            // completed meanwhile, it exits through the
                            // handed-to-me fast path above and the stale
                            // install would outlive all waiters, leaving a
                            // quiescent lock cosmetically held (spurious
                            // try_lock failures, version() forever None).
                            // The installer is the one party guaranteed to
                            // still be here, so it heals its own install:
                            // done is sticky, and the packed-guarded CAM
                            // releases exactly the incarnation verified
                            // below, so this can never unlock a live later
                            // reuse of the same descriptor address.
                            let now_packed = self.word.load_packed_in(tc);
                            let now = LockWord::from_bits(unpack_val(now_packed));
                            // SAFETY: `older` stays allocated for this whole
                            // wait (the scanning thread holds an epoch pin
                            // and published descriptors retire only through
                            // the collector — see `admission`'s proxy docs);
                            // a done read is conservative either way.
                            if now.is_locked()
                                && std::ptr::eq(now.descriptor(), older)
                                && unsafe { (*older).is_done() }
                            {
                                self.word.cam_packed_in(tc, now_packed, now.unlocked());
                            }
                        }
                    }
                }
            } else {
                self.help(tc, cur_packed, guard);
            }
            backoff.spin();
        }
    }

    /// Release a lock **currently held by the running thunk** before the
    /// thunk finishes — for hand-over-hand locking (paper §4, `unlock`).
    ///
    /// Behavior is undefined (though memory-safe) if the calling thunk does
    /// not hold the lock.
    pub fn unlock_early(&self) {
        match lock_mode() {
            LockMode::Blocking => self.blocking_release(),
            LockMode::LockFree => thread_ctx::with(|tc| {
                let cur = self.word.load_in(tc);
                if cur.is_locked() {
                    self.word.cam_in(tc, cur, cur.unlocked());
                }
            }),
        }
    }

    // ---------------------------------------------------------- lock-free

    fn lock_free_try_lock<R, F>(&self, thunk: F) -> Option<R>
    where
        R: Send + 'static,
        F: Fn() -> R + Send + Sync + 'static,
    {
        // The whole operation — pin, nested check, loads, commits, announce
        // — works off one thread-context fetch; this `with` is the only TLS
        // access on the uncontended path (the descriptor pool aside).
        thread_ctx::with(|tc| {
            let guard = flock_epoch::pin_with(tc);
            let nested = tc.in_thunk();

            // Line 14: read the lock (idempotently when nested). The full
            // packed word (tag included) is kept: helping keys on the exact
            // incarnation of the lock word, not just its value (see `help`).
            let cur_packed = self.word.load_packed_in(tc);
            let cur = LockWord::from_bits(unpack_val(cur_packed));
            if cur.is_locked() {
                // Line 26 of the paper (locked on first read): help and fail.
                self.help(tc, cur_packed, &guard);
                return None;
            }

            // Lines 16-18: make a descriptor and try to install it.
            let d = if nested {
                idemp::create_descriptor_idempotent(tc, thunk, &guard)
            } else {
                descriptor::create_descriptor(thunk, guard.epoch(), false)
            };
            let mine = LockWord::locked_with(d, cur);
            self.word.cam_in(tc, cur, mine);

            // Chaos seam: the install CAM has (possibly) published our
            // descriptor but we have not begun running it. A thread stalled
            // here holds the lock; helpers must complete the committed
            // descriptor without it. No-op in default builds.
            flock_sync::chaos::probe(flock_sync::chaos::Seam::LockInstalled);

            // Line 19: did we get in?
            let cur2_packed = self.word.load_packed_in(tc);
            let cur2 = LockWord::from_bits(unpack_val(cur2_packed));
            // SAFETY: `d` is live: top-level descriptors are owner-held until
            // disposed; nested ones are epoch-protected after commit.
            //
            // Ordering of the done read (Relaxed-class, see Descriptor):
            // it is sequenced after the cur2 load. If a helper completed us
            // and released the lock, cur2 observed a word at or past the
            // helper's release CAM, so everything sequenced before that CAM
            // — including its set_done — is visible here. If the helper has
            // not released yet, cur2 == mine and we run regardless of done.
            let done = unsafe { (*d).is_done() };
            if done || cur2 == mine {
                // Line 22: run self. If we were helped to completion, this
                // is a replay: the log makes it recompute the identical
                // result without re-applying effects. Runs, unlocks and
                // disposes (we are pinned; `d`'s thunk returns `R`).
                Some(self.run_and_unlock_self::<R>(tc, d, mine, nested))
            } else {
                // Lines 23-26: someone else is (or was) in; help if locked.
                if cur2.is_locked() {
                    self.help(tc, cur2_packed, &guard);
                }
                // Our descriptor never ran. Top level: it was never
                // published, recycle it directly. Nested: its pointer is in
                // the outer log, so it must go through the idempotent
                // retire.
                if nested {
                    idemp::retire_descriptor_idempotent(tc, d);
                } else {
                    // SAFETY: never published (install CAM failed).
                    unsafe { descriptor::recycle_unshared(d) };
                }
                None
            }
        })
    }

    /// Run our own installed (or already completed) descriptor, release the
    /// lock, and dispose of the descriptor: the paper's `runAndUnlock` for
    /// the self path, extended with the panic-safety contract (module docs).
    ///
    /// Callers guarantee `d` was created from a thunk returning `R` and that
    /// the calling thread is pinned; the run writes the
    /// (replay-deterministic) result into a local slot.
    ///
    /// If a **previous** runner's execution of this thunk panicked
    /// (`thunk_panicked` set), the thunk is *not* replayed — its log may end
    /// at the panic point, and a replay that does not itself panic would
    /// keep executing (and applying effects) past the release of the lock.
    /// The owner finishes the abandonment (done → unlock → dispose, the
    /// same order every completion uses) and reports the panic to its
    /// caller instead.
    fn run_and_unlock_self<R: Send + 'static>(
        &self,
        tc: &ThreadCtx,
        d: *const Descriptor,
        mine: LockWord,
        nested: bool,
    ) -> R {
        // SAFETY: `d` live (see callers).
        if unsafe { (*d).thunk_panicked() } {
            // `set_done` before the unlock CAM keeps the protocol-wide
            // invariant that an observed unlock implies an observable
            // `done` (idempotent if the panicking runner already set it).
            // SAFETY: as above.
            unsafe { (*d).set_done() };
            // Abandonment path: plain release, no handoff — a panicking
            // section forfeits its handoff (waiters re-race; correctness
            // is unaffected, they are all still competing for the word).
            self.word.cam_in(tc, mine, mine.unlocked());
            // SAFETY: lock word no longer references `d`; pinned (callers).
            unsafe { self.dispose_after_run(tc, d, nested) };
            panic!("flock: critical section panicked during helped execution");
        }
        let mut out = std::mem::MaybeUninit::<R>::uninit();
        // SAFETY: `d` live (see callers); running a thunk is idempotent;
        // `out` is an uninitialized slot of the thunk's return type.
        // AssertUnwindSafe: on unwind `out` is abandoned uninitialized and
        // every shared invariant is restored by the Err arm below — that
        // safe-stating is exactly what the catch exists for.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            ctx::run_in(tc, d, out.as_mut_ptr().cast())
        }));
        match run {
            Ok(()) => {
                // Taint re-check: a helper may have unwound (and marked the
                // descriptor) *after* the pre-check above but while our own
                // replay was running. The replay stayed safe — a partial
                // log's suppressed CASes (the `done`-announced check) make
                // past-the-log effects no-ops — but the result may reflect
                // an aborted critical section, so report the panic rather
                // than return it.
                // SAFETY: as above.
                let tainted = unsafe { (*d).thunk_panicked() };
                // SAFETY: as above.
                unsafe { (*d).set_done() };
                // Unlock by clearing the descriptor pointer so the descriptor
                // becomes unreachable from the lock word (enables safe reuse).
                // Under FIFO admission this is where the constant handoff
                // happens: the word goes straight to the oldest waiter's
                // descriptor instead of reopening the race.
                self.release_word(tc, mine);
                // SAFETY: unlock removed the lock word's reference; pinned.
                unsafe { self.dispose_after_run(tc, d, nested) };
                // SAFETY: `ctx::run_in` returned without unwinding, so it
                // wrote `out`.
                let r = unsafe { out.assume_init() };
                if tainted {
                    drop(r);
                    panic!("flock: critical section panicked during helped execution");
                }
                r
            }
            Err(payload) => {
                // The thunk unwound. Safe-state in the contract's order —
                // panicked strictly before done (replay decisions key off
                // that), done strictly before unlock — then dispose exactly
                // as on the normal path and resume the panic in the caller.
                let abort = AbortGuard("the owner's panic handler");
                // SAFETY: as above.
                unsafe {
                    (*d).mark_panicked();
                    (*d).set_done();
                }
                // Plain release (no handoff): keep the panic-recovery
                // sequence minimal, see the pre-check arm above.
                self.word.cam_in(tc, mine, mine.unlocked());
                // SAFETY: unlock removed the lock word's reference; pinned.
                unsafe { self.dispose_after_run(tc, d, nested) };
                std::mem::forget(abort);
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Release a lock word this thread holds as `mine` (the exact locked
    /// value it installed, or was handed). Race admission — and every
    /// nested release, whose slot scans could not be replayed by helpers —
    /// CAMs straight to the unlocked word. A top-level FIFO release first
    /// scans the wait-slot registry for the oldest eligible arrival and
    /// CAMs the word **directly from `mine` to that waiter's descriptor**:
    /// the constant handoff.
    ///
    /// Correctness leans on two things (full argument in the `admission`
    /// module docs):
    ///
    /// * The scan and CAM happen while this thread still holds the lock, so
    ///   an eligibility-validated candidate (generation matches, not done)
    ///   is a descriptor whose owner is currently parked in its wait loop —
    ///   installing it performs exactly the install that waiter wanted.
    /// * `cam_in` re-reads the word and compares values before swapping: if
    ///   a helper already completed `d` and released the word (so `mine` is
    ///   no longer there), the handoff CAM degrades to a silent no-op and
    ///   whatever the helper installed stands. Nothing but this thread ever
    ///   installs `mine`'s exact value, so the value comparison cannot be
    ///   spoofed by an unrelated transition.
    fn release_word(&self, tc: &ThreadCtx, mine: LockWord) {
        if mine.is_fifo()
            && !tc.in_thunk()
            && let Some(w) =
                flock_sync::wait_slot::oldest_waiter(self.addr(), admission::candidate_eligible)
        {
            let next = LockWord::locked_with(w.desc as usize as *const Descriptor, mine);
            self.word.cam_in(tc, mine, next);
            return;
        }
        self.word.cam_in(tc, mine, mine.unlocked());
    }

    /// Help the descriptor installed on this lock (observed as the full
    /// packed word `cur_packed`): observe the descriptor's generation →
    /// mark helped → adopt epoch → revalidate (word **and** generation) →
    /// if valid, run and then unlock; a helper that fails revalidation does
    /// nothing at all.
    ///
    /// The revalidation and the unlock guard compare the **full packed word
    /// — tag included**. Comparing only the value bits is unsound: an
    /// unhelped descriptor is pool-recycled by its owner and can be
    /// reinstalled on the same lock at the same address, and the pool reset
    /// erases any *stale* `helped` mark. A helper whose mark was erased
    /// would then pass a value-only revalidation against the new
    /// incarnation — invisible to that incarnation's owner — and race the
    /// owner's next recycle (observed in practice as a contended-lock
    /// crash: "descriptor thunk called before set"); a value-only unlock
    /// guard would likewise let the trailing CAM unlock the new incarnation
    /// mid-run. The install CAM bumps the lock word's tag, so full-word
    /// comparison rejects a reincarnation — except across an exact
    /// `TAG_LIMIT`-install wraparound of this one lock word, where the
    /// packed word itself recurs (the value-reuse hazard every value-based
    /// scheme must defend against, cf. Dice & Kogan).
    ///
    /// The **descriptor generation** closes that wraparound window
    /// exhaustively. The slab's 64-bit generation is bumped on every
    /// (re)initialization and never recurs. The protocol:
    ///
    /// read `gen0` (committed) → mark helped → adopt (SeqCst fence) →
    /// load the word `w` (committed) → re-read the generation `gen1`
    /// (committed); **valid ⇔ `w == cur_packed && gen1 == gen0`**.
    ///
    /// *Valid* implies no `create_descriptor` ran on this slab between
    /// the two generation reads, so (a) the install `w` observed belongs to the one
    /// incarnation alive across that whole interval (an installed
    /// descriptor is never recycled before its unlock), and (b) the mark in
    /// step 2 landed on exactly that incarnation and was never erased by a
    /// pool reset. Its owner therefore observes `helped` (the step-3 fence
    /// anchors the Dekker pair with the owner's unlock-CAM/reuse-check
    /// sequence) and retires the slab through the epoch collector instead
    /// of recycling it — and since this helper is pinned/adopted, the slab
    /// can neither be freed nor re-enter `create_descriptor` while this
    /// call is still running. Hence the packed word `(tag, ptr)` cannot
    /// recur as a *different* incarnation for the rest of this call, which
    /// is what makes the trailing unlock CAM (full-word-guarded, after the
    /// run completed) safe. *Invalid* helpers skip the unlock CAM entirely:
    /// a CAM there could fire on a wrapped reinstallation whose thunk never
    /// ran, releasing a held lock — and skipping costs no progress, since
    /// the currently installed incarnation always has its own owner and
    /// freshly-validating helpers to release it.
    ///
    /// Every branch depends only on committed values, so runners of an
    /// enclosing thunk stay log-position-synchronized. Wraparound in scope,
    /// this is proved exhaustively by flock-model's `lock_word_tag_wrap_*`
    /// tests; the `SKIP_GEN_CHECK` mutant reverts to the pre-fix behavior
    /// (raw revalidation, unconditional unlock CAM) and is provably caught.
    fn help(&self, tc: &ThreadCtx, cur_packed: u64, guard: &flock_epoch::EpochGuard) {
        let cur = LockWord::from_bits(unpack_val(cur_packed));
        debug_assert!(cur.is_locked());
        if !helping_enabled() {
            return; // ablation mode: no helping, busy locks just fail
        }
        let d = cur.descriptor();
        if d.is_null() {
            // A locked word with no descriptor is a blocking-mode hold;
            // nothing can be helped. Reachable only if the global mode is
            // switched while operations are in flight, which the API
            // documents as unsupported — degrade gracefully rather than
            // crash.
            return;
        }
        // Sanity-mutant hook: `true` reverts to the pre-generation help
        // path so the model checker can demonstrate the wraparound bug.
        #[cfg(feature = "model")]
        if crate::mutants::skip_gen_check() {
            // SAFETY: see the pre-fix comments preserved in git history;
            // this arm exists only to be proven wrong by the checker.
            unsafe {
                (*d).mark_helped();
                let _adopt = guard.adopt((*d).birth_epoch());
                if self.word.raw_packed() == cur_packed && !(*d).is_done() {
                    ctx::run_in(tc, d, std::ptr::null_mut());
                    (*d).set_done();
                }
            }
            self.word.cam_packed_in(tc, cur_packed, cur.unlocked());
            return;
        }
        // Step 1: observe the slab's incarnation BEFORE marking helped (see
        // the protocol above). Committed, like every read feeding `valid`,
        // so all runners of an enclosing thunk take the same branches.
        // SAFETY: `d` was read from the lock word while pinned; published
        // descriptors are never plain-freed (pool reuse or epoch retire
        // only), so the dereference is valid even if the slab was since
        // recycled.
        let gen0 = ctx::commit_raw_in(tc, unsafe { (*d).generation() }).0;
        // Step 2: mark. At worst this lands on a later incarnation than the
        // generation we read — then `valid` below is false and the only
        // effect is forcing that incarnation down the conservative retire
        // path (harmless by design, see `dispose_top_level`).
        // SAFETY: as above.
        unsafe { (*d).mark_helped() };
        // Step 3: adopt the helped thunk's epoch (paper §6) — publishes
        // with a SeqCst fence before the revalidation reads below. That
        // fence also anchors the mark_helped/unlock-CAM Dekker pair: the
        // mark is sequenced before it, the owner's reuse check is sequenced
        // after its own SeqCst unlock CAM.
        // SAFETY: as above.
        let _adopt = guard.adopt(unsafe { (*d).birth_epoch() });
        // Steps 4+5: revalidate word, then generation (this order — the
        // Acquire generation load synchronizes through the install CAS the
        // word load observed, so equality proves no intervening recycle).
        let w = self.word.load_packed_in(tc);
        // SAFETY: as above.
        let gen1 = ctx::commit_raw_in(tc, unsafe { (*d).generation() }).0;
        if w != cur_packed || gen1 != gen0 {
            return; // stale observation: do nothing (see the doc comment)
        }
        // SAFETY: validated + epoch-adopted: `d` is live, this is the
        // incarnation we marked, and its owner will observe `helped` before
        // any reuse decision. The null out-slot discards the helper's copy
        // of the result. A stale-false done read only causes a redundant
        // (idempotent) replay.
        unsafe {
            if !(*d).is_done() {
                if (*d).thunk_panicked() {
                    // A previous runner unwound mid-thunk: never start a
                    // replay of a log that may end at the panic point (see
                    // run_and_unlock_self). Finish the abandonment on its
                    // behalf — done, then the unlock CAM below.
                    (*d).set_done();
                } else {
                    // Chaos seam: a validated helper about to run the
                    // victim's thunk. No-op in default builds.
                    flock_sync::chaos::probe(flock_sync::chaos::Seam::HelpRun);
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        ctx::run_in(tc, d, std::ptr::null_mut());
                    }));
                    match run {
                        Ok(()) => (*d).set_done(),
                        Err(payload) => {
                            // Safe-state (contract order), then swallow: the
                            // panic belongs to the victim's critical
                            // section and its owner reports it; killing the
                            // helping bystander would convert one thread's
                            // bug into another thread's crash.
                            let abort = AbortGuard("a helper's panic handler");
                            (*d).mark_panicked();
                            (*d).set_done();
                            std::mem::forget(abort);
                            drop(payload);
                        }
                    }
                }
            }
        }
        // Unlock the incarnation we just ran (or observed done). The
        // full-word guard plus `valid` makes this exact (doc comment).
        // Helpers release without handing off (policy bits preserved):
        // handoff scans are unlogged, and the completed waiter's own
        // deference keeps FIFO order among the survivors.
        self.word.cam_packed_in(tc, cur_packed, cur.unlocked());
    }

    /// Dispose of our descriptor after a completed self-run.
    ///
    /// # Safety
    ///
    /// The lock word must no longer reference `d`; the thread must be pinned.
    unsafe fn dispose_after_run(&self, tc: &ThreadCtx, d: *const Descriptor, nested: bool) {
        if nested {
            // Back in the *outer* thunk's context (run_in restored it): the
            // retire marker is committed to the enclosing log.
            idemp::retire_descriptor_idempotent(tc, d);
        } else {
            // SAFETY: owner-only, unreferenced, pinned — forwarded contract.
            unsafe { descriptor::dispose_top_level(d as *mut Descriptor) };
        }
    }

    // ----------------------------------------------------------- blocking

    fn blocking_try_lock<R, F: Fn() -> R>(&self, thunk: F) -> Option<R> {
        let w = self.word.raw_packed();
        let cur = LockWord::from_bits(unpack_val(w));
        if cur.is_locked() {
            return None;
        }
        if !self.word.raw_cell().ccas(
            w,
            pack(next_tag(unpack_tag(w)), cur.locked_null().to_bits()),
        ) {
            return None;
        }
        Some(self.blocking_run(thunk))
    }

    /// Run a blocking-mode critical section with the TTAS bit held,
    /// releasing on both return and unwind: there is no helper to rescue a
    /// blocking lock, so a panicking critical section must release the word
    /// itself (pre-contract, a panic here hung the lock forever — waiters
    /// spun on a bit whose holder had unwound away).
    fn blocking_run<R, F: FnOnce() -> R>(&self, thunk: F) -> R {
        struct Release<'a>(&'a Lock);
        impl Drop for Release<'_> {
            fn drop(&mut self) {
                self.0.blocking_release();
            }
        }
        let _release = Release(self);
        // Chaos seam: blocking critical section entered, word held. A stall
        // here is the motivating failure helping exists to excuse — nothing
        // can rescue it. No-op in default builds.
        flock_sync::chaos::probe(flock_sync::chaos::Seam::BlockingCritical);
        thunk()
    }

    fn blocking_release(&self) {
        // Only the holder releases; acquire attempts CAS on unlocked words
        // only, so a single CAS from the current (locked) word suffices.
        let w = self.word.raw_packed();
        let cur = LockWord::from_bits(unpack_val(w));
        debug_assert!(cur.is_locked());
        self.word
            .raw_cell()
            .ccas(w, pack(next_tag(unpack_tag(w)), cur.unlocked().to_bits()));
    }
}

/// Model-only probes splitting a helper's *observation* of a lock word
/// from its *help* call, so the model checker can schedule an arbitrarily
/// stalled helper without spending preemptions inside `try_lock` — the
/// scenario of the tag-wraparound tests. Production helpers take exactly
/// this path (observe inside `lock_free_try_lock`, then `help`); the probe
/// only externalizes the stall point between the two.
#[cfg(feature = "model")]
pub mod model_probe {
    use super::Lock;
    use flock_sync::pack::{PackedValue, unpack_val};
    use flock_sync::thread_ctx;

    /// A helper's observation step: the full packed lock word.
    pub fn observe(lock: &Lock) -> u64 {
        thread_ctx::with(|tc| lock.word.load_packed_in(tc))
    }

    /// Run the real help path against a (possibly long-stale) observation,
    /// exactly as `lock_free_try_lock` would on finding `observed_packed`
    /// locked. No-op when the observation was of an unlocked word.
    pub fn help_observed(lock: &Lock, observed_packed: u64) {
        if !super::LockWord::from_bits(unpack_val(observed_packed)).is_locked() {
            return;
        }
        thread_ctx::with(|tc| {
            let guard = flock_epoch::pin_with(tc);
            lock.help(tc, observed_packed, &guard);
        });
    }
}

/// Serializes tests that touch the global lock mode; switching modes with
/// operations in flight is unsupported, so mode-sensitive tests must not
/// overlap within the test process.
#[cfg(test)]
pub(crate) static TEST_MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::set_lock_mode;
    use std::sync::Arc;

    fn both_modes(test: impl Fn()) {
        let _guard = TEST_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            set_lock_mode(mode);
            test();
        }
        set_lock_mode(LockMode::LockFree);
    }

    #[test]
    fn try_lock_runs_thunk_and_returns_result() {
        both_modes(|| {
            let l = Lock::new();
            assert_eq!(l.try_lock(|| true), Some(true));
            assert_eq!(
                l.try_lock(|| false),
                Some(false),
                "thunk result is distinct from lock-busy"
            );
            assert!(!l.is_locked(), "lock released after thunk");
        });
    }

    #[test]
    fn try_lock_returns_arbitrary_types() {
        both_modes(|| {
            let l = Lock::new();
            assert_eq!(l.try_lock(|| 41u64 + 1), Some(42));
            assert_eq!(l.try_lock(|| Some("hit")), Some(Some("hit")));
            assert_eq!(l.try_lock(|| ()), Some(()));
            let v = l.try_lock(|| vec![1u8, 2, 3]);
            assert_eq!(v, Some(vec![1, 2, 3]), "non-Copy results work");
        });
    }

    #[test]
    fn strict_lock_runs() {
        both_modes(|| {
            let l = Lock::new();
            assert!(l.lock(|| true));
            assert_eq!(l.lock(|| 7u32), 7);
            assert!(!l.is_locked());
        });
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 8k-op concurrency stress, too slow under miri
    fn critical_sections_are_atomic() {
        both_modes(|| {
            let l = Arc::new(Lock::new());
            // Shared state inside thunks must be `Mutable`: helped thunks
            // can be replayed, and only logged operations are idempotent.
            let n = Arc::new(crate::Mutable::new(0u64));
            const PER_THREAD: u64 = 2_000;
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let l = Arc::clone(&l);
                    let n = Arc::clone(&n);
                    s.spawn(move || {
                        let mut acquired = 0;
                        while acquired < PER_THREAD {
                            let n2 = Arc::clone(&n);
                            if l.try_lock(move || n2.store(n2.load() + 1)).is_some() {
                                acquired += 1;
                            }
                        }
                    });
                }
            });
            assert_eq!(n.load(), 4 * PER_THREAD);
        });
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 8k-op concurrency stress, too slow under miri
    fn strict_lock_counter_exact() {
        both_modes(|| {
            let l = Arc::new(Lock::new());
            let n = Arc::new(crate::Mutable::new(0u64));
            const PER_THREAD: u64 = 2_000;
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let l = Arc::clone(&l);
                    let n = Arc::clone(&n);
                    s.spawn(move || {
                        for _ in 0..PER_THREAD {
                            let n2 = Arc::clone(&n);
                            let served = l.lock(move || {
                                let before = n2.load();
                                n2.store(before + 1);
                                before
                            });
                            assert!(served < 4 * PER_THREAD);
                        }
                    });
                }
            });
            assert_eq!(n.load(), 4 * PER_THREAD);
        });
    }

    /// Regression stress for the help-path incarnation bug: `help()` used
    /// to compare only the lock word's *value* bits when revalidating and
    /// unlocking, so a pool-recycled descriptor reinstalled at the same
    /// address could be run/unlocked by a stale helper whose `helped` mark
    /// the pool reset had erased (crashing with "descriptor thunk called
    /// before set" under contention). Oversubscribed strict-lock hammering
    /// on one lock is the reproducer shape: holders get descheduled
    /// mid-section, helpers race owners through reuse cycles.
    #[test]
    #[cfg_attr(miri, ignore)] // oversubscribed timing stress, pointless under miri
    fn contended_strict_lock_descriptor_reuse() {
        let _guard = TEST_MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_lock_mode(LockMode::LockFree);
        let l = Arc::new(Lock::new());
        let n = Arc::new(crate::Mutable::new(0u64));
        let threads = 8u64; // deliberately above typical CI core counts
        const PER_THREAD: u64 = 1_500;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let l = Arc::clone(&l);
                let n = Arc::clone(&n);
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        let n2 = Arc::clone(&n);
                        l.lock(move || n2.store(n2.load() + 1));
                    }
                });
            }
        });
        assert_eq!(n.load(), threads * PER_THREAD);
        assert!(!l.is_locked());
    }

    #[test]
    fn nested_locks_work() {
        both_modes(|| {
            let outer = Arc::new(Lock::new());
            let inner = Arc::new(Lock::new());
            let inner2 = Arc::clone(&inner);
            // The nested Option layers keep "outer busy" (None), "inner
            // busy" (Some(None)) and "both acquired" (Some(Some(_))) apart.
            let ok = outer.try_lock(move || {
                let i = Arc::clone(&inner2);
                i.try_lock(|| true)
            });
            assert_eq!(ok, Some(Some(true)));
            assert!(!outer.is_locked());
            assert!(!inner.is_locked());
        });
    }

    /// Panic-safety contract, owner path: a thunk that unwinds out of
    /// `try_lock` must leave the lock released and reusable in both modes.
    /// (Pre-contract, lock-free mode leaked a locked word whose descriptor
    /// was never completed, and blocking mode skipped `blocking_release`
    /// entirely — every later acquisition hung.)
    #[test]
    fn panic_in_thunk_releases_lock() {
        both_modes(|| {
            let l = Lock::new();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                l.try_lock(|| -> u32 { panic!("thunk boom") })
            }));
            assert!(r.is_err(), "panic must propagate to the lock caller");
            assert!(!l.is_locked(), "lock still held after a panicking thunk");
            assert_eq!(l.try_lock(|| 7u32), Some(7), "lock unusable after panic");
        });
    }

    /// Same contract through the strict (waiting) acquisition path.
    #[test]
    fn panic_in_strict_lock_releases_lock() {
        both_modes(|| {
            let l = Lock::new();
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                l.lock(|| -> u32 { panic!("strict boom") })
            }));
            assert!(r.is_err());
            assert!(!l.is_locked());
            assert_eq!(l.lock(|| 11u32), 11);
        });
    }

    /// A panicking critical section must not poison *other* operations'
    /// state: after the unwind, unrelated locks and cells keep working and
    /// a nested acquisition sequence completes.
    #[test]
    fn panic_does_not_poison_unrelated_state() {
        both_modes(|| {
            let a = Arc::new(Lock::new());
            let b = Arc::new(Lock::new());
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                a.try_lock(|| -> () { panic!("poison probe") })
            }));
            let b2 = Arc::clone(&b);
            assert_eq!(
                a.try_lock(move || b2.try_lock(|| 3u32)),
                Some(Some(3)),
                "nested acquisition broken after an unrelated panic"
            );
            assert!(!a.is_locked());
            assert!(!b.is_locked());
        });
    }

    #[test]
    fn lock_word_packing() {
        let d = 0x7f_f000_1230usize as *const Descriptor;
        let w = LockWord::locked_with(d, LockWord::UNLOCKED_EMPTY);
        assert!(w.is_locked());
        assert!(!w.is_fifo());
        assert_eq!(w.descriptor(), d);
        let u = LockWord::UNLOCKED_EMPTY;
        assert!(!u.is_locked());
        assert!(u.descriptor().is_null());
        assert_eq!(LockWord::from_bits(w.to_bits()), w);
        // Policy bits ride along through every transition shape.
        let uf = LockWord::UNLOCKED_FIFO;
        assert!(!uf.is_locked());
        assert!(uf.is_fifo());
        assert!(uf.descriptor().is_null());
        let wf = LockWord::locked_with(d, uf);
        assert!(wf.is_locked());
        assert!(wf.is_fifo());
        assert_eq!(wf.descriptor(), d, "policy bits masked out of the pointer");
        assert_eq!(wf.unlocked(), uf, "release keeps the policy");
        assert!(wf.locked_null().is_fifo());
        assert!(wf.locked_null().is_locked());
        assert!(wf.locked_null().descriptor().is_null());
        assert_eq!(LockWord::locked_with(d, u), w, "race policy adds no bits");
    }

    #[test]
    fn admission_is_stamped_per_lock() {
        let race = Lock::new_with(Admission::Race);
        let fifo = Lock::new_with(Admission::Fifo);
        assert_eq!(race.admission(), Admission::Race);
        assert_eq!(fifo.admission(), Admission::Fifo);
        // The policy survives acquire/release cycles in the default
        // (lock-free) mode, including nested and early-unlock paths.
        assert_eq!(fifo.lock(|| 5u32), 5);
        assert_eq!(fifo.try_lock(|| 6u32), Some(6));
        assert_eq!(fifo.admission(), Admission::Fifo);
        assert!(!fifo.is_locked());
    }

    #[test]
    fn mode_switch_roundtrip() {
        set_lock_mode(LockMode::Blocking);
        assert_eq!(lock_mode(), LockMode::Blocking);
        set_lock_mode(LockMode::LockFree);
        assert_eq!(lock_mode(), LockMode::LockFree);
    }
}
