//! The thunk log: the heart of log-based idempotence (paper §3.2).
//!
//! Every descriptor owns a log — a chain of fixed-size blocks of write-once
//! entries. All processes running the same thunk commit the results of their
//! loggable operations (mutable loads, tag choices, allocations, retires,
//! explicit commits) to consecutive entries with a CAS; whoever commits first
//! wins and everyone else adopts the committed value. Because every run of a
//! thunk observes the same committed values, all runs take the same branches
//! and stay position-synchronized.

use flock_sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// Entries per log block. The paper's Flock uses 7 by default so that a block
/// plus its next pointer fill one 64-byte cache line.
pub const LOG_BLOCK_ENTRIES: usize = 7;

/// The empty log entry sentinel.
///
/// `u64::MAX` can never be a committed value: packed mutable words reserve
/// tag `0xFFFF` (see `flock_sync::pack`), tag choices and retire markers are
/// small, pointers fit in 48 bits, and user commits are checked.
pub const EMPTY: u64 = u64::MAX;

/// One block of write-once log entries plus a link to the next block.
#[repr(C)]
pub struct LogBlock {
    entries: [AtomicU64; LOG_BLOCK_ENTRIES],
    next: AtomicPtr<LogBlock>,
}

impl LogBlock {
    /// A fresh block with all entries empty.
    pub fn new() -> Self {
        Self {
            entries: [const { AtomicU64::new(EMPTY) }; LOG_BLOCK_ENTRIES],
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Try to commit `val` at `idx`; returns `(committed_value, was_first)`.
    ///
    /// Uses compare-and-compare-and-swap: under helping most commits lose, so
    /// the read-first check avoids the bus traffic of a doomed CAS (§6
    /// "Avoiding CASes").
    /// Ordering: log entries are write-once *agreement* cells, not part of
    /// any cross-location total-order argument — but the committed value is
    /// often a pointer (an idempotent allocation, a nested descriptor)
    /// whose pointee the adopting loser dereferences, so Acquire/Release
    /// edges are required: Release on the winning CAS publishes the
    /// pointee's initialization, Acquire on the pre-read and the failure
    /// path lets every adopter see it. `SeqCst` buys nothing here and costs
    /// a fence per commit on weakly-ordered targets.
    #[inline]
    pub fn commit_at(&self, idx: usize, val: u64) -> (u64, bool) {
        debug_assert!(val != EMPTY, "EMPTY is reserved as the log sentinel");
        #[cfg(feature = "model")]
        if crate::mutants::log_no_agreement() {
            return (val, true);
        }
        let entry = &self.entries[idx];
        let cur = entry.load(Ordering::Acquire);
        if cur != EMPTY {
            return (cur, false);
        }
        match entry.compare_exchange(EMPTY, val, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => (val, true),
            Err(winner) => (winner, false),
        }
    }

    /// Read the entry at `idx` (`EMPTY` if not yet committed).
    #[allow(dead_code)]
    #[inline]
    pub fn read_at(&self, idx: usize) -> u64 {
        // Ordering: Acquire — committed pointers may be dereferenced (see
        // commit_at).
        self.entries[idx].load(Ordering::Acquire)
    }

    /// The block following this one, allocating it idempotently if absent.
    ///
    /// The first thread to run off the end of a block allocates a fresh one
    /// and CASes it into `next`; losers free their block and adopt the winner
    /// (paper §6, "Arbitrary Length Logs").
    pub fn next_or_extend(&self) -> *const LogBlock {
        // Ordering: Acquire/Release pointer publication, same reasoning as
        // commit_at — the block behind the pointer is dereferenced.
        let cur = self.next.load(Ordering::Acquire);
        if !cur.is_null() {
            return cur;
        }
        let fresh = Box::into_raw(Box::new(LogBlock::new()));
        match self.next.compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => fresh,
            Err(winner) => {
                // SAFETY: `fresh` was just allocated here and never shared.
                drop(unsafe { Box::from_raw(fresh) });
                winner
            }
        }
    }

    /// Free all extension blocks hanging off this one and clear the link.
    ///
    /// # Safety
    ///
    /// No other thread may access this log chain concurrently or afterwards
    /// (either the descriptor was never shared, or a reclamation grace period
    /// has passed).
    pub unsafe fn free_extensions(&self) {
        // Ordering: Acquire swaps — exclusive access per the caller
        // contract, but the chain pointers were published by other threads'
        // release CASes, so acquire them before dereferencing.
        let mut p = self.next.swap(std::ptr::null_mut(), Ordering::Acquire);
        while !p.is_null() {
            // Detach the tail before dropping: LogBlock's Drop would
            // otherwise free the rest of the chain while this loop still
            // walks it.
            // SAFETY: blocks come from Box::into_raw in next_or_extend and
            // the chain is exclusively ours per the caller contract.
            let next = unsafe { (*p).next.swap(std::ptr::null_mut(), Ordering::Acquire) };
            // SAFETY: as above; freed exactly once.
            drop(unsafe { Box::from_raw(p) });
            p = next;
        }
    }

    /// Reset all entries to empty (descriptor pool reuse).
    ///
    /// # Safety
    ///
    /// Same contract as [`LogBlock::free_extensions`].
    pub unsafe fn reset(&self) {
        // SAFETY: forwarded contract.
        unsafe { self.free_extensions() };
        for e in &self.entries {
            // Ordering: Relaxed — exclusive access per contract; the next
            // publication of this block (descriptor install CAS) carries
            // the ordering.
            e.store(EMPTY, Ordering::Relaxed);
        }
    }
}

impl Default for LogBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LogBlock {
    fn drop(&mut self) {
        // Only the head block is dropped explicitly (it is embedded in a
        // descriptor); free any extensions exactly once.
        // SAFETY: drop implies exclusive access.
        unsafe { self.free_extensions() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_first_wins() {
        let b = LogBlock::new();
        let (v, first) = b.commit_at(0, 42);
        assert!(first);
        assert_eq!(v, 42);
        let (v2, first2) = b.commit_at(0, 99);
        assert!(!first2);
        assert_eq!(v2, 42, "losers must adopt the committed value");
        assert_eq!(b.read_at(0), 42);
        assert_eq!(b.read_at(1), EMPTY);
    }

    #[test]
    fn extension_is_idempotent() {
        let b = LogBlock::new();
        let n1 = b.next_or_extend();
        let n2 = b.next_or_extend();
        assert_eq!(n1, n2, "extension must not allocate twice");
        assert!(!n1.is_null());
        // Drop of `b` frees the extension chain.
    }

    #[test]
    fn racing_extensions_converge() {
        let b = std::sync::Arc::new(LogBlock::new());
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || b.next_or_extend() as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn reset_clears_entries_and_extensions() {
        let b = LogBlock::new();
        b.commit_at(0, 7);
        b.next_or_extend();
        // SAFETY: single-threaded test, exclusive access.
        unsafe { b.reset() };
        assert_eq!(b.read_at(0), EMPTY);
        assert!(b.next.load(Ordering::SeqCst).is_null());
    }

    #[test]
    fn racing_commits_have_one_winner() {
        let b = std::sync::Arc::new(LogBlock::new());
        let winners: usize = std::thread::scope(|s| {
            (0..8)
                .map(|i| {
                    let b = std::sync::Arc::clone(&b);
                    s.spawn(move || b.commit_at(3, 100 + i as u64).1 as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        let v = b.read_at(3);
        assert!((100..108).contains(&v));
    }
}
