//! Idempotent shared mutable cells: `Mutable<V>` and `UpdateOnce<V>`.
//!
//! `Mutable<V>` is the Rust rendition of the paper's `mutable_` wrapper
//! (Algorithm 2): a shared location whose `load`, `store` and `cam` are
//! idempotent when executed inside a thunk. The stored word is a 48-bit
//! payload alongside a 16-bit ABA tag — the representation all of the
//! paper's experiments use (§6 "ABA") — but the *payload* is produced by
//! the [`flock_sync::ValueRepr`] representation layer, so `V` is either
//!
//! * an **inline** type (fits 48 bits: integers, flags, pointers — the
//!   historical fast path, compiled identically because the indirect
//!   branches are `const`-false), or
//! * an **indirect** type (`flock_epoch::Indirect<T>`): the payload is a
//!   pointer to an epoch-managed heap copy. Stores then become
//!   allocate-swap-retire, and all three steps are made idempotent with
//!   the same thunk-log machinery as everything else: each run's fresh
//!   allocation is committed (losers free theirs, exactly like
//!   [`crate::alloc`]), and the retire of the displaced encoding is
//!   guarded by a committed marker (exactly like [`crate::retire`]), so a
//!   helped thunk re-reads a stable snapshot and every displaced value is
//!   dropped exactly once.
//!
//! Indirect loads decode by cloning out of the live allocation, which
//! requires grace-period protection; the cell pins the epoch itself on
//! every indirect decode/retire (a compiled-out no-op for inline types,
//! a reentrant depth bump on the structure/thunk paths that are already
//! pinned), so even bare unpinned callers are safe.
//!
//! Operation sketch (inside a thunk; outside, the log steps vanish):
//!
//! * `load` — read the packed word, commit it to the thunk log, return the
//!   payload of whatever got committed first.
//! * `store(v)` — `load` to agree on the old packed word; pick the next tag
//!   not announced for this location and commit the choice to the log (so all
//!   helpers build the identical new word); announce the expected tag; check
//!   the running descriptor is not already done; single CAS; clear the
//!   announcement. ABA-freedom of tagged words means only the first CAS
//!   succeeds.
//! * `cam(old, new)` — like `store` but aborts (idempotently, after the log
//!   commit) when the committed old value differs from `old`. CAM returns
//!   nothing: returning the CAS outcome would externalize a value that can
//!   differ between runs.
//!
//! Each public operation fetches the thread context **once** and threads it
//! through the log commit, tag scan and announcement — the `*_in` methods
//! are the reference-taking forms the lock hot path calls directly.
//!
//! `UpdateOnce<V>` covers the paper's *update-once* locations (§6): written
//! at most once after initialization, hence naturally ABA-free — loads log,
//! stores are plain writes.

use std::marker::PhantomData;

use flock_sync::announce;
use flock_sync::atomic::{AtomicU64, Ordering};
use flock_sync::pack::{PackedValue, ValueRepr, next_tag, pack, unpack_tag, unpack_val};
use flock_sync::tagged::TaggedAtomicU64;
use flock_sync::{ThreadCtx, thread_ctx};

use crate::ctx::commit_raw_in;
use crate::descriptor::Descriptor;

/// Marker committed to the log by the run that wins the retire of a
/// displaced indirect encoding (mirrors `idemp::RETIRE_MARKER`).
const VALUE_RETIRE_MARKER: u64 = 1;

/// A shared mutable location with idempotent operations.
///
/// Wrap any shared value that is modified inside a lock in a `Mutable`, as
/// the paper's examples do (`mutable_<link*> next;`). Reads and writes of
/// values that are *not* shared-and-mutated-under-locks don't need this —
/// plain fields are fine for constants.
///
/// `V` ranges over the [`ValueRepr`] layer: inline types behave exactly as
/// the historical 48-bit cell; `flock_epoch::Indirect<T>` values live
/// behind an epoch-managed pointer. Every operation that touches an
/// indirect encoding (load, cam, store's retire, `Debug`) pins the epoch
/// itself — free for inline instantiations (the branch is `const`-false),
/// a reentrant depth bump on the already-pinned structure/thunk paths —
/// so bare cells are safe to use without an explicit guard.
#[repr(transparent)]
pub struct Mutable<V: ValueRepr> {
    cell: TaggedAtomicU64,
    _pd: PhantomData<V>,
}

// SAFETY: all access goes through atomic operations; inline V is a Copy bit
// pattern, indirect V's repr impl requires `T: Send + Sync`.
unsafe impl<V: ValueRepr> Send for Mutable<V> {}
unsafe impl<V: ValueRepr> Sync for Mutable<V> {}

impl<V: ValueRepr> Drop for Mutable<V> {
    fn drop(&mut self) {
        if V::INDIRECT {
            // Exclusive access: free the final encoding immediately. When
            // the cell sits in an epoch-retired node this runs *after* the
            // grace period (at collector-drop time), so no reader can still
            // be decoding it.
            // SAFETY: the cell always holds a live encoding; `&mut self`
            // means no other thread can observe it again.
            unsafe { V::dealloc_bits(self.cell.load_val(Ordering::Relaxed)) };
        }
    }
}

impl<V: ValueRepr> Mutable<V> {
    /// A new cell holding `v` (tag 0). Allocates for indirect reprs.
    pub fn new(v: V) -> Self {
        Self {
            cell: TaggedAtomicU64::new(V::encode(v)),
            _pd: PhantomData,
        }
    }

    #[inline(always)]
    fn addr(&self) -> usize {
        &self.cell as *const TaggedAtomicU64 as usize
    }

    /// Raw packed word, bypassing the log. Used by the lock machinery for
    /// helper revalidation; not part of the public idempotent API.
    ///
    /// Ordering: Acquire. The helping protocol issues a `SeqCst` fence
    /// (epoch adoption) before this revalidation read, which anchors the
    /// required total-order reasoning; Acquire on the load itself is what
    /// makes the descriptor the word points to dereferenceable (its
    /// publication CAS is `SeqCst`, hence a release store).
    #[inline(always)]
    pub(crate) fn raw_packed(&self) -> u64 {
        self.cell.load_packed(Ordering::Acquire)
    }

    /// Direct access to the underlying tagged cell, for the blocking-mode
    /// lock paths that bypass the idempotence machinery entirely.
    #[inline(always)]
    pub(crate) fn raw_cell(&self) -> &TaggedAtomicU64 {
        &self.cell
    }

    /// Idempotent load.
    ///
    /// Inside a thunk, commits the observed packed word to the thunk log so
    /// every run of the thunk returns the same value. Outside, a plain
    /// atomic read.
    #[inline]
    pub fn load(&self) -> V {
        thread_ctx::with(|tc| self.load_in(tc))
    }

    /// Optimistic snapshot load: one plain `Acquire` read of the packed
    /// word, bypassing the thunk log, the thread-context fetch and the
    /// `SeqCst` linearization-point ordering of [`Mutable::load`].
    ///
    /// **Only for version-validated read paths outside any thunk** (the
    /// [`read_validated`](crate::read_validated) discipline): the observed
    /// value is meaningful solely because the bracketing lock version
    /// re-check discards windows in which a critical section committed.
    /// Inside a thunk this load would desynchronize helper replays — the
    /// combinator routes in-thunk callers to the committed path instead.
    ///
    /// Indirect decodes pin the epoch themselves (like [`Mutable::load`]),
    /// so a decoded-then-discarded snapshot from a window that later fails
    /// validation is still memory-safe: the encoding cannot be freed while
    /// this call is pinned.
    #[inline]
    pub fn load_acquire(&self) -> V {
        let _g = V::INDIRECT.then(flock_epoch::pin);
        // SAFETY: the payload is a live encoding (installed by `encode`,
        // displaced encodings are epoch-retired) and the guard above covers
        // indirect decodes.
        unsafe { V::decode(unpack_val(self.cell.load_packed(Ordering::Acquire))) }
    }

    /// [`Mutable::load`] against an already-fetched thread context.
    #[inline]
    pub(crate) fn load_in(&self, tc: &ThreadCtx) -> V {
        // Indirect decode dereferences the encoding, so it needs grace-
        // period protection even for bare top-level callers (e.g. a
        // `Locked` cell outside any structure operation) — without this, a
        // concurrent second store could retire-and-free the encoding under
        // the decode. Free for inline reprs (compiled out); cheap and
        // reentrant for the already-pinned structure/thunk paths.
        let _g = V::INDIRECT.then(|| flock_epoch::pin_with(tc));
        // SAFETY: the committed word's payload is a live encoding — it was
        // installed by `encode` and any displacing store retires it through
        // the epoch collector, which cannot free it while this read is
        // pinned (guard above, plus the owner pin / adopted epoch on
        // in-thunk paths).
        unsafe { V::decode(unpack_val(self.load_packed_committed_in(tc))) }
    }

    /// Idempotent load returning the full packed word (tag + payload), for
    /// callers that must later compare *incarnations* of this location, not
    /// just values — the lock help path keeps the tag so a recycled
    /// descriptor reinstalled at the same address cannot masquerade as the
    /// observed one (see `Lock::help`).
    #[inline]
    pub(crate) fn load_packed_in(&self, tc: &ThreadCtx) -> u64 {
        self.load_packed_committed_in(tc)
    }

    /// Idempotent load returning the full packed word (tag + payload).
    #[inline]
    fn load_packed_committed_in(&self, tc: &ThreadCtx) -> u64 {
        // Ordering: SeqCst — loads are the read linearization points of the
        // optimistic data-structure traversals built on this cell, and the
        // lock algorithm's "read the lock word" steps; on x86-TSO a SeqCst
        // load is a plain mov, so there is nothing to shave here anyway.
        let w = self.cell.load_packed(Ordering::SeqCst);
        #[cfg(feature = "model")]
        if crate::mutants::skip_load_commit() {
            return w;
        }
        let (committed, _) = commit_raw_in(tc, w);
        committed
    }

    /// Idempotent store.
    ///
    /// Stores and CAMs to the same location must not race (they should be
    /// protected by the location's lock), per the paper's model; concurrent
    /// loads are fine. For indirect reprs the displaced encoding is retired
    /// through the epoch collector (exactly once per logical store, even
    /// under helping) so concurrent readers keep a stable snapshot.
    #[inline]
    pub fn store(&self, new: V) {
        thread_ctx::with(|tc| {
            let old = self.load_packed_committed_in(tc);
            self.tagged_cas_after_load_in(tc, old, new);
        })
    }

    /// Idempotent compare-and-modify: store `new` only if the current value
    /// equals `old`. Returns nothing by design (see module docs).
    #[inline]
    pub fn cam(&self, old: V, new: V) {
        thread_ctx::with(|tc| self.cam_in(tc, old, new))
    }

    /// [`Mutable::cam`] against an already-fetched thread context.
    #[inline]
    pub(crate) fn cam_in(&self, tc: &ThreadCtx, old: V, new: V) {
        // Same unpinned-caller protection as `load_in`: the comparison
        // decodes the committed encoding.
        let _g = V::INDIRECT.then(|| flock_epoch::pin_with(tc));
        let committed_old = self.load_packed_committed_in(tc);
        // Inline: value equality *is* bit equality (encode is injective on
        // round-trips), keeping the historical comparison. Indirect: decode
        // and compare by value — distinct allocations of equal values must
        // still match. The branch compiles out per instantiation; both
        // sides are deterministic given the committed word, so every run of
        // a thunk takes the same path.
        let matches = if V::INDIRECT {
            // SAFETY: committed payload is a live encoding, pinned above.
            unsafe { V::decode(unpack_val(committed_old)) == old }
        } else {
            unpack_val(committed_old) == V::encode(old)
        };
        if !matches {
            return;
        }
        self.tagged_cas_after_load_in(tc, committed_old, new);
    }

    /// CAM guarded by a **full packed word** (tag included): fires only
    /// while the location still holds the exact incarnation `expected_packed`
    /// was read from. The help path's unlock uses this — a value-only guard
    /// would let a stale helper unlock a *later* reuse of the same
    /// descriptor address (same payload bits, newer tag).
    #[inline]
    pub(crate) fn cam_packed_in(&self, tc: &ThreadCtx, expected_packed: u64, new: V) {
        let committed_old = self.load_packed_committed_in(tc);
        if committed_old != expected_packed {
            return;
        }
        self.tagged_cas_after_load_in(tc, committed_old, new);
    }

    /// Shared tail of `store`/`cam`: given the committed old packed word,
    /// encode the new value (idempotently for indirect reprs), agree on a
    /// new tag, run the announcement protocol, CAS once, and retire the
    /// displaced encoding (idempotently, for indirect reprs).
    ///
    /// Log-slot discipline: every run of a thunk reaching this point
    /// consumes the identical commit sequence — [fresh-encoding]*, tag
    /// choice, [retire marker]* (indirect-only entries starred) — because
    /// all branches below depend only on committed values, never on timing.
    #[inline]
    fn tagged_cas_after_load_in(&self, tc: &ThreadCtx, committed_old: u64, new: V) {
        let old_tag = unpack_tag(committed_old);
        if !tc.in_thunk() {
            // Top level (or blocking mode): no helpers, no replay. A single
            // tag-bumping CAS; a CAS loop would mask racing stores, which
            // the model forbids anyway, so one attempt keeps semantics
            // identical to the logged path.
            let new_bits = V::encode(new);
            let installed = self
                .cell
                .ccas(committed_old, pack(next_tag(old_tag), new_bits));
            if V::INDIRECT {
                if installed {
                    // The displaced encoding may still be decoded by
                    // concurrent readers: grace-period retire. Pin locally —
                    // reentrant, and callers outside any guard (e.g. a bare
                    // `Locked` cell) get the protection they need.
                    let _g = flock_epoch::pin();
                    // SAFETY: displaced by the CAS above, retired once.
                    unsafe { V::retire_bits(unpack_val(committed_old)) };
                } else {
                    // The CAS lost (a racing store violated the model, or a
                    // stale caller): our encoding was never published.
                    // SAFETY: never escaped this call.
                    unsafe { V::dealloc_bits(new_bits) };
                }
            }
            return;
        }

        // Idempotent encode: every run allocates (indirect) or bit-casts
        // (inline) its own encoding; the first commit wins and losers free
        // theirs — the same shape as `crate::alloc`. The loser's allocation
        // can never alias the winner's: the winner's encoding stays
        // un-freed (installed, or retired but inside our adopted epoch)
        // while any run of this thunk is still replaying.
        let new_bits = if V::INDIRECT {
            let fresh = V::encode(new);
            let (committed, first) = commit_raw_in(tc, fresh);
            if !first && committed != fresh {
                // SAFETY: `fresh` lost the commit race; never published.
                unsafe { V::dealloc_bits(fresh) };
            }
            committed
        } else {
            V::encode(new)
        };

        // Agree on the tag for the new word. The first committer's choice —
        // made while scanning announcements — wins; everyone uses it.
        let table = announce::global();
        let candidate = table.next_free_tag(self.addr(), next_tag(old_tag));
        let (chosen, _) = commit_raw_in(tc, candidate as u64);
        let new_word = pack(chosen as u16, new_bits);

        // Chaos seam: the new word is committed to the thunk log but not yet
        // installed — a stall here is exactly the window helping exists for
        // (a helper replays the log, agrees on `new_word`, and installs it on
        // the victim's behalf). No-op in default builds.
        flock_sync::chaos::probe(flock_sync::chaos::Seam::LogCommitToInstall);

        // Hazard-style announcement of the expected (location, tag) pair:
        // announce, fence (inside announce), then re-check that the thunk is
        // not finished. If it is finished every effect is already applied
        // and a stale CAS here could only do harm (tag reuse), so skip.
        let me = tc.tid();
        table.announce(me, self.addr(), old_tag);
        let d = tc.descriptor.get() as *const Descriptor;
        // SAFETY: we are inside this descriptor's run (ctx invariant), so it
        // is live: owner-held or epoch-protected by the helping protocol.
        // The done read is the revalidation half of announce-then-
        // revalidate; `announce` just issued the announcer-side barrier it
        // pairs with (SeqCst swap on TSO, SeqCst fence elsewhere).
        let done = unsafe { (*d).is_done_announced() };
        if !done {
            self.cell.ccas(committed_old, new_word);
        }
        table.clear(me);

        if V::INDIRECT {
            // Idempotent retire of the displaced encoding — the same shape
            // as `crate::retire`: only the first run past this marker
            // performs the epoch retire. Unconditional (not gated on the
            // CAS outcome) because exactly one run's CAS installs the new
            // word — the location is store-serialized by its lock, so
            // `committed_old` is displaced by this logical store in every
            // execution. Runners are epoch-protected (owner pin / adopted
            // epoch), satisfying `retire_bits`' pinning contract.
            let (_, first) = commit_raw_in(tc, VALUE_RETIRE_MARKER);
            if first {
                // SAFETY: displaced exactly once per logical store; the
                // marker makes this run the unique retirer.
                unsafe { V::retire_bits(unpack_val(committed_old)) };
            }
        }
    }
}

impl<V: ValueRepr + std::fmt::Debug> std::fmt::Debug for Mutable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Indirect decode needs grace-period protection; pinning here keeps
        // `Debug` safe to call from any diagnostic context.
        let _g = V::INDIRECT.then(flock_epoch::pin);
        let w = self.cell.load_packed(Ordering::Acquire);
        // SAFETY: payload is a live encoding; pinned above when indirect.
        let v = unsafe { V::decode(unpack_val(w)) };
        f.debug_struct("Mutable")
            .field("value", &v)
            .field("tag", &unpack_tag(w))
            .finish()
    }
}

/// A shared location written at most once after initialization.
///
/// Naturally ABA-free, so it needs no tag, and its `store` can be a plain
/// write: every run of the thunk writes the same value, so only the first
/// has an effect (paper §6, "Constants and Update-once Locations"). Loads
/// inside a thunk still go through the log.
#[repr(transparent)]
pub struct UpdateOnce<V: PackedValue> {
    cell: AtomicU64,
    _pd: PhantomData<V>,
}

// SAFETY: atomic access only; V is a Copy bit-pattern.
unsafe impl<V: PackedValue> Send for UpdateOnce<V> {}
unsafe impl<V: PackedValue> Sync for UpdateOnce<V> {}

impl<V: PackedValue> UpdateOnce<V> {
    /// New cell with initial value `v`.
    pub fn new(v: V) -> Self {
        Self {
            cell: AtomicU64::new(v.to_bits()),
            _pd: PhantomData,
        }
    }

    /// Idempotent load (logged inside a thunk).
    #[inline]
    pub fn load(&self) -> V {
        // Ordering: Acquire pairs with the Release store below — an
        // update-once location is pure publication (all writers write the
        // same value), so no total-order reasoning ever involves it.
        let w = self.cell.load(Ordering::Acquire);
        let (committed, _) = crate::ctx::commit_raw(w | UPDATE_ONCE_PRESENT);
        V::from_bits(committed & !UPDATE_ONCE_PRESENT)
    }

    /// Plain `Acquire` load bypassing the thunk log — the `UpdateOnce`
    /// counterpart of [`Mutable::load_acquire`]. **Only for version-
    /// validated optimistic read paths outside any thunk** (the
    /// [`read_validated`](crate::read_validated) discipline).
    #[inline]
    pub fn load_acquire(&self) -> V {
        V::from_bits(self.cell.load(Ordering::Acquire))
    }

    /// Store the location's single update. Caller contract: all writers
    /// write equal values (e.g. a `removed = true` flag), which is what
    /// *update-once* means.
    #[inline]
    pub fn store(&self, v: V) {
        // Ordering: Release (see load). Idempotence, not ordering, is what
        // makes concurrent equal stores safe.
        self.cell.store(v.to_bits(), Ordering::Release);
    }
}

impl<V: PackedValue + std::fmt::Debug> std::fmt::Debug for UpdateOnce<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("UpdateOnce")
            .field(&V::from_bits(self.cell.load(Ordering::Acquire)))
            .finish()
    }
}

/// Bit 62 marker so a logged `UpdateOnce` word (48-bit payload) can never
/// collide with the `EMPTY` log sentinel while staying distinguishable.
/// (`EMPTY` is `u64::MAX`, i.e. *all* bits set — a marked payload has bits
/// 48..62 clear, so the two can never be confused; bit 63 is deliberately
/// left clear too.)
const UPDATE_ONCE_PRESENT: u64 = 1 << 62;

// The marker must live outside the 48-bit payload (or it would corrupt
// values) and a marked word must be distinguishable from the log's EMPTY
// sentinel (or a committed UpdateOnce load could read as "no entry").
const _: () = assert!(
    UPDATE_ONCE_PRESENT & flock_sync::VAL_MASK == 0,
    "UPDATE_ONCE_PRESENT must be outside the 48-bit payload mask"
);
const _: () = assert!(
    UPDATE_ONCE_PRESENT != crate::log::EMPTY
        && (flock_sync::VAL_MASK | UPDATE_ONCE_PRESENT) != crate::log::EMPTY,
    "a marked UpdateOnce word must never equal the EMPTY log sentinel"
);

/// Commit an arbitrary value to the current thunk log (paper: the public
/// `commitValue`). Use it to make any non-deterministic choice — a random
/// number, a timestamp — agree across all runs of a thunk.
///
/// Outside a thunk the input value is returned unchanged.
#[inline]
pub fn commit_value<V: PackedValue>(v: V) -> V {
    let (committed, _) = crate::ctx::commit_raw(v.to_bits() | UPDATE_ONCE_PRESENT);
    V::from_bits(committed & !UPDATE_ONCE_PRESENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_top_level() {
        let m = Mutable::new(5u32);
        assert_eq!(m.load(), 5);
        m.store(7);
        assert_eq!(m.load(), 7);
    }

    #[test]
    fn store_bumps_tag() {
        let m = Mutable::new(false);
        let t0 = unpack_tag(m.raw_packed());
        m.store(true);
        let t1 = unpack_tag(m.raw_packed());
        assert_eq!(t1, next_tag(t0));
        assert!(m.load());
    }

    #[test]
    fn cam_only_fires_on_match() {
        let m = Mutable::new(10u32);
        m.cam(11, 99);
        assert_eq!(m.load(), 10, "mismatched cam must be a no-op");
        m.cam(10, 99);
        assert_eq!(m.load(), 99);
    }

    #[test]
    fn pointer_mutable() {
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let m: Mutable<*mut u64> = Mutable::new(a);
        m.cam(a, b);
        assert_eq!(m.load(), b);
        // SAFETY: both allocated above, freed once.
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn update_once_roundtrip() {
        let u = UpdateOnce::new(false);
        assert!(!u.load());
        u.store(true);
        assert!(u.load());
    }

    #[test]
    fn commit_value_top_level_identity() {
        assert_eq!(commit_value(1234u32), 1234);
        assert!(!commit_value(false));
        assert_eq!(commit_value(0u32), 0, "zero must survive the marker bit");
    }

    #[test]
    fn marker_bit_is_outside_payload_and_not_empty() {
        // Runtime mirror of the compile-time asserts, for visibility.
        assert_eq!(UPDATE_ONCE_PRESENT, 1 << 62);
        assert_eq!(UPDATE_ONCE_PRESENT & flock_sync::VAL_MASK, 0);
        assert_ne!(
            flock_sync::VAL_MASK | UPDATE_ONCE_PRESENT,
            crate::log::EMPTY
        );
    }

    #[test]
    fn tag_survives_many_stores() {
        let m = Mutable::new(0u32);
        for i in 1..100u32 {
            m.store(i);
            assert_eq!(m.load(), i);
        }
        // One tag bump per store. Compute the expectation through the same
        // wrap function instead of hardcoding 99: the `model` feature (on
        // whenever flock-model is in the build graph, e.g. workspace-wide
        // test runs) shrinks the compile-time tag space far below 99.
        let mut expect = 0u16;
        for _ in 1..100 {
            expect = flock_sync::pack::next_tag(expect);
        }
        assert_eq!(unpack_tag(m.raw_packed()), expect);
    }

    /// Fat values through the indirect repr: load/store/cam round-trips.
    #[test]
    fn indirect_mutable_roundtrip() {
        use flock_epoch::Indirect;
        let m: Mutable<Indirect<[u64; 4]>> = Mutable::new(Indirect([1, 2, 3, 4]));
        let _g = flock_epoch::pin();
        assert_eq!(m.load(), Indirect([1, 2, 3, 4]));
        m.store(Indirect([5, 6, 7, 8]));
        assert_eq!(m.load(), Indirect([5, 6, 7, 8]));
        // Mismatched cam: distinct allocation, equal value NOT stored.
        m.cam(Indirect([0, 0, 0, 0]), Indirect([9, 9, 9, 9]));
        assert_eq!(m.load(), Indirect([5, 6, 7, 8]));
        // Matching cam compares by value across distinct allocations.
        m.cam(Indirect([5, 6, 7, 8]), Indirect([9, 9, 9, 9]));
        assert_eq!(m.load(), Indirect([9, 9, 9, 9]));
    }

    /// Every indirect encoding a `Mutable` ever held is dropped exactly
    /// once: overwritten ones via the epoch collector, the final one at
    /// cell drop. Runs under miri (no wall-clock, no thread spawns).
    #[test]
    fn indirect_store_drops_each_encoding_exactly_once() {
        use flock_epoch::Indirect;
        use std::sync::Arc;
        use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

        #[derive(Clone, Debug)]
        struct Counted(u64, Arc<AtomicUsize>);
        impl PartialEq for Counted {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                self.1.fetch_add(1, Relaxed);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let mk = |i: u64| Indirect(Counted(i, Arc::clone(&drops)));
        const N: u64 = 20;
        {
            let m = Mutable::new(mk(0));
            let _g = flock_epoch::pin();
            for i in 1..N {
                m.store(mk(i));
                assert_eq!(m.load().0.0, i);
            }
        } // cell dropped here: frees the final encoding
        flock_epoch::flush_all();
        // Created: N stored encodings + N-1 temporaries consumed by encode
        // (moved into the box, not dropped) + per-load clones. Rather than
        // count clones, assert the *live* balance: everything created was
        // dropped.
        // Each `mk` creates one Counted that ends up boxed; each load
        // clones one that drops at statement end. Boxed: N; loads: N-1.
        assert_eq!(drops.load(Relaxed), (N + N - 1) as usize);
    }

    /// Indirect stores inside lock-free thunks: the allocate/commit/retire
    /// triple stays exactly-once under contention and helping.
    #[test]
    #[cfg_attr(miri, ignore)] // multi-thread contention stress, slow under miri
    fn indirect_store_exactly_once_under_helping() {
        use flock_epoch::Indirect;
        use std::sync::Arc;
        use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};

        let _guard = crate::lock::TEST_MODE_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        crate::set_lock_mode(crate::LockMode::LockFree);

        static LIVE: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked(u64);
        impl Tracked {
            fn new(v: u64) -> Self {
                LIVE.fetch_add(1, Relaxed);
                Tracked(v)
            }
        }
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                Tracked::new(self.0)
            }
        }
        impl PartialEq for Tracked {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Relaxed);
            }
        }

        let before = LIVE.load(Relaxed);
        {
            let lock = Arc::new(crate::Lock::new());
            let cell: Arc<Mutable<Indirect<Tracked>>> =
                Arc::new(Mutable::new(Indirect(Tracked::new(0))));
            // Plain spawn + join (NOT thread::scope): a scope returns when
            // the spawned closures finish, but the threads' TLS destructors
            // — which orphan their epoch retire bags — may still be
            // running, so a flush right after a scope can miss items. An
            // explicit join waits for full thread termination.
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let lock = Arc::clone(&lock);
                    let cell = Arc::clone(&cell);
                    std::thread::spawn(move || {
                        let mut done = 0;
                        while done < 150 {
                            let c = Arc::clone(&cell);
                            let v = t * 1_000 + done;
                            if lock
                                .try_lock(move || {
                                    let cur = c.load();
                                    c.store(Indirect(Tracked::new(cur.0.0 + v)));
                                })
                                .is_some()
                            {
                                done += 1;
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        } // cell dropped: final encoding freed
        flock_epoch::flush_all();
        assert_eq!(
            LIVE.load(Relaxed),
            before,
            "an indirect encoding leaked or double-dropped under helping"
        );
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 2^16 stores, too slow under miri
    fn tag_wraps_cleanly() {
        let m = Mutable::new(0u32);
        // Drive the tag space all the way around (2^16 - 1 usable tags).
        for i in 0..(flock_sync::pack::TAG_LIMIT as u32 + 10) {
            m.store(i);
        }
        assert_eq!(m.load(), flock_sync::pack::TAG_LIMIT as u32 + 9);
    }
}
