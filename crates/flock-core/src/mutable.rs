//! Idempotent shared mutable cells: `Mutable<V>` and `UpdateOnce<V>`.
//!
//! `Mutable<V>` is the Rust rendition of the paper's `mutable_` wrapper
//! (Algorithm 2): a shared location whose `load`, `store` and `cam` are
//! idempotent when executed inside a thunk. Values are at most 48 bits
//! (see `flock_sync::pack::PackedValue`), stored alongside a 16-bit ABA tag
//! in one atomic word — the representation all of the paper's experiments
//! use (§6 "ABA").
//!
//! Operation sketch (inside a thunk; outside, the log steps vanish):
//!
//! * `load` — read the packed word, commit it to the thunk log, return the
//!   payload of whatever got committed first.
//! * `store(v)` — `load` to agree on the old packed word; pick the next tag
//!   not announced for this location and commit the choice to the log (so all
//!   helpers build the identical new word); announce the expected tag; check
//!   the running descriptor is not already done; single CAS; clear the
//!   announcement. ABA-freedom of tagged words means only the first CAS
//!   succeeds.
//! * `cam(old, new)` — like `store` but aborts (idempotently, after the log
//!   commit) when the committed old value differs from `old`. CAM returns
//!   nothing: returning the CAS outcome would externalize a value that can
//!   differ between runs.
//!
//! Each public operation fetches the thread context **once** and threads it
//! through the log commit, tag scan and announcement — the `*_in` methods
//! are the reference-taking forms the lock hot path calls directly.
//!
//! `UpdateOnce<V>` covers the paper's *update-once* locations (§6): written
//! at most once after initialization, hence naturally ABA-free — loads log,
//! stores are plain writes.

use std::marker::PhantomData;

use flock_sync::announce;
use flock_sync::atomic::{AtomicU64, Ordering};
use flock_sync::pack::{PackedValue, next_tag, pack, unpack_tag, unpack_val};
use flock_sync::tagged::TaggedAtomicU64;
use flock_sync::{ThreadCtx, thread_ctx};

use crate::ctx::commit_raw_in;
use crate::descriptor::Descriptor;

/// A shared mutable location with idempotent operations.
///
/// Wrap any shared value that is modified inside a lock in a `Mutable`, as
/// the paper's examples do (`mutable_<link*> next;`). Reads and writes of
/// values that are *not* shared-and-mutated-under-locks don't need this —
/// plain fields are fine for constants.
#[repr(transparent)]
pub struct Mutable<V: PackedValue> {
    cell: TaggedAtomicU64,
    _pd: PhantomData<V>,
}

// SAFETY: all access goes through atomic operations; V is a Copy bit-pattern.
unsafe impl<V: PackedValue> Send for Mutable<V> {}
unsafe impl<V: PackedValue> Sync for Mutable<V> {}

impl<V: PackedValue> Mutable<V> {
    /// A new cell holding `v` (tag 0).
    pub fn new(v: V) -> Self {
        Self {
            cell: TaggedAtomicU64::new(v.to_bits()),
            _pd: PhantomData,
        }
    }

    #[inline(always)]
    fn addr(&self) -> usize {
        &self.cell as *const TaggedAtomicU64 as usize
    }

    /// Raw packed word, bypassing the log. Used by the lock machinery for
    /// helper revalidation; not part of the public idempotent API.
    ///
    /// Ordering: Acquire. The helping protocol issues a `SeqCst` fence
    /// (epoch adoption) before this revalidation read, which anchors the
    /// required total-order reasoning; Acquire on the load itself is what
    /// makes the descriptor the word points to dereferenceable (its
    /// publication CAS is `SeqCst`, hence a release store).
    #[inline(always)]
    pub(crate) fn raw_packed(&self) -> u64 {
        self.cell.load_packed(Ordering::Acquire)
    }

    /// Direct access to the underlying tagged cell, for the blocking-mode
    /// lock paths that bypass the idempotence machinery entirely.
    #[inline(always)]
    pub(crate) fn raw_cell(&self) -> &TaggedAtomicU64 {
        &self.cell
    }

    /// Idempotent load.
    ///
    /// Inside a thunk, commits the observed packed word to the thunk log so
    /// every run of the thunk returns the same value. Outside, a plain
    /// atomic read.
    #[inline]
    pub fn load(&self) -> V {
        thread_ctx::with(|tc| self.load_in(tc))
    }

    /// [`Mutable::load`] against an already-fetched thread context.
    #[inline]
    pub(crate) fn load_in(&self, tc: &ThreadCtx) -> V {
        V::from_bits(unpack_val(self.load_packed_committed_in(tc)))
    }

    /// Idempotent load returning the full packed word (tag + payload), for
    /// callers that must later compare *incarnations* of this location, not
    /// just values — the lock help path keeps the tag so a recycled
    /// descriptor reinstalled at the same address cannot masquerade as the
    /// observed one (see `Lock::help`).
    #[inline]
    pub(crate) fn load_packed_in(&self, tc: &ThreadCtx) -> u64 {
        self.load_packed_committed_in(tc)
    }

    /// Idempotent load returning the full packed word (tag + payload).
    #[inline]
    fn load_packed_committed_in(&self, tc: &ThreadCtx) -> u64 {
        // Ordering: SeqCst — loads are the read linearization points of the
        // optimistic data-structure traversals built on this cell, and the
        // lock algorithm's "read the lock word" steps; on x86-TSO a SeqCst
        // load is a plain mov, so there is nothing to shave here anyway.
        let w = self.cell.load_packed(Ordering::SeqCst);
        #[cfg(feature = "model")]
        if crate::mutants::skip_load_commit() {
            return w;
        }
        let (committed, _) = commit_raw_in(tc, w);
        committed
    }

    /// Idempotent store.
    ///
    /// Stores and CAMs to the same location must not race (they should be
    /// protected by the location's lock), per the paper's model; concurrent
    /// loads are fine.
    #[inline]
    pub fn store(&self, new: V) {
        thread_ctx::with(|tc| {
            let old = self.load_packed_committed_in(tc);
            self.tagged_cas_after_load_in(tc, old, new);
        })
    }

    /// Idempotent compare-and-modify: store `new` only if the current value
    /// equals `old`. Returns nothing by design (see module docs).
    #[inline]
    pub fn cam(&self, old: V, new: V) {
        thread_ctx::with(|tc| self.cam_in(tc, old, new))
    }

    /// [`Mutable::cam`] against an already-fetched thread context.
    #[inline]
    pub(crate) fn cam_in(&self, tc: &ThreadCtx, old: V, new: V) {
        let committed_old = self.load_packed_committed_in(tc);
        if unpack_val(committed_old) != old.to_bits() {
            return;
        }
        self.tagged_cas_after_load_in(tc, committed_old, new);
    }

    /// CAM guarded by a **full packed word** (tag included): fires only
    /// while the location still holds the exact incarnation `expected_packed`
    /// was read from. The help path's unlock uses this — a value-only guard
    /// would let a stale helper unlock a *later* reuse of the same
    /// descriptor address (same payload bits, newer tag).
    #[inline]
    pub(crate) fn cam_packed_in(&self, tc: &ThreadCtx, expected_packed: u64, new: V) {
        let committed_old = self.load_packed_committed_in(tc);
        if committed_old != expected_packed {
            return;
        }
        self.tagged_cas_after_load_in(tc, committed_old, new);
    }

    /// Shared tail of `store`/`cam`: given the committed old packed word,
    /// agree on a new tag, run the announcement protocol, CAS once.
    #[inline]
    fn tagged_cas_after_load_in(&self, tc: &ThreadCtx, committed_old: u64, new: V) {
        let old_tag = unpack_tag(committed_old);
        if !tc.in_thunk() {
            // Top level (or blocking mode): no helpers, no replay. A single
            // tag-bumping CAS; a CAS loop would mask racing stores, which
            // the model forbids anyway, so one attempt keeps semantics
            // identical to the logged path.
            self.cell
                .ccas(committed_old, pack(next_tag(old_tag), new.to_bits()));
            return;
        }

        // Agree on the tag for the new word. The first committer's choice —
        // made while scanning announcements — wins; everyone uses it.
        let table = announce::global();
        let candidate = table.next_free_tag(self.addr(), next_tag(old_tag));
        let (chosen, _) = commit_raw_in(tc, candidate as u64);
        let new_word = pack(chosen as u16, new.to_bits());

        // Hazard-style announcement of the expected (location, tag) pair:
        // announce, fence (inside announce), then re-check that the thunk is
        // not finished. If it is finished every effect is already applied
        // and a stale CAS here could only do harm (tag reuse), so skip.
        let me = tc.tid();
        table.announce(me, self.addr(), old_tag);
        let d = tc.descriptor.get() as *const Descriptor;
        // SAFETY: we are inside this descriptor's run (ctx invariant), so it
        // is live: owner-held or epoch-protected by the helping protocol.
        // The done read is the revalidation half of announce-then-
        // revalidate; `announce` just issued the announcer-side barrier it
        // pairs with (SeqCst swap on TSO, SeqCst fence elsewhere).
        let done = unsafe { (*d).is_done_announced() };
        if !done {
            self.cell.ccas(committed_old, new_word);
        }
        table.clear(me);
    }
}

impl<V: PackedValue + std::fmt::Debug> std::fmt::Debug for Mutable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.cell.load_packed(Ordering::Acquire);
        f.debug_struct("Mutable")
            .field("value", &V::from_bits(unpack_val(w)))
            .field("tag", &unpack_tag(w))
            .finish()
    }
}

/// A shared location written at most once after initialization.
///
/// Naturally ABA-free, so it needs no tag, and its `store` can be a plain
/// write: every run of the thunk writes the same value, so only the first
/// has an effect (paper §6, "Constants and Update-once Locations"). Loads
/// inside a thunk still go through the log.
#[repr(transparent)]
pub struct UpdateOnce<V: PackedValue> {
    cell: AtomicU64,
    _pd: PhantomData<V>,
}

// SAFETY: atomic access only; V is a Copy bit-pattern.
unsafe impl<V: PackedValue> Send for UpdateOnce<V> {}
unsafe impl<V: PackedValue> Sync for UpdateOnce<V> {}

impl<V: PackedValue> UpdateOnce<V> {
    /// New cell with initial value `v`.
    pub fn new(v: V) -> Self {
        Self {
            cell: AtomicU64::new(v.to_bits()),
            _pd: PhantomData,
        }
    }

    /// Idempotent load (logged inside a thunk).
    #[inline]
    pub fn load(&self) -> V {
        // Ordering: Acquire pairs with the Release store below — an
        // update-once location is pure publication (all writers write the
        // same value), so no total-order reasoning ever involves it.
        let w = self.cell.load(Ordering::Acquire);
        let (committed, _) = crate::ctx::commit_raw(w | UPDATE_ONCE_PRESENT);
        V::from_bits(committed & !UPDATE_ONCE_PRESENT)
    }

    /// Store the location's single update. Caller contract: all writers
    /// write equal values (e.g. a `removed = true` flag), which is what
    /// *update-once* means.
    #[inline]
    pub fn store(&self, v: V) {
        // Ordering: Release (see load). Idempotence, not ordering, is what
        // makes concurrent equal stores safe.
        self.cell.store(v.to_bits(), Ordering::Release);
    }
}

impl<V: PackedValue + std::fmt::Debug> std::fmt::Debug for UpdateOnce<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("UpdateOnce")
            .field(&V::from_bits(self.cell.load(Ordering::Acquire)))
            .finish()
    }
}

/// Bit 62 marker so a logged `UpdateOnce` word (48-bit payload) can never
/// collide with the `EMPTY` log sentinel while staying distinguishable.
/// (`EMPTY` is `u64::MAX`, i.e. *all* bits set — a marked payload has bits
/// 48..62 clear, so the two can never be confused; bit 63 is deliberately
/// left clear too.)
const UPDATE_ONCE_PRESENT: u64 = 1 << 62;

// The marker must live outside the 48-bit payload (or it would corrupt
// values) and a marked word must be distinguishable from the log's EMPTY
// sentinel (or a committed UpdateOnce load could read as "no entry").
const _: () = assert!(
    UPDATE_ONCE_PRESENT & flock_sync::VAL_MASK == 0,
    "UPDATE_ONCE_PRESENT must be outside the 48-bit payload mask"
);
const _: () = assert!(
    UPDATE_ONCE_PRESENT != crate::log::EMPTY
        && (flock_sync::VAL_MASK | UPDATE_ONCE_PRESENT) != crate::log::EMPTY,
    "a marked UpdateOnce word must never equal the EMPTY log sentinel"
);

/// Commit an arbitrary value to the current thunk log (paper: the public
/// `commitValue`). Use it to make any non-deterministic choice — a random
/// number, a timestamp — agree across all runs of a thunk.
///
/// Outside a thunk the input value is returned unchanged.
#[inline]
pub fn commit_value<V: PackedValue>(v: V) -> V {
    let (committed, _) = crate::ctx::commit_raw(v.to_bits() | UPDATE_ONCE_PRESENT);
    V::from_bits(committed & !UPDATE_ONCE_PRESENT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_top_level() {
        let m = Mutable::new(5u32);
        assert_eq!(m.load(), 5);
        m.store(7);
        assert_eq!(m.load(), 7);
    }

    #[test]
    fn store_bumps_tag() {
        let m = Mutable::new(false);
        let t0 = unpack_tag(m.raw_packed());
        m.store(true);
        let t1 = unpack_tag(m.raw_packed());
        assert_eq!(t1, next_tag(t0));
        assert!(m.load());
    }

    #[test]
    fn cam_only_fires_on_match() {
        let m = Mutable::new(10u32);
        m.cam(11, 99);
        assert_eq!(m.load(), 10, "mismatched cam must be a no-op");
        m.cam(10, 99);
        assert_eq!(m.load(), 99);
    }

    #[test]
    fn pointer_mutable() {
        let a = Box::into_raw(Box::new(1u64));
        let b = Box::into_raw(Box::new(2u64));
        let m: Mutable<*mut u64> = Mutable::new(a);
        m.cam(a, b);
        assert_eq!(m.load(), b);
        // SAFETY: both allocated above, freed once.
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn update_once_roundtrip() {
        let u = UpdateOnce::new(false);
        assert!(!u.load());
        u.store(true);
        assert!(u.load());
    }

    #[test]
    fn commit_value_top_level_identity() {
        assert_eq!(commit_value(1234u32), 1234);
        assert!(!commit_value(false));
        assert_eq!(commit_value(0u32), 0, "zero must survive the marker bit");
    }

    #[test]
    fn marker_bit_is_outside_payload_and_not_empty() {
        // Runtime mirror of the compile-time asserts, for visibility.
        assert_eq!(UPDATE_ONCE_PRESENT, 1 << 62);
        assert_eq!(UPDATE_ONCE_PRESENT & flock_sync::VAL_MASK, 0);
        assert_ne!(
            flock_sync::VAL_MASK | UPDATE_ONCE_PRESENT,
            crate::log::EMPTY
        );
    }

    #[test]
    fn tag_survives_many_stores() {
        let m = Mutable::new(0u32);
        for i in 1..100u32 {
            m.store(i);
            assert_eq!(m.load(), i);
        }
        assert_eq!(unpack_tag(m.raw_packed()), 99);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // 2^16 stores, too slow under miri
    fn tag_wraps_cleanly() {
        let m = Mutable::new(0u32);
        // Drive the tag space all the way around (2^16 - 1 usable tags).
        for i in 0..(flock_sync::pack::TAG_LIMIT as u32 + 10) {
            m.store(i);
        }
        assert_eq!(m.load(), flock_sync::pack::TAG_LIMIT as u32 + 9);
    }
}
