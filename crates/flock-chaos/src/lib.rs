//! # flock-chaos — fault injection at the Flock protocol seams
//!
//! Reusable [`ChaosPolicy`] implementations for the named injection points
//! in [`flock_sync::chaos`]: this crate is to the chaos seams what
//! `flock-model` is to the atomics shim — the *driver* side of a seam
//! discipline whose production side compiles to nothing in default builds.
//!
//! Three injector families, composable through [`Composite`]:
//!
//! * [`StallPolicy`] — park designated victim threads at a chosen seam,
//!   bounded or until released. A victim parked at [`Seam::InThunk`] is the
//!   paper's motivating adversary: a thread descheduled (here: frozen)
//!   mid-critical-section while the rest of the system needs the lock it
//!   holds. Lock-free mode must sail past it (helpers complete the thunk
//!   from the committed descriptor); blocking mode must demonstrably stall.
//! * [`PanicPolicy`] — unwind out of a chosen seam on designated threads, a
//!   bounded number of times. A panic at [`Seam::InThunk`] on a helper
//!   thread is "the helper died executing someone else's critical section",
//!   which exercises the panic-safety contract in `flock_core::lock`.
//! * [`churn`] — oversubscription churn: repeatedly spawn and join short
//!   batches of worker threads under load, stressing thread-id claim and
//!   release, announcement-table scans, and epoch-bag orphaning.
//!
//! Policies are registered process-globally
//! ([`flock_sync::chaos::set_chaos_policy`]); tests that register them must
//! serialize (the conformance harness's `exclusive` lock, or any
//! process-global mutex).

#![warn(missing_docs)]

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

pub use flock_sync::chaos::{ChaosPolicy, Seam, clear_chaos_policy, set_chaos_policy};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Park designated victim threads at a chosen seam until released (or until
/// a configured bound elapses). Each victim stalls **once** — after its
/// stall is served, later crossings pass through freely, so a released
/// victim can finish its operation (including any helped replay).
pub struct StallPolicy {
    seam: Seam,
    victims: Mutex<HashSet<ThreadId>>,
    served: Mutex<HashSet<ThreadId>>,
    parked: AtomicUsize,
    released: Mutex<bool>,
    cv: Condvar,
    bound: Option<Duration>,
}

impl StallPolicy {
    /// A new unbounded stall at `seam`: victims park until
    /// [`StallPolicy::release_all`].
    pub fn new(seam: Seam) -> Arc<Self> {
        Arc::new(Self {
            seam,
            victims: Mutex::new(HashSet::new()),
            served: Mutex::new(HashSet::new()),
            parked: AtomicUsize::new(0),
            released: Mutex::new(false),
            cv: Condvar::new(),
            bound: None,
        })
    }

    /// A stall at `seam` bounded by `bound`: a victim parks until released
    /// or until the bound elapses, whichever comes first.
    pub fn bounded(seam: Seam, bound: Duration) -> Arc<Self> {
        Arc::new(Self {
            bound: Some(bound),
            ..match Arc::try_unwrap(Self::new(seam)) {
                Ok(p) => p,
                Err(_) => unreachable!("fresh Arc has one owner"),
            }
        })
    }

    /// Designate the calling thread as a victim: its next crossing of the
    /// policy's seam parks it.
    pub fn arm_current(&self) {
        lock(&self.victims).insert(std::thread::current().id());
    }

    /// Number of victims currently parked at the seam.
    pub fn parked_count(&self) -> usize {
        self.parked.load(Ordering::Acquire)
    }

    /// Block until at least `n` victims are parked, up to `timeout`.
    /// Returns whether the count was reached.
    pub fn wait_parked(&self, n: usize, timeout: Duration) -> bool {
        let t0 = Instant::now();
        while self.parked_count() < n {
            if t0.elapsed() > timeout {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    /// Wake every parked victim (idempotent). Victims that already served
    /// their stall never park again on this policy.
    pub fn release_all(&self) {
        *lock(&self.released) = true;
        self.cv.notify_all();
    }
}

impl ChaosPolicy for StallPolicy {
    fn at(&self, seam: Seam) {
        if seam != self.seam {
            return;
        }
        let me = std::thread::current().id();
        if !lock(&self.victims).contains(&me) {
            return;
        }
        // One stall per victim: mark served *before* parking so the
        // post-release resumption (and any replay it performs) passes.
        if !lock(&self.served).insert(me) {
            return;
        }
        self.parked.fetch_add(1, Ordering::AcqRel);
        let deadline = self.bound.map(|b| Instant::now() + b);
        let mut rel = lock(&self.released);
        while !*rel {
            match deadline {
                None => rel = self.cv.wait(rel).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break;
                    }
                    let (g, _) = self
                        .cv
                        .wait_timeout(rel, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    rel = g;
                }
            }
        }
        drop(rel);
        self.parked.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Panic out of a chosen seam on designated threads, a bounded number of
/// times. The injected panic carries a recognizable message so tests can
/// distinguish it from real failures.
pub struct PanicPolicy {
    seam: Seam,
    victims: Mutex<HashSet<ThreadId>>,
    remaining: AtomicUsize,
}

/// The panic payload message [`PanicPolicy`] unwinds with.
pub const INJECTED_PANIC: &str = "flock-chaos: injected panic";

impl PanicPolicy {
    /// Fire at most `times` panics at `seam`, on armed threads only.
    pub fn new(seam: Seam, times: usize) -> Arc<Self> {
        Arc::new(Self {
            seam,
            victims: Mutex::new(HashSet::new()),
            remaining: AtomicUsize::new(times),
        })
    }

    /// Designate the calling thread: its crossings of the seam may panic.
    pub fn arm_current(&self) {
        lock(&self.victims).insert(std::thread::current().id());
    }

    /// Injections not yet fired.
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

impl ChaosPolicy for PanicPolicy {
    fn at(&self, seam: Seam) {
        if seam != self.seam {
            return;
        }
        if !lock(&self.victims).contains(&std::thread::current().id()) {
            return;
        }
        if self
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("{INJECTED_PANIC} at {seam:?}");
        }
    }
}

/// Run several policies at every seam crossing, in order. Lets a schedule
/// combine, say, a stall on one thread with a panic injection on another.
pub struct Composite(pub Vec<Arc<dyn ChaosPolicy>>);

impl ChaosPolicy for Composite {
    fn at(&self, seam: Seam) {
        for p in &self.0 {
            p.at(seam);
        }
    }
}

/// Oversubscription churn: `rounds` times, spawn a batch of `batch` worker
/// threads running `work(worker_index)` and join them all. Every round
/// claims and releases a fresh set of thread ids and orphans each worker's
/// epoch retire bag, stressing exactly the registries a long-lived pool
/// never exercises: tid reclaim, announcement-table scan bounds, and
/// orphan-bag reclamation.
///
/// Returns the thread-id high-water mark after the churn — a caller
/// asserting tid *reclaim* checks it stayed close to `batch` (ids were
/// reused round over round) rather than growing by `rounds * batch`.
pub fn churn<F>(rounds: usize, batch: usize, work: F) -> usize
where
    F: Fn(usize) + Send + Sync,
{
    for r in 0..rounds {
        std::thread::scope(|s| {
            for i in 0..batch {
                let work = &work;
                s.spawn(move || work(r * batch + i));
            }
        });
    }
    flock_sync::tid::high_water_mark()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_core::{Lock, Mutable};
    use std::sync::atomic::{AtomicBool, AtomicU64};

    /// Serializes chaos tests (policy registry + lock mode are global) and
    /// pins lock-free mode.
    fn exclusive(test: impl Fn()) {
        flock_api::testing::exclusive(test);
    }

    /// A stalled victim parks at the seam and wakes on release; non-victims
    /// pass through untouched.
    #[test]
    fn stall_policy_parks_and_releases() {
        exclusive(|| {
            let stall = StallPolicy::new(Seam::InThunk);
            set_chaos_policy(stall.clone());
            let n = Arc::new(Mutable::new(0u64));
            let l = Arc::new(Lock::new());
            std::thread::scope(|s| {
                {
                    let (stall, n, l) = (Arc::clone(&stall), Arc::clone(&n), Arc::clone(&l));
                    s.spawn(move || {
                        stall.arm_current();
                        let n2 = Arc::clone(&n);
                        l.lock(move || n2.store(n2.load() + 1));
                    });
                }
                assert!(
                    stall.wait_parked(1, Duration::from_secs(10)),
                    "victim never parked"
                );
                // A non-victim completes the same critical section by
                // helping past the parked victim (lock-free mode).
                let n2 = Arc::clone(&n);
                l.lock(move || n2.store(n2.load() + 1));
                stall.release_all();
            });
            assert_eq!(stall.parked_count(), 0);
            assert_eq!(n.load(), 2, "both increments applied exactly once");
            clear_chaos_policy();
        });
    }

    /// A bounded stall self-releases: no deadlock even if the test never
    /// calls `release_all`.
    #[test]
    fn bounded_stall_self_releases() {
        exclusive(|| {
            let stall = StallPolicy::bounded(Seam::InThunk, Duration::from_millis(50));
            set_chaos_policy(stall.clone());
            let l = Lock::new();
            stall.arm_current();
            let t0 = Instant::now();
            assert_eq!(l.try_lock(|| 5u32), Some(5));
            assert!(
                t0.elapsed() >= Duration::from_millis(40),
                "bounded stall did not park"
            );
            clear_chaos_policy();
        });
    }

    /// Owner panics mid-thunk while helpers race it: every helper operation
    /// still completes exactly once, the lock is never left held, and the
    /// owner observes a panic each round. This is the panic-contract
    /// regression test the satellite asks for, run as a stress so the
    /// helper actually overlaps the owner's unwind in some rounds.
    #[test]
    fn owner_panic_with_racing_helpers() {
        exclusive(|| {
            let l = Arc::new(Lock::new());
            let ok_ops = Arc::new(Mutable::new(0u64));
            let stop = Arc::new(AtomicBool::new(false));
            const ROUNDS: usize = 200;
            std::thread::scope(|s| {
                // Helper: hammers the same lock with well-behaved thunks.
                {
                    let (l, ok_ops, stop) =
                        (Arc::clone(&l), Arc::clone(&ok_ops), Arc::clone(&stop));
                    s.spawn(move || {
                        while !stop.load(Ordering::Acquire) {
                            let n = Arc::clone(&ok_ops);
                            l.lock(move || n.store(n.load() + 1));
                        }
                    });
                }
                // Owner: panics inside its critical section every round.
                for _ in 0..ROUNDS {
                    let l2 = Arc::clone(&l);
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        l2.lock(|| -> () { panic!("owner boom") })
                    }));
                    assert!(r.is_err(), "owner's panic must reach the owner");
                }
                stop.store(true, Ordering::Release);
            });
            assert!(!l.is_locked(), "a panicking owner left the lock held");
            // The lock stays fully usable.
            assert_eq!(l.try_lock(|| 1u32), Some(1));
        });
    }

    /// Helper panics while executing the victim's critical section (the
    /// victim is parked mid-thunk): the helper swallows the panic after
    /// restoring protocol safety, finishes its own operation, and the
    /// *owner* reports the panic when it resumes — never a hung lock,
    /// never a double-applied thunk.
    #[test]
    fn helper_panic_reported_by_owner() {
        exclusive(|| {
            let stall = StallPolicy::new(Seam::InThunk);
            let inject = PanicPolicy::new(Seam::InThunk, 1);
            set_chaos_policy(Arc::new(Composite(vec![
                stall.clone() as Arc<dyn ChaosPolicy>,
                inject.clone() as Arc<dyn ChaosPolicy>,
            ])));
            let l = Arc::new(Lock::new());
            let n = Arc::new(Mutable::new(0u64));
            let victim_result = Arc::new(Mutex::new(None));
            std::thread::scope(|s| {
                {
                    let (stall, l, n, out) = (
                        Arc::clone(&stall),
                        Arc::clone(&l),
                        Arc::clone(&n),
                        Arc::clone(&victim_result),
                    );
                    s.spawn(move || {
                        stall.arm_current();
                        let n2 = Arc::clone(&n);
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            l.lock(move || n2.store(n2.load() + 1))
                        }));
                        *lock(&out) = Some(r.is_err());
                    });
                }
                assert!(
                    stall.wait_parked(1, Duration::from_secs(10)),
                    "victim never parked"
                );
                // Helper thread: armed for the injection, it panics at the
                // victim's thunk seam while helping, recovers, then
                // completes its own op.
                {
                    let (inject, l, n) = (Arc::clone(&inject), Arc::clone(&l), Arc::clone(&n));
                    s.spawn(move || {
                        inject.arm_current();
                        let n2 = Arc::clone(&n);
                        l.lock(move || n2.store(n2.load() + 10));
                    });
                }
                // Wait until the helper consumed the injection and got its
                // own op through, then release the victim.
                let t0 = Instant::now();
                while n.load() != 10 {
                    assert!(
                        t0.elapsed() < Duration::from_secs(10),
                        "helper never completed its own op after the injected panic \
                         (n = {})",
                        n.load()
                    );
                    std::thread::yield_now();
                }
                stall.release_all();
            });
            assert_eq!(inject.remaining(), 0, "injection never fired");
            assert_eq!(
                *lock(&victim_result),
                Some(true),
                "the owner of the panicked critical section must observe a panic"
            );
            assert_eq!(
                n.load(),
                10,
                "panicked critical section must have no effect; helper's own op exactly once"
            );
            assert!(!l.is_locked(), "lock hung after a helper panic");
            assert_eq!(l.try_lock(|| 2u32), Some(2), "lock unusable afterwards");
            clear_chaos_policy();
        });
    }

    /// Churned workers reclaim thread ids: the high-water mark stays near
    /// one batch's width instead of growing with every round.
    #[test]
    fn churn_reclaims_thread_ids() {
        exclusive(|| {
            let l = Arc::new(Lock::new());
            let n = Arc::new(Mutable::new(0u64));
            const ROUNDS: usize = 10;
            const BATCH: usize = 6;
            let before = flock_sync::tid::high_water_mark();
            let hwm = churn(ROUNDS, BATCH, |_| {
                for _ in 0..20 {
                    let n2 = Arc::clone(&n);
                    l.lock(move || n2.store(n2.load() + 1));
                }
            });
            assert_eq!(n.load(), (ROUNDS * BATCH * 20) as u64);
            // Reclaim bound: one batch beyond whatever was live before the
            // churn — NOT rounds * batch (which unreclaimed ids would hit).
            assert!(
                hwm <= before + BATCH,
                "thread ids not reclaimed across churn rounds: high-water {hwm} \
                 (was {before}, batch {BATCH})"
            );
        });
    }
    /// Panic storm: a saboteur's seam crossings inject panics while two
    /// workers race it on the same keys. Every *observed* panic must be an
    /// expected kind — the saboteur's own unwind or a racing owner's
    /// "critical section panicked during helped execution" report — and the
    /// structure must stay fully usable. Observed can be *less* than fired:
    /// an injection landing in a help run of an operation whose owner
    /// already completed and returned is swallowed by the helper's recovery
    /// (the panic aborted only a redundant replay), so it surfaces nowhere.
    /// The workload alternates insert/remove so presence toggles and every
    /// thread keeps crossing the lock (an insert of an already-present key
    /// returns through the outside-the-lock check and never reaches a seam).
    #[test]
    fn panic_storm_at_most_once_reporting() {
        exclusive(|| {
            fn expected_storm_panic(payload: &(dyn std::any::Any + Send)) -> bool {
                let msg = if let Some(s) = payload.downcast_ref::<String>() {
                    s.as_str()
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    s
                } else {
                    return false;
                };
                msg.contains(INJECTED_PANIC)
                    || msg.contains("critical section panicked during helped execution")
            }
            let inject = PanicPolicy::new(Seam::InThunk, 5);
            set_chaos_policy(Arc::clone(&inject) as Arc<dyn ChaosPolicy>);
            let map: flock_ds::hashtable::HashTable<u64, u64> =
                flock_ds::hashtable::HashTable::with_capacity(1024);
            let observed = AtomicU64::new(0);
            let unexpected = AtomicU64::new(0);
            let stop = AtomicBool::new(false);
            std::thread::scope(|s| {
                {
                    let (map, inject, observed, unexpected, stop) =
                        (&map, &inject, &observed, &unexpected, &stop);
                    s.spawn(move || {
                        inject.arm_current();
                        let mut i = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            i += 1;
                            let key = [3u64, 11][(i % 2) as usize];
                            let op = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if i.is_multiple_of(2) {
                                    map.insert(key, i);
                                } else {
                                    map.remove(key);
                                }
                            }));
                            if let Err(payload) = op {
                                if expected_storm_panic(payload.as_ref()) {
                                    observed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    unexpected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
                for w in 0..2u64 {
                    let (map, observed, unexpected, stop) = (&map, &observed, &unexpected, &stop);
                    s.spawn(move || {
                        let mut i = w;
                        while !stop.load(Ordering::Acquire) {
                            i += 1;
                            let key = [3u64, 11][(i % 2) as usize];
                            let op = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if i.is_multiple_of(3) {
                                    map.remove(key);
                                } else {
                                    map.insert(key, i);
                                }
                            }));
                            if let Err(payload) = op {
                                if expected_storm_panic(payload.as_ref()) {
                                    observed.fetch_add(1, Ordering::Relaxed);
                                } else {
                                    unexpected.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
                let t0 = Instant::now();
                while inject.remaining() > 0 && t0.elapsed() < Duration::from_secs(20) {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Release);
            });
            clear_chaos_policy();
            assert_eq!(inject.remaining(), 0, "storm never fired all injections");
            assert_eq!(
                unexpected.load(Ordering::Relaxed),
                0,
                "a panic with an unrecognized payload escaped the storm"
            );
            let n = observed.load(Ordering::Relaxed);
            assert!(n <= 5, "more panics observed ({n}) than injected (5)");
            assert!(n >= 1, "no injected panic was ever observed");
            assert!(map.insert(99, 1), "map unusable after the storm");
            assert_eq!(map.get(99), Some(1));
            flock_epoch::flush_all();
        });
    }
}
