//! One `map_conformance!` instantiation per Flock structure (both lock
//! disciplines of the leaftree included): the shared differential-oracle +
//! partitioned-stress + provided-method suite, run in both lock modes.

use flock_ds::abtree::ABTree;
use flock_ds::arttree::ArtTree;
use flock_ds::dlist::DList;
use flock_ds::hashtable::HashTable;
use flock_ds::lazylist::LazyList;
use flock_ds::leaftreap::LeafTreap;
use flock_ds::leaftree::LeafTree;

flock_api::map_conformance!(dlist, DList::new());
flock_api::map_conformance!(lazylist, LazyList::new());
flock_api::map_conformance!(hashtable, HashTable::with_capacity(512));
flock_api::map_conformance!(leaftree, LeafTree::new());
flock_api::map_conformance!(leaftree_strict, LeafTree::new_strict());
flock_api::map_conformance!(leaftreap, LeafTreap::new());
flock_api::map_conformance!(abtree, ABTree::new());
flock_api::map_conformance!(arttree, ArtTree::new());
