//! One `map_conformance!` instantiation per Flock structure (both lock
//! disciplines of the leaftree included): the shared differential-oracle +
//! partitioned-stress + provided-method suite, run in both lock modes.
//! Ordered structures additionally stamp `ordered_map_conformance!` — the
//! range-scan oracle and the concurrent scan-consistency suite at all
//! three `(K, V)` shapes. The hash table is the one unordered structure
//! and stays point-op only.

use flock_ds::abtree::ABTree;
use flock_ds::arttree::ArtTree;
use flock_ds::dlist::DList;
use flock_ds::hashtable::HashTable;
use flock_ds::lazylist::LazyList;
use flock_ds::leaftreap::LeafTreap;
use flock_ds::leaftree::LeafTree;

flock_api::map_conformance!(dlist, DList::new());
flock_api::map_conformance!(lazylist, LazyList::new());
flock_api::map_conformance!(hashtable, HashTable::with_capacity(512));
flock_api::map_conformance!(leaftree, LeafTree::new());
flock_api::map_conformance!(leaftree_strict, LeafTree::new_strict());
flock_api::map_conformance!(leaftreap, LeafTreap::new());
flock_api::map_conformance!(abtree, ABTree::new());
flock_api::map_conformance!(arttree, ArtTree::new());

flock_api::ordered_map_conformance!(dlist_ordered, DList::new());
flock_api::ordered_map_conformance!(lazylist_ordered, LazyList::new());
flock_api::ordered_map_conformance!(leaftree_ordered, LeafTree::new());
flock_api::ordered_map_conformance!(leaftree_strict_ordered, LeafTree::new_strict());
flock_api::ordered_map_conformance!(leaftreap_ordered, LeafTreap::new());
flock_api::ordered_map_conformance!(abtree_ordered, ABTree::new());
flock_api::ordered_map_conformance!(arttree_ordered, ArtTree::new());

/// EXPERIMENTS.md §8 caveat, made checkable: under the chaos stall
/// schedule every registry structure's victim op (a native `update` of a
/// pre-inserted key) must provably park *inside* a critical section
/// (`InThunk`), not complete through an outside-the-lock read path.
#[cfg(feature = "chaos")]
mod stall_seam {
    use super::*;
    use flock_api::testing::{exclusive, stall_seam_crossed_check};

    #[test]
    fn dlist_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(DList::<u64, u64>::new));
    }

    #[test]
    fn lazylist_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(LazyList::<u64, u64>::new));
    }

    #[test]
    fn hashtable_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(|| HashTable::<u64, u64>::with_capacity(512)));
    }

    #[test]
    fn leaftree_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(LeafTree::<u64, u64>::new));
    }

    #[test]
    fn leaftree_strict_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(LeafTree::<u64, u64>::new_strict));
    }

    #[test]
    fn leaftreap_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(LeafTreap::<u64, u64>::new));
    }

    #[test]
    fn abtree_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(ABTree::<u64, u64>::new));
    }

    #[test]
    fn arttree_crosses_in_thunk() {
        exclusive(|| stall_seam_crossed_check(ArtTree::<u64, u64>::new));
    }
}
