//! Adaptive radix tree (ART) with optimistic fine-grained locking — the
//! paper's `arttree` (§7), which it reports as **the first lock-free ART**
//! when run in lock-free mode. Generic over `(K, V)` for any key with a
//! radix image (see [`RadixKey`]).
//!
//! Follows Leis et al.'s design: four adaptive node widths (Node4 / Node16 /
//! Node48 / Node256) chosen by fanout, with *lazy expansion* (a leaf is
//! installed at the shallowest depth where its key prefix is unique).
//! Simplifications relative to the original ART, documented in DESIGN.md:
//! no path compression (the paper's benchmark sparsifies keys by hashing, so
//! long shared prefixes are rare) and no node shrinking on deletes.
//!
//! A radix tree indexes by digit position, not by comparison, so its keys
//! need more than `Ord`: [`RadixKey`] maps a key to an order-preserving,
//! **injective** 8-byte image whose bytes drive the descent (implemented
//! for the integer primitives; the leaf stores the real key and final
//! equality is checked on it). Values are plain leaf fields — leaves are
//! immutable, so fat values ride inside the epoch-reclaimed leaf
//! allocation.
//!
//! Concurrency design:
//!
//! * **Key slots are write-once.** In Node4/16 a slot's byte label never
//!   changes after assignment; deletion clears only the child cell (a
//!   tombstone). This makes unlocked reads race-free: a matched label is
//!   stable, and the child cell is a single atomic [`Mutable`]. Tombstones
//!   are compacted away when the node is upgraded/rebuilt.
//! * **Mutations** (adding a child, clearing one, splitting a leaf into a
//!   chain, upgrading a full node) take the owning node's lock — plus the
//!   parent's when the node itself is replaced — validate, then apply.

use std::ops::Bound;

use flock_api::{Key, Map, OrderedMap, Value, key_in_range};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

const KEY_BYTES: usize = 8;

/// Keys usable by the radix tree: an order-preserving, injective mapping
/// into the 8-byte radix space. Distinct keys must produce distinct images
/// (`a < b` ⇒ `a.radix() < b.radix()`), or descents would collide.
pub trait RadixKey {
    /// The 8-byte radix image whose big-endian bytes drive the descent.
    fn radix(&self) -> u64;
}

macro_rules! impl_radix_unsigned {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline(always)]
            fn radix(&self) -> u64 {
                *self as u64
            }
        }
    )*};
}
impl_radix_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_radix_signed {
    ($($t:ty),*) => {$(
        impl RadixKey for $t {
            #[inline(always)]
            fn radix(&self) -> u64 {
                // Sign-flip: maps i::MIN..=i::MAX monotonically onto
                // 0..=u64::MAX.
                (*self as i64 as u64) ^ (1u64 << 63)
            }
        }
    )*};
}
impl_radix_signed!(i8, i16, i32, i64, isize);

#[inline]
fn byte_at(r: u64, depth: usize) -> u8 {
    debug_assert!(depth < KEY_BYTES);
    (r >> (56 - 8 * depth)) as u8
}

/// Tagged child cell: 0 = empty, bit0 = leaf, else internal node.
const LEAF_TAG: usize = 1;

#[inline]
fn tag_leaf<K, V: Value>(l: *mut ArtLeaf<K, V>) -> usize {
    l as usize | LEAF_TAG
}

#[inline]
fn tag_node(n: *mut ArtNode) -> usize {
    n as usize
}

#[inline]
fn is_leaf(c: usize) -> bool {
    c & LEAF_TAG != 0
}

#[inline]
fn as_leaf<K, V: Value>(c: usize) -> *mut ArtLeaf<K, V> {
    (c & !LEAF_TAG) as *mut ArtLeaf<K, V>
}

#[inline]
fn as_node(c: usize) -> *mut ArtNode {
    c as *mut ArtNode
}

struct ArtLeaf<K, V: Value> {
    key: K,
    /// Value slot: mutable in place under the lock of the node whose child
    /// cell references this leaf (native `update`), snapshot-readable
    /// without it. The leaf itself stays immutable in every other respect.
    value: ValueSlot<V>,
}

/// Node widths. `kind` selects the layout of `keys`/`index`/`children`.
const N4: u8 = 0;
const N16: u8 = 1;
const N48: u8 = 2;
const N256: u8 = 3;

/// An internal node. Deliberately *not* generic: child cells are tagged
/// `usize` addresses, so one node layout serves every `(K, V)`
/// instantiation (the leaf type carries the generics).
struct ArtNode {
    lock: Lock,
    removed: UpdateOnce<bool>,
    kind: u8,
    /// N4/N16: slot labels, `0` unassigned else `byte+1` (write-once).
    keys: Box<[UpdateOnce<u32>]>,
    /// N48 only: byte → slot mapping, `0` unassigned else `slot+1`
    /// (write-once).
    index: Box<[UpdateOnce<u32>]>,
    /// Child cells (see tagging helpers above).
    children: Box<[Mutable<usize>]>,
    /// N48 only: next unassigned child slot.
    alloc: Mutable<u32>,
}

impl ArtNode {
    fn new(kind: u8, admission: Admission) -> Self {
        let (nkeys, nindex, nchildren) = match kind {
            N4 => (4, 0, 4),
            N16 => (16, 0, 16),
            N48 => (0, 256, 48),
            _ => (0, 0, 256),
        };
        Self {
            lock: Lock::new_with(admission),
            removed: UpdateOnce::new(false),
            kind,
            keys: (0..nkeys).map(|_| UpdateOnce::new(0u32)).collect(),
            index: (0..nindex).map(|_| UpdateOnce::new(0u32)).collect(),
            children: (0..nchildren).map(|_| Mutable::new(0usize)).collect(),
            alloc: Mutable::new(0u32),
        }
    }

    /// Current child for byte `b`, or 0. Unlocked-read safe (see module
    /// docs: labels are write-once, child cells are single atomics).
    fn lookup(&self, b: u8) -> usize {
        match self.kind {
            N4 | N16 => {
                let want = b as u32 + 1;
                for (i, kslot) in self.keys.iter().enumerate() {
                    if kslot.load() == want {
                        return self.children[i].load();
                    }
                }
                0
            }
            N48 => {
                let slot = self.index[b as usize].load();
                if slot == 0 {
                    return 0;
                }
                self.children[(slot - 1) as usize].load()
            }
            _ => self.children[b as usize].load(),
        }
    }

    /// [`ArtNode::lookup`] with plain `Acquire` loads, bypassing the thunk
    /// log and the `SeqCst` committed-read machinery. **Only for the
    /// version-validated optimistic read paths outside any thunk** (the
    /// [`flock_core::read_validated`] discipline).
    fn lookup_acquire(&self, b: u8) -> usize {
        match self.kind {
            N4 | N16 => {
                let want = b as u32 + 1;
                for (i, kslot) in self.keys.iter().enumerate() {
                    if kslot.load_acquire() == want {
                        return self.children[i].load_acquire();
                    }
                }
                0
            }
            N48 => {
                let slot = self.index[b as usize].load_acquire();
                if slot == 0 {
                    return 0;
                }
                self.children[(slot - 1) as usize].load_acquire()
            }
            _ => self.children[b as usize].load_acquire(),
        }
    }

    /// The slot that holds byte `b`'s child cell, if `b` has been assigned.
    fn slot_of(&self, b: u8) -> Option<usize> {
        match self.kind {
            N4 | N16 => {
                let want = b as u32 + 1;
                self.keys.iter().position(|k| k.load() == want)
            }
            N48 => {
                let slot = self.index[b as usize].load();
                (slot != 0).then(|| (slot - 1) as usize)
            }
            _ => Some(b as usize),
        }
    }

    /// Try to assign a slot for a new byte `b` and store `child` in it.
    /// Must run under this node's lock. Returns false when the node has no
    /// free slot (caller upgrades the node).
    fn try_add(&self, b: u8, child: usize) -> bool {
        match self.kind {
            N4 | N16 => {
                for (i, kslot) in self.keys.iter().enumerate() {
                    if kslot.load() == 0 {
                        // Publish order: child first, then the label, so a
                        // matched label always reads a valid cell.
                        self.children[i].store(child);
                        kslot.store(b as u32 + 1);
                        return true;
                    }
                }
                false
            }
            N48 => {
                let next = self.alloc.load();
                if next as usize >= self.children.len() {
                    return false;
                }
                self.alloc.store(next + 1);
                self.children[next as usize].store(child);
                self.index[b as usize].store(next + 1);
                true
            }
            _ => {
                self.children[b as usize].store(child);
                true
            }
        }
    }

    /// Live (byte, child) pairs.
    fn live_entries(&self) -> Vec<(u8, usize)> {
        let mut out = Vec::new();
        match self.kind {
            N4 | N16 => {
                for (i, kslot) in self.keys.iter().enumerate() {
                    let kv = kslot.load();
                    if kv != 0 {
                        let c = self.children[i].load();
                        if c != 0 {
                            out.push(((kv - 1) as u8, c));
                        }
                    }
                }
            }
            N48 => {
                for b in 0..256usize {
                    let slot = self.index[b].load();
                    if slot != 0 {
                        let c = self.children[(slot - 1) as usize].load();
                        if c != 0 {
                            out.push((b as u8, c));
                        }
                    }
                }
            }
            _ => {
                for b in 0..256usize {
                    let c = self.children[b].load();
                    if c != 0 {
                        out.push((b as u8, c));
                    }
                }
            }
        }
        out
    }

    /// Is there a slot available for a byte not yet assigned here?
    fn has_free_slot(&self) -> bool {
        match self.kind {
            N4 | N16 => self.keys.iter().any(|kslot| kslot.load() == 0),
            N48 => (self.alloc.load() as usize) < self.children.len(),
            _ => true,
        }
    }

    /// Smallest kind that fits `n` children.
    fn kind_for(n: usize) -> u8 {
        match n {
            0..=4 => N4,
            5..=16 => N16,
            17..=48 => N48,
            _ => N256,
        }
    }
}

/// Adaptive radix tree map over radix-imageable keys.
pub struct ArtTree<K: Key + RadixKey, V: Value> {
    /// Depth-0 node; fixed Node256 so it is never upgraded or removed.
    root: *mut ArtNode,
    /// Admission policy stamped on every node lock this tree creates.
    admission: Admission,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
    _kv: std::marker::PhantomData<(K, V)>,
}

// SAFETY: mutation via Flock locks + epoch reclamation; root immutable.
unsafe impl<K: Key + RadixKey, V: Value> Send for ArtTree<K, V> {}
unsafe impl<K: Key + RadixKey, V: Value> Sync for ArtTree<K, V> {}

impl<K: Key + RadixKey, V: Value> Default for ArtTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key + RadixKey, V: Value> ArtTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self::with_admission(flock_core::default_admission())
    }

    /// An empty tree whose node locks all use `admission`
    /// (see [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        Self {
            root: flock_epoch::alloc(ArtNode::new(N256, admission)),
            admission,
            count: ApproxLen::new(),
            _kv: std::marker::PhantomData,
        }
    }

    /// Wait-free lookup. Optimistic first: an unlogged `Acquire` descent,
    /// the value read bracketed by the version of the lock owning the
    /// leaf's child cell (every replacement of that cell — tombstone,
    /// split, upgrade — and every in-place `update` of the leaf's slot
    /// runs under that node's lock; node replacements mark the old node
    /// `removed` inside its own critical section). After
    /// [`flock_core::OPTIMISTIC_READ_ATTEMPTS`] failed validations — or
    /// inside a thunk — falls back to the committed-read descent.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        let r = k.radix();
        flock_core::read_validated(
            || {
                let mut cur = self.root;
                for d in 0..KEY_BYTES {
                    // SAFETY: pinned; nodes epoch-reclaimed.
                    let n = unsafe { &*cur };
                    let b = byte_at(r, d);
                    let c = n.lookup_acquire(b);
                    if c == 0 {
                        return Some(None);
                    }
                    if is_leaf(c) {
                        // SAFETY: leaf pointers epoch-protected.
                        let l = unsafe { &*as_leaf::<K, V>(c) };
                        if l.key != k {
                            return Some(None);
                        }
                        let v0 = n.lock.version()?;
                        if n.removed.load() || n.lookup_acquire(b) != c {
                            return None;
                        }
                        let v = l.value.read_acquire();
                        return n.lock.validate(v0).then_some(Some(v));
                    }
                    cur = as_node(c);
                }
                unreachable!("leaves appear within {KEY_BYTES} levels");
            },
            || {
                let mut cur = self.root;
                for d in 0..KEY_BYTES {
                    // SAFETY: pinned; nodes epoch-reclaimed.
                    let c = unsafe { &*cur }.lookup(byte_at(r, d));
                    if c == 0 {
                        return None;
                    }
                    if is_leaf(c) {
                        // SAFETY: leaf pointers epoch-protected.
                        let l = unsafe { &*as_leaf::<K, V>(c) };
                        return (l.key == k).then(|| l.value.read());
                    }
                    cur = as_node(c);
                }
                unreachable!("leaves appear within {KEY_BYTES} levels");
            },
        )
    }

    /// Presence check without materializing the value — no slot read, no
    /// decode, no clone (for `Indirect` fat values `get` clones the boxed
    /// payload just to drop it). A leaf's key is an immutable field, so
    /// observing the tagged child cell *is* the linearization point: no
    /// version validation is needed. Committed loads throughout — safe
    /// inside a thunk, plain atomic reads outside one.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        let r = k.radix();
        let mut cur = self.root;
        for d in 0..KEY_BYTES {
            // SAFETY: pinned; nodes epoch-reclaimed.
            let c = unsafe { &*cur }.lookup(byte_at(r, d));
            if c == 0 {
                return false;
            }
            if is_leaf(c) {
                // SAFETY: leaf pointers epoch-protected.
                return unsafe { &*as_leaf::<K, V>(c) }.key == *k;
            }
            cur = as_node(c);
        }
        unreachable!("leaves appear within {KEY_BYTES} levels");
    }

    /// Ordered range scan over `[lo, hi]` bounds. The descent prunes
    /// subtrees by their radix-prefix span ([`RadixKey::radix`] is
    /// order-preserving, so prefix intervals bound key intervals); each
    /// leaf's value is read under the owning node's lock-version bracket
    /// (committed read after bounded validation failures), so every
    /// reported pair was simultaneously present at some instant during
    /// the scan; see [`OrderedMap`] for the cross-entry contract.
    pub fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        // Conservative radix window: exact bound semantics (and Excluded
        // edges) are enforced by the final `key_in_range` filter.
        let rlo = match lo {
            Bound::Included(l) | Bound::Excluded(l) => l.radix(),
            Bound::Unbounded => 0,
        };
        let rhi = match hi {
            Bound::Included(h) | Bound::Excluded(h) => h.radix(),
            Bound::Unbounded => u64::MAX,
        };
        let mut out = Vec::new();
        if rlo <= rhi {
            // SAFETY: pinned walk.
            unsafe { self.range_walk(self.root, 0, 0, lo, hi, rlo, rhi, &mut out) };
        }
        out
    }

    /// In-order walk: children sorted by byte label (N48/N256 enumerate
    /// bytes ascending already; N4/N16 slots are insertion-ordered and
    /// must be sorted), subtrees pruned when their radix span
    /// `[prefix, prefix | suffix_mask]` misses `[rlo, rhi]`.
    #[allow(clippy::too_many_arguments)]
    unsafe fn range_walk(
        &self,
        node: *mut ArtNode,
        depth: usize,
        prefix: u64,
        lo: Bound<&K>,
        hi: Bound<&K>,
        rlo: u64,
        rhi: u64,
        out: &mut Vec<(K, V)>,
    ) {
        // SAFETY: pinned per caller.
        let n = unsafe { &*node };
        let mut entries = n.live_entries();
        if matches!(n.kind, N4 | N16) {
            entries.sort_unstable_by_key(|(b, _)| *b);
        }
        let shift = 56 - 8 * depth;
        for (b, c) in entries {
            let p = prefix | ((b as u64) << shift);
            // Keys under this child have radix images in
            // [p, p | low_bits]: all deeper bytes free.
            let span_hi = p | ((1u64 << shift) - 1);
            if span_hi < rlo {
                continue;
            }
            if p > rhi {
                break; // children are byte-sorted: everything after is above
            }
            if is_leaf(c) {
                // SAFETY: live child pointer, epoch-protected.
                let l = unsafe { &*as_leaf::<K, V>(c) };
                if !key_in_range(&l.key, lo, hi) {
                    continue;
                }
                let v = flock_core::read_validated(
                    || {
                        let v0 = n.lock.version()?;
                        if n.removed.load() || n.lookup_acquire(b) != c {
                            return None;
                        }
                        let v = l.value.read_acquire();
                        n.lock.validate(v0).then_some(v)
                    },
                    || l.value.read(),
                );
                out.push((l.key.clone(), v));
            } else {
                unsafe { self.range_walk(as_node(c), depth + 1, p, lo, hi, rlo, rhi, out) };
            }
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let r = k.radix();
        let mut backoff = Backoff::new();
        'restart: loop {
            let mut parent: *mut ArtNode = std::ptr::null_mut();
            let mut cur = self.root;
            let mut d = 0;
            loop {
                let b = byte_at(r, d);
                // SAFETY: pinned.
                let c = unsafe { &*cur }.lookup(b);
                if c == 0 {
                    // Empty slot: add a leaf here (possibly upgrading).
                    match self.add_leaf(parent, cur, d, &k, &v) {
                        AddOutcome::Done => {
                            self.count.inc();
                            return true;
                        }
                        AddOutcome::Busy => {
                            backoff.snooze();
                            continue 'restart;
                        }
                        AddOutcome::Retry => continue 'restart,
                    }
                }
                if is_leaf(c) {
                    // SAFETY: pinned.
                    let l = unsafe { &*as_leaf::<K, V>(c) };
                    if l.key == k {
                        return false;
                    }
                    // Split: replace the leaf with a chain diverging at the
                    // first differing byte.
                    match self.split_leaf(cur, d, c, &k, &v) {
                        Some(true) => {
                            self.count.inc();
                            return true;
                        }
                        Some(false) => continue 'restart, // validation failed
                        None => {
                            backoff.snooze(); // node lock busy
                            continue 'restart;
                        }
                    }
                }
                parent = cur;
                cur = as_node(c);
                d += 1;
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let r = k.radix();
        let mut backoff = Backoff::new();
        'restart: loop {
            let mut cur = self.root;
            let mut d = 0;
            loop {
                let b = byte_at(r, d);
                // SAFETY: pinned.
                let c = unsafe { &*cur }.lookup(b);
                if c == 0 {
                    return false;
                }
                if is_leaf(c) {
                    // SAFETY: pinned.
                    if unsafe { &*as_leaf::<K, V>(c) }.key != k {
                        return false;
                    }
                    let sp_n = Sp(cur);
                    // SAFETY: pinned.
                    match unsafe { &*cur }.lock.try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let n = unsafe { sp_n.as_ref() };
                        if n.removed.load() {
                            return false;
                        }
                        let Some(slot) = n.slot_of(b) else {
                            return false;
                        };
                        let cell = &n.children[slot];
                        if cell.load() != c {
                            return false; // validate
                        }
                        cell.store(0); // tombstone the child cell
                        // SAFETY: unlinked above; idempotent retire.
                        unsafe { flock_core::retire(as_leaf::<K, V>(c)) };
                        true
                    }) {
                        Some(true) => {
                            self.count.dec();
                            return true;
                        }
                        Some(false) => continue 'restart, // validation failed
                        None => {
                            backoff.snooze(); // node lock busy
                            continue 'restart;
                        }
                    }
                }
                cur = as_node(c);
                d += 1;
            }
        }
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the lock of the node whose child
    /// cell holds the leaf (the same lock the remove path's tombstone and
    /// every replacement of that cell take), with the cell validated under
    /// it. Returns `false` (storing nothing) if `k` is absent. Readers see
    /// the old value or the new one, never absence or a third value.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let r = k.radix();
        let mut backoff = Backoff::new();
        'restart: loop {
            let mut cur = self.root;
            let mut d = 0;
            loop {
                let b = byte_at(r, d);
                // SAFETY: pinned.
                let c = unsafe { &*cur }.lookup(b);
                if c == 0 {
                    return false;
                }
                if is_leaf(c) {
                    // SAFETY: pinned.
                    if unsafe { &*as_leaf::<K, V>(c) }.key != k {
                        return false;
                    }
                    let sp_n = Sp(cur);
                    let v2 = v.clone();
                    // SAFETY: pinned.
                    match unsafe { &*cur }.lock.try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let n = unsafe { sp_n.as_ref() };
                        if n.removed.load() {
                            return false;
                        }
                        let Some(slot) = n.slot_of(b) else {
                            return false;
                        };
                        if n.children[slot].load() != c {
                            return false; // leaf moved/tombstoned: re-descend
                        }
                        // SAFETY: the cell still references the leaf and we
                        // hold the lock every replacement of it takes.
                        unsafe { &*as_leaf::<K, V>(c) }.value.set(v2.clone());
                        true
                    }) {
                        Some(true) => return true,
                        Some(false) => continue 'restart, // validation failed
                        None => {
                            backoff.snooze(); // node lock busy
                            continue 'restart;
                        }
                    }
                }
                cur = as_node(c);
                d += 1;
            }
        }
    }

    /// Add a fresh leaf for `k` into `node` (whose slot for `k`'s byte at
    /// `depth` was observed empty), upgrading the node if it is out of
    /// slots.
    fn add_leaf(
        &self,
        parent: *mut ArtNode,
        node: *mut ArtNode,
        depth: usize,
        k: &K,
        v: &V,
    ) -> AddOutcome {
        let b = byte_at(k.radix(), depth);
        let sp_n = Sp(node);
        let (k2, v2) = (k.clone(), v.clone());
        // First try the common path: free slot under the node's own lock.
        // SAFETY: pinned caller.
        let fast = unsafe { &*node }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let n = unsafe { sp_n.as_ref() };
            if n.removed.load() || n.lookup(b) != 0 {
                return false; // validate: slot got taken (or node replaced)
            }
            // Reuse a tombstoned slot for the same byte if present.
            if let Some(slot) = n.slot_of(b) {
                let leaf = flock_core::alloc(|| ArtLeaf {
                    key: k2.clone(),
                    value: ValueSlot::new(v2.clone()),
                });
                n.children[slot].store(tag_leaf(leaf));
                return true;
            }
            // Allocate only once a slot is known to exist, so a full node
            // cannot leak the fresh leaf.
            if !n.has_free_slot() {
                return false;
            }
            let leaf = flock_core::alloc(|| ArtLeaf {
                key: k2.clone(),
                value: ValueSlot::new(v2.clone()),
            });
            let added = n.try_add(b, tag_leaf(leaf));
            debug_assert!(added, "free slot vanished under the node lock");
            added
        });
        match fast {
            Some(true) => return AddOutcome::Done,
            Some(false) => {} // validation failed or node full: slow path
            None => return AddOutcome::Busy,
        }
        // Slow path: the node may be full — upgrade under parent + node
        // locks. The root is Node256 and never full. A successful upgrade
        // already contains the new leaf, so it completes the insert.
        // SAFETY: pinned.
        let full = unsafe { &*node }.slot_of(b).is_none()
            && unsafe { &*node }.kind != N256
            && self.node_is_full(node);
        if full && !parent.is_null() {
            return match self.upgrade_node(parent, node, depth, k, v) {
                Some(true) => AddOutcome::Done,
                Some(false) => AddOutcome::Retry,
                None => AddOutcome::Busy, // parent or node lock busy
            };
        }
        AddOutcome::Retry
    }

    fn node_is_full(&self, node: *mut ArtNode) -> bool {
        // SAFETY: pinned caller.
        let n = unsafe { &*node };
        match n.kind {
            N4 | N16 => n.keys.iter().all(|kslot| kslot.load() != 0),
            N48 => n.alloc.load() as usize >= n.children.len(),
            _ => false,
        }
    }

    /// Replace a full `node` with a larger copy that also contains a new
    /// leaf for `k`. Locks parent → node (ancestor-first).
    ///
    /// `None` = a lock was busy; `Some(applied)` otherwise.
    fn upgrade_node(
        &self,
        parent: *mut ArtNode,
        node: *mut ArtNode,
        depth: usize,
        k: &K,
        v: &V,
    ) -> Option<bool> {
        debug_assert!(depth >= 1);
        let admission = self.admission;
        let r = k.radix();
        let pb = byte_at(r, depth - 1);
        let b = byte_at(r, depth);
        let (sp_p, sp_n) = (Sp(parent), Sp(node));
        let (k2, v2) = (k.clone(), v.clone());
        // SAFETY: pinned caller.
        let outcome = unsafe { &*parent }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let n_ref = unsafe { sp_n.as_ref() };
            let (k3, v3) = (k2.clone(), v2.clone());
            n_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let p = unsafe { sp_p.as_ref() };
                let n = unsafe { sp_n.as_ref() };
                if p.removed.load() || n.removed.load() {
                    return false;
                }
                let Some(pslot) = p.slot_of(pb) else {
                    return false;
                };
                if p.children[pslot].load() != tag_node(sp_n.ptr()) {
                    return false; // validate the link
                }
                if n.lookup(b) != 0 || n.slot_of(b).is_some() || !matches!(n.kind, N4 | N16 | N48) {
                    return false; // stale plan
                }
                // Build the compacted, larger copy with the new leaf. The
                // leaf is its own idempotent alloc: nested inside the
                // node's init closure it would leak once per replayed run.
                let entries = n.live_entries();
                let new_kind = ArtNode::kind_for(entries.len() + 1);
                let entries2 = entries.clone();
                let (k4, v4) = (k3.clone(), v3.clone());
                let leaf = flock_core::alloc(|| ArtLeaf {
                    key: k4.clone(),
                    value: ValueSlot::new(v4.clone()),
                });
                let bigger = flock_core::alloc(move || {
                    let fresh = ArtNode::new(new_kind, admission);
                    for (eb, ec) in &entries2 {
                        let added = fresh.try_add(*eb, *ec);
                        debug_assert!(added);
                    }
                    let added = fresh.try_add(b, tag_leaf(leaf));
                    debug_assert!(added);
                    fresh
                });
                n.removed.store(true);
                p.children[pslot].store(tag_node(bigger));
                // SAFETY: replaced above; idempotent retire.
                unsafe { flock_core::retire(sp_n.ptr()) };
                true
            })
        });
        // Flatten the two lock layers: any missing layer is "busy".
        match outcome {
            Some(Some(applied)) => Some(applied),
            _ => None,
        }
    }

    /// Replace existing leaf `c` (child of `node` at `depth`) with a chain
    /// of nodes covering the shared prefix of the two keys, ending in a
    /// Node4 holding both leaves.
    ///
    /// `None` = the node's lock was busy; `Some(false)` = validation failed.
    fn split_leaf(&self, node: *mut ArtNode, depth: usize, c: usize, k: &K, v: &V) -> Option<bool> {
        let admission = self.admission;
        let kr = k.radix();
        let b = byte_at(kr, depth);
        let sp_n = Sp(node);
        let (k2, v2) = (k.clone(), v.clone());
        // SAFETY: pinned caller.
        unsafe { &*node }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let n = unsafe { sp_n.as_ref() };
            if n.removed.load() {
                return false;
            }
            let Some(slot) = n.slot_of(b) else {
                return false;
            };
            if n.children[slot].load() != c {
                return false; // validate
            }
            // SAFETY: c validated in place; epoch-protected.
            let old_r = unsafe { &*as_leaf::<K, V>(c) }.key.radix();
            debug_assert_ne!(old_r, kr, "RadixKey images must be injective");
            // First divergent byte strictly below `depth`.
            let mut j = depth + 1;
            while byte_at(old_r, j) == byte_at(kr, j) {
                j += 1;
            }
            // Build the chain bottom-up, one idempotent alloc per node:
            // nesting the whole chain inside a single init closure would
            // leak every inner allocation on replayed runs. The chain
            // length (`j`) is a pure function of the two keys' committed
            // radix images, so every run performs the identical alloc
            // sequence and the log positions stay aligned.
            let (k3, v3) = (k2.clone(), v2.clone());
            let new_leaf = flock_core::alloc(|| ArtLeaf {
                key: k3.clone(),
                value: ValueSlot::new(v3.clone()),
            });
            // Innermost node: both leaves.
            let bottom = flock_core::alloc(|| {
                let n4 = ArtNode::new(N4, admission);
                let added = n4.try_add(byte_at(old_r, j), c);
                debug_assert!(added);
                let added = n4.try_add(byte_at(kr, j), tag_leaf(new_leaf));
                debug_assert!(added);
                n4
            });
            // Wrap in single-child nodes up to depth+1.
            let mut head = bottom;
            for d in (depth + 1..j).rev() {
                let prev = head;
                head = flock_core::alloc(move || {
                    let wrap = ArtNode::new(N4, admission);
                    let added = wrap.try_add(byte_at(kr, d), tag_node(prev));
                    debug_assert!(added);
                    wrap
                });
            }
            n.children[slot].store(tag_node(head));
            true
        })
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count_leaves(self.root) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count_leaves(n: *mut ArtNode) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        node.live_entries()
            .into_iter()
            .map(|(_, c)| {
                if is_leaf(c) {
                    1
                } else {
                    unsafe { Self::count_leaves(as_node(c)) }
                }
            })
            .sum()
    }

    /// Snapshot of all pairs in key order — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk(self.root, &mut out) };
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    unsafe fn walk(n: *mut ArtNode, out: &mut Vec<(K, V)>) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        for (_, c) in node.live_entries() {
            if is_leaf(c) {
                // SAFETY: live child pointer.
                let l = unsafe { &*as_leaf::<K, V>(c) };
                out.push((l.key.clone(), l.value.read()));
            } else {
                unsafe { Self::walk(as_node(c), out) };
            }
        }
    }

    /// Quiescent invariant check: every stored leaf is reachable by its own
    /// key bytes, and depth bounds hold.
    pub fn check_invariants(&self) {
        let pairs = self.collect();
        for (k, v) in pairs {
            assert_eq!(
                self.get(k.clone()),
                Some(v),
                "leaf unreachable by its key bytes"
            );
        }
    }
}

enum AddOutcome {
    /// The leaf is in (fast-path add or a node upgrade that included it).
    Done,
    /// The plan went stale (slot taken, node replaced): re-descend now.
    Retry,
    /// The node's lock was busy: back off before re-descending.
    Busy,
}

impl<K: Key + RadixKey, V: Value> Drop for ArtTree<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free<K, V: Value>(n: *mut ArtNode) {
            // SAFETY: exclusive teardown.
            unsafe {
                for (_, c) in (*n).live_entries() {
                    if is_leaf(c) {
                        flock_epoch::free_now(as_leaf::<K, V>(c));
                    } else {
                        free::<K, V>(as_node(c));
                    }
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe { free::<K, V>(self.root) };
    }
}

impl<K: Key + RadixKey, V: Value> Map<K, V> for ArtTree<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        ArtTree::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        ArtTree::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        ArtTree::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        ArtTree::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "arttree"
    }
    fn update(&self, key: K, value: V) -> bool {
        ArtTree::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key + RadixKey, V: Value> OrderedMap<K, V> for ArtTree<K, V> {
    fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        ArtTree::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            assert!(t.insert(5, 50));
            assert!(!t.insert(5, 51));
            assert!(t.insert(3, 30));
            assert_eq!(t.get(5), Some(50));
            assert!(t.remove(5));
            assert!(!t.remove(5));
            assert_eq!(t.get(5), None);
            assert_eq!(t.get(3), Some(30));
            t.check_invariants();
        });
    }

    #[test]
    fn signed_keys_order_preserved() {
        testutil::both_modes(|| {
            let t: ArtTree<i32, u64> = ArtTree::new();
            for (i, k) in [-100, -1, 0, 1, 100].into_iter().enumerate() {
                assert!(t.insert(k, i as u64));
            }
            assert_eq!(
                t.collect().into_iter().map(|(k, _)| k).collect::<Vec<_>>(),
                vec![-100, -1, 0, 1, 100],
                "sign-flip radix keeps signed order"
            );
            assert_eq!(t.get(-1), Some(1));
        });
    }

    #[test]
    fn shared_prefix_keys_split_into_chains() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            // Keys differing only in the last byte share 7 prefix bytes:
            // exercises the chain-building split path.
            let base = 0xAABB_CCDD_EEFF_1100u64;
            for i in 0..200u64 {
                assert!(t.insert(base + i, i), "insert {i}");
            }
            for i in 0..200u64 {
                assert_eq!(t.get(base + i), Some(i), "get {i}");
            }
            assert_eq!(t.len(), 200);
            t.check_invariants();
        });
    }

    #[test]
    fn node_upgrades_n4_to_n256() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            // 256 keys sharing 7 bytes force one node through every width.
            let base = 0x0102_0304_0506_0700u64;
            for i in 0..256u64 {
                assert!(t.insert(base | i, i * 7));
            }
            for i in 0..256u64 {
                assert_eq!(t.get(base | i), Some(i * 7));
            }
            t.check_invariants();
        });
    }

    #[test]
    fn tombstone_reuse_same_byte() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            let k = 0xDEAD_BEEF_0000_0042u64;
            for round in 0..50 {
                assert!(t.insert(k, round));
                assert_eq!(t.get(k), Some(round));
                assert!(t.remove(k));
            }
            assert!(t.is_empty());
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            assert!(!t.update(1, 10), "update of an absent key refused");
            // Shared-prefix keys force chains, so updates hit deep leaves.
            let base = 0xAABB_CCDD_EEFF_0000u64;
            for i in 0..64 {
                assert!(t.insert(base + i, i));
            }
            for i in 0..64 {
                assert!(t.update(base + i, i + 1000));
            }
            for i in 0..64 {
                assert_eq!(t.get(base + i), Some(i + 1000));
            }
            assert_eq!(t.len(), 64, "update must not change the count");
            assert!(t.remove(base));
            assert!(!t.update(base, 1));
            t.check_invariants();
        });
    }

    #[test]
    fn oracle_dense_and_sparse() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            testutil::oracle_check(&t, 3_000, 512, 17);
        });
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            // Sparse (hashed) keys, like the paper's benchmark keys.
            let mut oracle = std::collections::BTreeMap::new();
            for i in 0..2_000u64 {
                let k = crate::mix64(i % 600);
                let expect = !oracle.contains_key(&k);
                if expect {
                    oracle.insert(k, i);
                }
                assert_eq!(t.insert(k, i), expect);
                if i % 3 == 0 {
                    let rk = crate::mix64((i / 2) % 600);
                    assert_eq!(t.remove(rk), oracle.remove(&rk).is_some());
                }
            }
            for (k, v) in &oracle {
                assert_eq!(t.get(*k), Some(*v));
            }
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t: ArtTree<u64, u64> = ArtTree::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }
}
