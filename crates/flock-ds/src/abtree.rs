//! (a,b)-tree with optimistic fine-grained locking — the paper's `abtree`
//! (§7), in the style of Srivastava-Brown optimistic B-trees.
//!
//! Design rules that keep readers consistent without locks:
//!
//! * A node's **key/value arrays and arity are immutable** after
//!   construction; any change to a node's key set *replaces* the node
//!   (copy-on-write) by swinging its parent's child pointer — a single
//!   idempotent store.
//! * **Child pointers are mutable in place** (they change when a child is
//!   replaced), guarded by the owning node's lock; holding a node's lock
//!   therefore stabilizes all of its child cells.
//! * A **split of child `c` under parent `p`** inserts a separator into `p`
//!   and so replaces `p` itself — done under `p`'s parent's lock, then `p`'s,
//!   then `c`'s (ancestor-first order). Inserts split full nodes on the way
//!   down and restart, so when the leaf is reached its parent has room.
//! * Deletes are **relaxed**: batches shrink by copy; an emptied leaf is
//!   spliced together with its separator; internal nodes collapse only when
//!   reduced to a single child. No proactive merging/borrowing — the classic
//!   relaxed-(a,b)-tree trade-off (documented in DESIGN.md).
//!
//! A pseudo-root *anchor* (an internal node with zero keys and one child)
//! removes all root special cases.

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp, UpdateOnce};
use flock_sync::Backoff;

/// Maximum keys per leaf and separators per internal node ("b").
pub const B: usize = 12;

struct Node {
    lock: Lock,
    removed: UpdateOnce<bool>,
    is_leaf: bool,
    /// Number of keys (leaf: entries; internal: separators, children=len+1).
    len: usize,
    keys: [u64; B],
    vals: [u64; B],
    children: [Mutable<*mut Node>; B + 1],
}

impl Node {
    fn empty_children() -> [Mutable<*mut Node>; B + 1] {
        std::array::from_fn(|_| Mutable::new(std::ptr::null_mut()))
    }

    fn leaf(entries: &[(u64, u64)]) -> Self {
        debug_assert!(entries.len() <= B);
        let mut keys = [0; B];
        let mut vals = [0; B];
        for (i, (k, v)) in entries.iter().enumerate() {
            keys[i] = *k;
            vals[i] = *v;
        }
        Self {
            lock: Lock::new(),
            removed: UpdateOnce::new(false),
            is_leaf: true,
            len: entries.len(),
            keys,
            vals,
            children: Self::empty_children(),
        }
    }

    fn internal(seps: &[u64], kids: &[*mut Node]) -> Self {
        debug_assert_eq!(kids.len(), seps.len() + 1);
        debug_assert!(seps.len() <= B);
        let mut keys = [0; B];
        for (i, s) in seps.iter().enumerate() {
            keys[i] = *s;
        }
        let children = std::array::from_fn(|i| {
            Mutable::new(if i < kids.len() {
                kids[i]
            } else {
                std::ptr::null_mut()
            })
        });
        Self {
            lock: Lock::new(),
            removed: UpdateOnce::new(false),
            is_leaf: false,
            len: seps.len(),
            keys,
            vals: [0; B],
            children,
        }
    }

    /// Index of the child subtree that covers `k`
    /// (left of the first separator `> k`... routing: child `i` covers keys
    /// `< keys[i]`; the last child covers the rest; equal keys go right).
    #[inline]
    fn route(&self, k: u64) -> usize {
        self.keys[..self.len].partition_point(|&s| s <= k)
    }

    /// Position of `k` in a leaf, if present.
    #[inline]
    fn find(&self, k: u64) -> Option<usize> {
        debug_assert!(self.is_leaf);
        self.keys[..self.len].iter().position(|&x| x == k)
    }

    fn leaf_entries(&self) -> Vec<(u64, u64)> {
        (0..self.len)
            .map(|i| (self.keys[i], self.vals[i]))
            .collect()
    }

    fn separators(&self) -> Vec<u64> {
        self.keys[..self.len].to_vec()
    }

    fn child_ptrs(&self) -> Vec<*mut Node> {
        (0..=self.len).map(|i| self.children[i].load()).collect()
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.len == B
    }
}

/// Concurrent (a,b)-tree map.
pub struct ABTree {
    /// Pseudo-root: zero keys, single child = the real root.
    anchor: *mut Node,
    label: &'static str,
}

// SAFETY: mutation via Flock locks + epoch reclamation; anchor immutable.
unsafe impl Send for ABTree {}
unsafe impl Sync for ABTree {}

impl Default for ABTree {
    fn default() -> Self {
        Self::new()
    }
}

impl ABTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::with_label("abtree")
    }

    pub(crate) fn with_label(label: &'static str) -> Self {
        let root = flock_epoch::alloc(Node::leaf(&[]));
        let anchor = flock_epoch::alloc(Node::internal(&[], &[root]));
        Self { anchor, label }
    }

    /// Walk to the leaf covering `k`, recording the path
    /// (`anchor` first, leaf last).
    fn path_to(&self, k: u64) -> Vec<*mut Node> {
        let mut path = vec![self.anchor];
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = unsafe { (*self.anchor).children[0].load() };
        loop {
            path.push(cur);
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return path;
            }
            cur = n.children[n.route(k)].load();
        }
    }

    /// Split full node `c` (child of `p`, grandchild of `g`): replaces `p`
    /// with a copy containing the new separator and the two halves of `c`.
    /// Returns whether the split was applied.
    /// `None` = a lock on the g → p → c path was busy (caller should back
    /// off); `Some(applied)` = all three locks were taken and the plan
    /// either applied or had gone stale.
    fn split_child(&self, g: *mut Node, p: *mut Node, c: *mut Node, k: u64) -> Option<bool> {
        let (sp_g, sp_p, sp_c) = (Sp(g), Sp(p), Sp(c));
        // SAFETY: pinned caller.
        let outcome = unsafe { &*g }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let p_ref = unsafe { sp_p.as_ref() };
            p_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let c_ref = unsafe { sp_c.as_ref() };
                c_ref.lock.try_lock(move || {
                    // SAFETY: as above.
                    let g = unsafe { sp_g.as_ref() };
                    let p = unsafe { sp_p.as_ref() };
                    let c = unsafe { sp_c.as_ref() };
                    if g.removed.load() || p.removed.load() || c.removed.load() {
                        return false;
                    }
                    if !c.is_full() || p.is_full() {
                        return false; // stale plan; caller restarts
                    }
                    // Validate links (find c's slot in p, p's slot in g).
                    let gi = g.route(k);
                    if g.children[gi].load() != sp_p.ptr() {
                        return false;
                    }
                    let pi = p.route(k);
                    if p.children[pi].load() != sp_c.ptr() {
                        return false;
                    }
                    // Build the two halves of c. c's child cells are stable
                    // because we hold c's lock.
                    let mid = c.len / 2;
                    let (sep, left_ptr, right_ptr);
                    if c.is_leaf {
                        let entries = c.leaf_entries();
                        sep = entries[mid].0;
                        let lo = entries[..mid].to_vec();
                        let hi = entries[mid..].to_vec();
                        left_ptr = flock_core::alloc(move || Node::leaf(&lo));
                        right_ptr = flock_core::alloc(move || Node::leaf(&hi));
                    } else {
                        let seps = c.separators();
                        let kids = c.child_ptrs();
                        sep = seps[mid];
                        let lsep = seps[..mid].to_vec();
                        let lkid = kids[..=mid].to_vec();
                        let rsep = seps[mid + 1..].to_vec();
                        let rkid = kids[mid + 1..].to_vec();
                        let (lk, rk) = (SendPtrs(lkid), SendPtrs(rkid));
                        left_ptr = flock_core::alloc(move || Node::internal(&lsep, &lk.0));
                        right_ptr = flock_core::alloc(move || Node::internal(&rsep, &rk.0));
                    }
                    // New p with the separator spliced in at position pi.
                    let mut nseps = p.separators();
                    let mut nkids = p.child_ptrs();
                    nseps.insert(pi, sep);
                    nkids[pi] = left_ptr;
                    nkids.insert(pi + 1, right_ptr);
                    let nk = SendPtrs(nkids);
                    let new_p = flock_core::alloc(move || Node::internal(&nseps, &nk.0));
                    p.removed.store(true);
                    c.removed.store(true);
                    g.children[gi].store(new_p);
                    // SAFETY: p and c are replaced/unlinked; idempotent
                    // retires fire once each.
                    unsafe {
                        flock_core::retire(sp_p.ptr());
                        flock_core::retire(sp_c.ptr());
                    }
                    true
                })
            })
        });
        // Flatten the three lock layers: any missing layer is "busy".
        match outcome {
            Some(Some(Some(applied))) => Some(applied),
            _ => None,
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        'restart: loop {
            let path = self.path_to(k);
            let leaf = *path.last().expect("path includes leaf");
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(k).is_some() {
                return false;
            }
            // Grow the tree when the root itself is full: it splits into two
            // halves under a fresh one-separator root, under the anchor's
            // lock. Handling the root first establishes the invariant that
            // when the loop below splits path[w], path[w-1] has room.
            // SAFETY: pinned path nodes.
            if unsafe { &*path[1] }.is_full() {
                if self.split_root(path[1]).is_none() {
                    backoff.snooze(); // anchor/root lock busy
                }
                continue 'restart;
            }
            // Preemptively split the shallowest full node along the path and
            // restart; by induction its parent always has separator room.
            for w in 2..path.len() {
                // SAFETY: pinned path nodes.
                if unsafe { &*path[w] }.is_full() {
                    let (g, p, c) = (path[w - 2], path[w - 1], path[w]);
                    if self.split_child(g, p, c, k).is_none() {
                        backoff.snooze(); // a lock on the split path was busy
                    }
                    continue 'restart;
                }
            }
            let parent = path[path.len() - 2];
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                if p.removed.load() {
                    return false;
                }
                let slot = p.route(k);
                if p.children[slot].load() != sp_l.ptr() {
                    return false;
                }
                if l.find(k).is_some() || l.is_full() {
                    return false; // re-examine from the top
                }
                let mut entries = l.leaf_entries();
                let pos = entries.partition_point(|&(ek, _)| ek < k);
                entries.insert(pos, (k, v));
                let newl = flock_core::alloc(move || Node::leaf(&entries));
                p.children[slot].store(newl);
                // SAFETY: replaced above; idempotent retire.
                unsafe { flock_core::retire(sp_l.ptr()) };
                true
            });
            match outcome {
                Some(true) => return true,
                Some(false) => {}         // validation failed / leaf full: replan
                None => backoff.snooze(), // parent lock busy
            }
            // Re-check for presence then retry.
            // SAFETY: pinned.
            let path2 = self.path_to(k);
            let leaf2 = *path2.last().expect("leaf");
            if unsafe { &*leaf2 }.find(k).is_some() {
                return false;
            }
        }
    }

    /// Split a full root (leaf or internal) into two halves under a fresh
    /// one-separator root, under anchor → root locks.
    /// `None` = the anchor's or root's lock was busy; `Some(applied)`
    /// otherwise.
    fn split_root(&self, root: *mut Node) -> Option<bool> {
        let (sp_a, sp_r) = (Sp(self.anchor), Sp(root));
        // SAFETY: pinned caller; anchor immutable.
        let outcome = unsafe { &*self.anchor }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let r_ref = unsafe { sp_r.as_ref() };
            r_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let a = unsafe { sp_a.as_ref() };
                let r = unsafe { sp_r.as_ref() };
                if a.children[0].load() != sp_r.ptr() || !r.is_full() || r.removed.load() {
                    return false;
                }
                let mid = r.len / 2;
                let (sep, left_ptr, right_ptr);
                if r.is_leaf {
                    let entries = r.leaf_entries();
                    sep = entries[mid].0;
                    let lo = entries[..mid].to_vec();
                    let hi = entries[mid..].to_vec();
                    left_ptr = flock_core::alloc(move || Node::leaf(&lo));
                    right_ptr = flock_core::alloc(move || Node::leaf(&hi));
                } else {
                    // Child cells stable: we hold the root's lock.
                    let seps = r.separators();
                    let kids = r.child_ptrs();
                    sep = seps[mid];
                    let lsep = seps[..mid].to_vec();
                    let lkid = SendPtrs(kids[..=mid].to_vec());
                    let rsep = seps[mid + 1..].to_vec();
                    let rkid = SendPtrs(kids[mid + 1..].to_vec());
                    left_ptr = flock_core::alloc(move || Node::internal(&lsep, &lkid.0));
                    right_ptr = flock_core::alloc(move || Node::internal(&rsep, &rkid.0));
                }
                let new_root =
                    flock_core::alloc(move || Node::internal(&[sep], &[left_ptr, right_ptr]));
                r.removed.store(true);
                a.children[0].store(new_root);
                // SAFETY: replaced above; idempotent retire.
                unsafe { flock_core::retire(sp_r.ptr()) };
                true
            })
        });
        match outcome {
            Some(Some(applied)) => Some(applied),
            _ => None,
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let path = self.path_to(k);
            let leaf = *path.last().expect("leaf");
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(k).is_none() {
                return false;
            }
            let parent = path[path.len() - 2];
            // SAFETY: pinned.
            let parent_ref = unsafe { &*parent };
            let outcome = if leaf_ref.len > 1 || parent_ref.len == 0 {
                // Shrink by copy. (A root leaf may become empty.)
                let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
                parent_ref
                    .lock
                    .try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if p.removed.load() {
                            return false;
                        }
                        let slot = p.route(k);
                        if p.children[slot].load() != sp_l.ptr() {
                            return false;
                        }
                        let Some(pos) = l.find(k) else { return false };
                        let mut entries = l.leaf_entries();
                        entries.remove(pos);
                        let newl = flock_core::alloc(move || Node::leaf(&entries));
                        p.children[slot].store(newl);
                        // SAFETY: replaced above; idempotent retire.
                        unsafe { flock_core::retire(sp_l.ptr()) };
                        true
                    })
                    .map(Some)
            } else {
                // Leaf will become empty: splice it and its separator out of
                // the parent (replace the parent), under g → p locks. If the
                // parent would be left with a single child, hoist that child.
                let g = path[path.len() - 3];
                let (sp_g, sp_p, sp_l) = (Sp(g), Sp(parent), Sp(leaf));
                // SAFETY: pinned.
                unsafe { &*g }.lock.try_lock(move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    p.lock.try_lock(move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        let gi = g.route(k);
                        if g.children[gi].load() != sp_p.ptr() {
                            return false;
                        }
                        let pi = p.route(k);
                        if p.children[pi].load() != sp_l.ptr() {
                            return false;
                        }
                        if l.find(k).is_none() || l.len != 1 {
                            return false;
                        }
                        let mut seps = p.separators();
                        let mut kids = p.child_ptrs();
                        kids.remove(pi);
                        seps.remove(if pi == 0 { 0 } else { pi - 1 });
                        let replacement = if seps.is_empty() {
                            kids[0] // hoist the single remaining child
                        } else {
                            let nk = SendPtrs(kids);
                            flock_core::alloc(move || Node::internal(&seps, &nk.0))
                        };
                        p.removed.store(true);
                        g.children[gi].store(replacement);
                        // SAFETY: p and l unlinked; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => return true,
                Some(Some(false)) => {} // validation failed: replan now
                _ => backoff.snooze(),  // a lock on the path was busy
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        // SAFETY: pinned descent.
        let mut cur = unsafe { (*self.anchor).children[0].load() };
        loop {
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return n.find(k).map(|i| n.vals[i]);
            }
            cur = n.children[n.route(k)].load();
        }
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count((*self.anchor).children[0].load()) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            node.len
        } else {
            (0..=node.len)
                .map(|i| unsafe { Self::count(node.children[i].load()) })
                .sum()
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.anchor).children[0].load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node, out: &mut Vec<(u64, u64)>) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            out.extend(node.leaf_entries());
        } else {
            for i in 0..=node.len {
                unsafe { Self::walk(node.children[i].load(), out) };
            }
        }
    }

    /// Quiescent invariant check: separator routing, sorted leaves, arity.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.anchor).children[0].load(), None, None);
        }
    }

    unsafe fn check(n: *mut Node, lo: Option<u64>, hi: Option<u64>) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        assert!(!node.removed.load(), "removed node reachable");
        assert!(node.len <= B);
        let in_bounds = |k: u64| {
            if let Some(lo) = lo {
                assert!(k >= lo, "key below bound");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "key above bound");
            }
        };
        if node.is_leaf {
            let e = node.leaf_entries();
            assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "unsorted leaf");
            for (k, _) in e {
                in_bounds(k);
            }
        } else {
            assert!(node.len >= 1, "internal node without separators");
            let seps = node.separators();
            assert!(seps.windows(2).all(|w| w[0] < w[1]), "unsorted separators");
            for &s in &seps {
                in_bounds(s);
            }
            for i in 0..=node.len {
                let clo = if i == 0 { lo } else { Some(seps[i - 1]) };
                let chi = if i == node.len { hi } else { Some(seps[i]) };
                unsafe { Self::check(node.children[i].load(), clo, chi) };
            }
        }
    }
}

/// Send+Sync wrapper for a vector of node pointers captured by thunks
/// (pointer payloads are epoch-protected; see `flock_core::Sp`).
struct SendPtrs(Vec<*mut Node>);
// SAFETY: plain addresses; validity via the epoch collector.
unsafe impl Send for SendPtrs {}
unsafe impl Sync for SendPtrs {}

impl Drop for ABTree {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free(n: *mut Node) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                if !(*n).is_leaf {
                    for i in 0..=(*n).len {
                        free((*n).children[i].load());
                    }
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.anchor).children[0].load());
            flock_epoch::free_now(self.anchor);
        }
    }
}

impl Map<u64, u64> for ABTree {
    fn insert(&self, key: u64, value: u64) -> bool {
        ABTree::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        ABTree::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        ABTree::get(self, key)
    }
    fn name(&self) -> &'static str {
        self.label
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            assert!(t.insert(5, 50));
            assert!(!t.insert(5, 51));
            assert!(t.insert(3, 30));
            assert!(t.insert(8, 80));
            assert_eq!(t.collect(), vec![(3, 30), (5, 50), (8, 80)]);
            assert!(t.remove(5));
            assert!(!t.remove(5));
            assert_eq!(t.get(8), Some(80));
            t.check_invariants();
        });
    }

    #[test]
    fn grows_past_many_splits() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            for k in 0..2_000 {
                assert!(t.insert(k, k * 3), "insert {k}");
            }
            assert_eq!(t.len(), 2_000);
            for k in 0..2_000 {
                assert_eq!(t.get(k), Some(k * 3), "get {k}");
            }
            t.check_invariants();
        });
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            for k in (0..1_000).rev() {
                assert!(t.insert(k, k));
            }
            // Interleave removes and re-inserts.
            for k in (0..1_000).step_by(3) {
                assert!(t.remove(k));
            }
            for k in (0..1_000).step_by(3) {
                assert!(t.insert(k, k + 7));
            }
            assert_eq!(t.len(), 1_000);
            t.check_invariants();
        });
    }

    #[test]
    fn drain_to_empty() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            for k in 0..500 {
                assert!(t.insert(k, k));
            }
            for k in 0..500 {
                assert!(t.remove(k), "remove {k}");
            }
            assert!(t.is_empty());
            assert!(t.insert(1, 2));
            assert_eq!(t.get(1), Some(2));
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            testutil::oracle_check(&t, 4_000, 512, 21);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t = ABTree::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }
}
