//! (a,b)-tree with optimistic fine-grained locking — the paper's `abtree`
//! (§7), in the style of Srivastava-Brown optimistic B-trees. Generic over
//! `(K, V)`.
//!
//! Design rules that keep readers consistent without locks:
//!
//! * A node's **key/value arrays and arity are immutable** after
//!   construction; any change to a node's key set *replaces* the node
//!   (copy-on-write) by swinging its parent's child pointer — a single
//!   idempotent store. Fat values ride inside the copied batch.
//! * **Child pointers are mutable in place** (they change when a child is
//!   replaced), guarded by the owning node's lock; holding a node's lock
//!   therefore stabilizes all of its child cells.
//! * A **split of child `c` under parent `p`** inserts a separator into `p`
//!   and so replaces `p` itself — done under `p`'s parent's lock, then `p`'s,
//!   then `c`'s (ancestor-first order). Inserts split full nodes on the way
//!   down and restart, so when the leaf is reached its parent has room.
//! * Deletes are **relaxed**: batches shrink by copy; an emptied leaf is
//!   spliced together with its separator; internal nodes collapse only when
//!   reduced to a single child. No proactive merging/borrowing — the classic
//!   relaxed-(a,b)-tree trade-off (documented in DESIGN.md).
//!
//! A pseudo-root *anchor* (an internal node with zero keys and one child)
//! removes all root special cases.

use flock_api::{Key, Map, Value};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

/// Maximum keys per leaf and separators per internal node ("b").
pub const B: usize = 12;

struct Node<K: Key, V: Value> {
    lock: Lock,
    removed: UpdateOnce<bool>,
    is_leaf: bool,
    /// Leaf: element keys (sorted). Internal: separators
    /// (children = keys.len() + 1).
    keys: Vec<K>,
    /// Element value slots (leaves only; parallel to `keys`). The key set
    /// is immutable (membership changes copy the leaf), but each value is
    /// mutable in place under the leaf's **parent** lock — native `update`
    /// without copying the batch.
    vals: Vec<ValueSlot<V>>,
    children: [Mutable<*mut Node<K, V>>; B + 1],
}

impl<K: Key, V: Value> Node<K, V> {
    fn empty_children() -> [Mutable<*mut Node<K, V>>; B + 1] {
        std::array::from_fn(|_| Mutable::new(std::ptr::null_mut()))
    }

    fn leaf(entries: &[(K, V)], admission: Admission) -> Self {
        debug_assert!(entries.len() <= B);
        Self {
            lock: Lock::new_with(admission),
            removed: UpdateOnce::new(false),
            is_leaf: true,
            keys: entries.iter().map(|(k, _)| k.clone()).collect(),
            vals: entries
                .iter()
                .map(|(_, v)| ValueSlot::new(v.clone()))
                .collect(),
            children: Self::empty_children(),
        }
    }

    fn internal(seps: &[K], kids: &[*mut Node<K, V>], admission: Admission) -> Self {
        debug_assert_eq!(kids.len(), seps.len() + 1);
        debug_assert!(seps.len() <= B);
        let children = std::array::from_fn(|i| {
            Mutable::new(if i < kids.len() {
                kids[i]
            } else {
                std::ptr::null_mut()
            })
        });
        Self {
            lock: Lock::new_with(admission),
            removed: UpdateOnce::new(false),
            is_leaf: false,
            keys: seps.to_vec(),
            vals: Vec::new(),
            children,
        }
    }

    /// Index of the child subtree that covers `k`
    /// (child `i` covers keys `< keys[i]`; the last child covers the rest;
    /// equal keys go right).
    #[inline]
    fn route(&self, k: &K) -> usize {
        self.keys.partition_point(|s| s <= k)
    }

    /// Position of `k` in a leaf, if present.
    #[inline]
    fn find(&self, k: &K) -> Option<usize> {
        debug_assert!(self.is_leaf);
        self.keys.iter().position(|x| x == k)
    }

    /// Key/value snapshot of a leaf (for copy-on-write paths). Inside a
    /// thunk every slot read is committed, so all runners copy the same
    /// batch.
    fn leaf_entries(&self) -> Vec<(K, V)> {
        self.keys
            .iter()
            .cloned()
            .zip(self.vals.iter().map(ValueSlot::read))
            .collect()
    }

    fn separators(&self) -> Vec<K> {
        self.keys.clone()
    }

    fn child_ptrs(&self) -> Vec<*mut Node<K, V>> {
        (0..=self.keys.len())
            .map(|i| self.children[i].load())
            .collect()
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.keys.len() == B
    }
}

/// Concurrent (a,b)-tree map.
pub struct ABTree<K: Key, V: Value> {
    /// Pseudo-root: zero keys, single child = the real root.
    anchor: *mut Node<K, V>,
    label: &'static str,
    /// Admission policy stamped on every node lock this tree creates.
    admission: Admission,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
}

// SAFETY: mutation via Flock locks + epoch reclamation; anchor immutable.
unsafe impl<K: Key, V: Value> Send for ABTree<K, V> {}
unsafe impl<K: Key, V: Value> Sync for ABTree<K, V> {}

impl<K: Key, V: Value> Default for ABTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> ABTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        Self::with_label("abtree")
    }

    /// An empty tree whose node locks all use `admission`
    /// (see [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        Self::with_label_and_admission("abtree", admission)
    }

    pub(crate) fn with_label(label: &'static str) -> Self {
        Self::with_label_and_admission(label, flock_core::default_admission())
    }

    pub(crate) fn with_label_and_admission(label: &'static str, admission: Admission) -> Self {
        let root = flock_epoch::alloc(Node::leaf(&[], admission));
        let anchor = flock_epoch::alloc(Node::internal(&[], &[root], admission));
        Self {
            anchor,
            label,
            admission,
            count: ApproxLen::new(),
        }
    }

    /// Walk to the leaf covering `k`, recording the path
    /// (`anchor` first, leaf last).
    fn path_to(&self, k: &K) -> Vec<*mut Node<K, V>> {
        let mut path = vec![self.anchor];
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = unsafe { (*self.anchor).children[0].load() };
        loop {
            path.push(cur);
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                return path;
            }
            cur = n.children[n.route(k)].load();
        }
    }

    /// Split full node `c` (child of `p`, grandchild of `g`): replaces `p`
    /// with a copy containing the new separator and the two halves of `c`.
    /// `None` = a lock on the g → p → c path was busy (caller should back
    /// off); `Some(applied)` = all three locks were taken and the plan
    /// either applied or had gone stale.
    fn split_child(
        &self,
        g: *mut Node<K, V>,
        p: *mut Node<K, V>,
        c: *mut Node<K, V>,
        k: &K,
    ) -> Option<bool> {
        let admission = self.admission;
        let (sp_g, sp_p, sp_c) = (Sp(g), Sp(p), Sp(c));
        let k2 = k.clone();
        // SAFETY: pinned caller.
        let outcome = unsafe { &*g }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let p_ref = unsafe { sp_p.as_ref() };
            let k3 = k2.clone();
            p_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let c_ref = unsafe { sp_c.as_ref() };
                let k4 = k3.clone();
                c_ref.lock.try_lock(move || {
                    // SAFETY: as above.
                    let g = unsafe { sp_g.as_ref() };
                    let p = unsafe { sp_p.as_ref() };
                    let c = unsafe { sp_c.as_ref() };
                    if g.removed.load() || p.removed.load() || c.removed.load() {
                        return false;
                    }
                    if !c.is_full() || p.is_full() {
                        return false; // stale plan; caller restarts
                    }
                    // Validate links (find c's slot in p, p's slot in g).
                    let gi = g.route(&k4);
                    if g.children[gi].load() != sp_p.ptr() {
                        return false;
                    }
                    let pi = p.route(&k4);
                    if p.children[pi].load() != sp_c.ptr() {
                        return false;
                    }
                    // Build the two halves of c. c's child cells are stable
                    // because we hold c's lock.
                    let mid = c.keys.len() / 2;
                    let (sep, left_ptr, right_ptr);
                    if c.is_leaf {
                        let entries = c.leaf_entries();
                        sep = entries[mid].0.clone();
                        let lo = entries[..mid].to_vec();
                        let hi = entries[mid..].to_vec();
                        left_ptr = flock_core::alloc(move || Node::leaf(&lo, admission));
                        right_ptr = flock_core::alloc(move || Node::leaf(&hi, admission));
                    } else {
                        let seps = c.separators();
                        let kids = c.child_ptrs();
                        sep = seps[mid].clone();
                        let lsep = seps[..mid].to_vec();
                        let lkid = kids[..=mid].to_vec();
                        let rsep = seps[mid + 1..].to_vec();
                        let rkid = kids[mid + 1..].to_vec();
                        let (lk, rk) = (SendPtrs(lkid), SendPtrs(rkid));
                        left_ptr =
                            flock_core::alloc(move || Node::internal(&lsep, &lk.0, admission));
                        right_ptr =
                            flock_core::alloc(move || Node::internal(&rsep, &rk.0, admission));
                    }
                    // New p with the separator spliced in at position pi.
                    let mut nseps = p.separators();
                    let mut nkids = p.child_ptrs();
                    nseps.insert(pi, sep);
                    nkids[pi] = left_ptr;
                    nkids.insert(pi + 1, right_ptr);
                    let nk = SendPtrs(nkids);
                    let new_p = flock_core::alloc(move || Node::internal(&nseps, &nk.0, admission));
                    p.removed.store(true);
                    c.removed.store(true);
                    g.children[gi].store(new_p);
                    // SAFETY: p and c are replaced/unlinked; idempotent
                    // retires fire once each.
                    unsafe {
                        flock_core::retire(sp_p.ptr());
                        flock_core::retire(sp_c.ptr());
                    }
                    true
                })
            })
        });
        // Flatten the three lock layers: any missing layer is "busy".
        match outcome {
            Some(Some(Some(applied))) => Some(applied),
            _ => None,
        }
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let admission = self.admission;
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        'restart: loop {
            let path = self.path_to(&k);
            let leaf = *path.last().expect("path includes leaf");
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_some() {
                return false;
            }
            // Grow the tree when the root itself is full: it splits into two
            // halves under a fresh one-separator root, under the anchor's
            // lock. Handling the root first establishes the invariant that
            // when the loop below splits path[w], path[w-1] has room.
            // SAFETY: pinned path nodes.
            if unsafe { &*path[1] }.is_full() {
                if self.split_root(path[1]).is_none() {
                    backoff.snooze(); // anchor/root lock busy
                }
                continue 'restart;
            }
            // Preemptively split the shallowest full node along the path and
            // restart; by induction its parent always has separator room.
            for w in 2..path.len() {
                // SAFETY: pinned path nodes.
                if unsafe { &*path[w] }.is_full() {
                    let (g, p, c) = (path[w - 2], path[w - 1], path[w]);
                    if self.split_child(g, p, c, &k).is_none() {
                        backoff.snooze(); // a lock on the split path was busy
                    }
                    continue 'restart;
                }
            }
            let parent = path[path.len() - 2];
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                if p.removed.load() {
                    return false;
                }
                let slot = p.route(&k2);
                if p.children[slot].load() != sp_l.ptr() {
                    return false;
                }
                if l.find(&k2).is_some() || l.is_full() {
                    return false; // re-examine from the top
                }
                let mut entries = l.leaf_entries();
                let pos = entries.partition_point(|(ek, _)| ek < &k2);
                entries.insert(pos, (k2.clone(), v2.clone()));
                let newl = flock_core::alloc(move || Node::leaf(&entries, admission));
                p.children[slot].store(newl);
                // SAFETY: replaced above; idempotent retire.
                unsafe { flock_core::retire(sp_l.ptr()) };
                true
            });
            match outcome {
                Some(true) => {
                    self.count.inc();
                    return true;
                }
                Some(false) => {}         // validation failed / leaf full: replan
                None => backoff.snooze(), // parent lock busy
            }
            // Re-check for presence then retry.
            // SAFETY: pinned.
            let path2 = self.path_to(&k);
            let leaf2 = *path2.last().expect("leaf");
            if unsafe { &*leaf2 }.find(&k).is_some() {
                return false;
            }
        }
    }

    /// Split a full root (leaf or internal) into two halves under a fresh
    /// one-separator root, under anchor → root locks.
    /// `None` = the anchor's or root's lock was busy; `Some(applied)`
    /// otherwise.
    fn split_root(&self, root: *mut Node<K, V>) -> Option<bool> {
        let admission = self.admission;
        let (sp_a, sp_r) = (Sp(self.anchor), Sp(root));
        // SAFETY: pinned caller; anchor immutable.
        let outcome = unsafe { &*self.anchor }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let r_ref = unsafe { sp_r.as_ref() };
            r_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let a = unsafe { sp_a.as_ref() };
                let r = unsafe { sp_r.as_ref() };
                if a.children[0].load() != sp_r.ptr() || !r.is_full() || r.removed.load() {
                    return false;
                }
                let mid = r.keys.len() / 2;
                let (sep, left_ptr, right_ptr);
                if r.is_leaf {
                    let entries = r.leaf_entries();
                    sep = entries[mid].0.clone();
                    let lo = entries[..mid].to_vec();
                    let hi = entries[mid..].to_vec();
                    left_ptr = flock_core::alloc(move || Node::leaf(&lo, admission));
                    right_ptr = flock_core::alloc(move || Node::leaf(&hi, admission));
                } else {
                    // Child cells stable: we hold the root's lock.
                    let seps = r.separators();
                    let kids = r.child_ptrs();
                    sep = seps[mid].clone();
                    let lsep = seps[..mid].to_vec();
                    let lkid = SendPtrs(kids[..=mid].to_vec());
                    let rsep = seps[mid + 1..].to_vec();
                    let rkid = SendPtrs(kids[mid + 1..].to_vec());
                    left_ptr = flock_core::alloc(move || Node::internal(&lsep, &lkid.0, admission));
                    right_ptr =
                        flock_core::alloc(move || Node::internal(&rsep, &rkid.0, admission));
                }
                let sep2 = sep.clone();
                let new_root = flock_core::alloc(move || {
                    Node::internal(
                        std::slice::from_ref(&sep2),
                        &[left_ptr, right_ptr],
                        admission,
                    )
                });
                r.removed.store(true);
                a.children[0].store(new_root);
                // SAFETY: replaced above; idempotent retire.
                unsafe { flock_core::retire(sp_r.ptr()) };
                true
            })
        });
        match outcome {
            Some(Some(applied)) => Some(applied),
            _ => None,
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let admission = self.admission;
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let path = self.path_to(&k);
            let leaf = *path.last().expect("leaf");
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_none() {
                return false;
            }
            let parent = path[path.len() - 2];
            // SAFETY: pinned.
            let parent_ref = unsafe { &*parent };
            let outcome = if leaf_ref.keys.len() > 1 || parent_ref.keys.is_empty() {
                // Shrink by copy. (A root leaf may become empty.)
                let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
                let k2 = k.clone();
                parent_ref
                    .lock
                    .try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if p.removed.load() {
                            return false;
                        }
                        let slot = p.route(&k2);
                        if p.children[slot].load() != sp_l.ptr() {
                            return false;
                        }
                        let Some(pos) = l.find(&k2) else { return false };
                        let mut entries = l.leaf_entries();
                        entries.remove(pos);
                        let newl = flock_core::alloc(move || Node::leaf(&entries, admission));
                        p.children[slot].store(newl);
                        // SAFETY: replaced above; idempotent retire.
                        unsafe { flock_core::retire(sp_l.ptr()) };
                        true
                    })
                    .map(Some)
            } else {
                // Leaf will become empty: splice it and its separator out of
                // the parent (replace the parent), under g → p locks. If the
                // parent would be left with a single child, hoist that child.
                let g = path[path.len() - 3];
                let (sp_g, sp_p, sp_l) = (Sp(g), Sp(parent), Sp(leaf));
                let k2 = k.clone();
                // SAFETY: pinned.
                unsafe { &*g }.lock.try_lock(move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    let k3 = k2.clone();
                    p.lock.try_lock(move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        let gi = g.route(&k3);
                        if g.children[gi].load() != sp_p.ptr() {
                            return false;
                        }
                        let pi = p.route(&k3);
                        if p.children[pi].load() != sp_l.ptr() {
                            return false;
                        }
                        if l.find(&k3).is_none() || l.keys.len() != 1 {
                            return false;
                        }
                        let mut seps = p.separators();
                        let mut kids = p.child_ptrs();
                        kids.remove(pi);
                        seps.remove(if pi == 0 { 0 } else { pi - 1 });
                        let replacement = if seps.is_empty() {
                            kids[0] // hoist the single remaining child
                        } else {
                            let nk = SendPtrs(kids);
                            flock_core::alloc(move || Node::internal(&seps, &nk.0, admission))
                        };
                        p.removed.store(true);
                        g.children[gi].store(replacement);
                        // SAFETY: p and l unlinked; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => {
                    self.count.dec();
                    return true;
                }
                Some(Some(false)) => {} // validation failed: replan now
                _ => backoff.snooze(),  // a lock on the path was busy
            }
        }
    }

    /// One optimistic descent to the leaf covering `k`, version-validated
    /// against the leaf's **parent** lock — the lock every mutation of
    /// this leaf goes through (value updates in place, copy-on-write leaf
    /// replacement, splits and splices all acquire it), so "full packed
    /// word unchanged and unlocked at both observations" proves the leaf's
    /// child cell and value slots were untouched across the read. `read`
    /// extracts the answer from the (immutable-keyed) leaf with plain
    /// `Acquire` slot loads. `None` = validation failed, retry or fall
    /// back.
    fn descend_validated<R>(&self, k: &K, read: impl Fn(&Node<K, V>) -> R) -> Option<R> {
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut parent = self.anchor;
        let mut slot = 0usize;
        let mut cur = unsafe { (*self.anchor).children[0].load_acquire() };
        loop {
            // SAFETY: pinned.
            let n = unsafe { &*cur };
            if n.is_leaf {
                // SAFETY: pinned.
                let p = unsafe { &*parent };
                let v0 = p.lock.version()?;
                if p.children[slot].load_acquire() != cur {
                    return None; // leaf replaced between descent and version
                }
                let res = read(n);
                return p.lock.validate(v0).then_some(res);
            }
            parent = cur;
            slot = n.route(k);
            cur = n.children[slot].load_acquire();
        }
    }

    /// Wait-free lookup — optimistic version-validated fast path with a
    /// bounded fallback to the committed (thunk-logged) read.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || self.descend_validated(&k, |n| n.find(&k).map(|i| n.vals[i].read_acquire())),
            || {
                // Committed descent: SeqCst child loads, logged slot read.
                // SAFETY: pinned descent.
                let mut cur = unsafe { (*self.anchor).children[0].load() };
                loop {
                    // SAFETY: pinned.
                    let n = unsafe { &*cur };
                    if n.is_leaf {
                        return n.find(&k).map(|i| n.vals[i].read());
                    }
                    cur = n.children[n.route(&k)].load();
                }
            },
        )
    }

    /// Presence-only lookup: never decodes or clones a value. Key sets are
    /// immutable per leaf (membership changes replace the leaf), so the
    /// descent plus a leaf-identity re-check under the parent's version
    /// suffices — and the committed fallback needs no slot read at all.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || self.descend_validated(k, |n| n.find(k).is_some()),
            || {
                // SAFETY: pinned descent.
                let mut cur = unsafe { (*self.anchor).children[0].load() };
                loop {
                    // SAFETY: pinned.
                    let n = unsafe { &*cur };
                    if n.is_leaf {
                        return n.find(k).is_some();
                    }
                    cur = n.children[n.route(k)].load();
                }
            },
        )
    }

    /// Ordered range scan (see [`flock_api::OrderedMap`] for the
    /// consistency contract): a separator-pruned walk that snapshots each
    /// covered leaf under its parent lock's version, falling back to
    /// per-slot committed reads for that leaf after bounded validation
    /// failures.
    pub fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe {
            self.range_walk(
                self.anchor,
                0,
                (*self.anchor).children[0].load_acquire(),
                lo,
                hi,
                &mut out,
            );
        }
        out
    }

    unsafe fn range_walk(
        &self,
        parent: *mut Node<K, V>,
        slot: usize,
        n: *mut Node<K, V>,
        lo: std::ops::Bound<&K>,
        hi: std::ops::Bound<&K>,
        out: &mut Vec<(K, V)>,
    ) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            // SAFETY: pinned.
            let p = unsafe { &*parent };
            let entries = flock_core::read_validated(
                || {
                    let v0 = p.lock.version()?;
                    if p.children[slot].load_acquire() != n {
                        return None;
                    }
                    let e: Vec<(K, V)> = node
                        .keys
                        .iter()
                        .cloned()
                        .zip(node.vals.iter().map(ValueSlot::read_acquire))
                        .collect();
                    p.lock.validate(v0).then_some(e)
                },
                || {
                    node.keys
                        .iter()
                        .cloned()
                        .zip(node.vals.iter().map(ValueSlot::read))
                        .collect()
                },
            );
            out.extend(
                entries
                    .into_iter()
                    .filter(|(k, _)| flock_api::key_in_range(k, lo, hi)),
            );
        } else {
            for i in 0..=node.keys.len() {
                // Child i covers [keys[i-1], keys[i]) — equal keys route
                // right. Prune subtrees wholly outside the bounds.
                if i < node.keys.len() && !flock_api::key_above_lower(&node.keys[i], lo) {
                    continue; // everything in child i is < keys[i] <= lo
                }
                if i > 0 && !flock_api::key_below_upper(&node.keys[i - 1], hi) {
                    break; // child i (and all later) start at >= hi
                }
                unsafe { self.range_walk(n, i, node.children[i].load_acquire(), lo, hi, out) };
            }
        }
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the leaf's **parent** lock (the lock
    /// every copy-on-write replacement of this leaf's child cell takes),
    /// with the parent link validated under it. Returns `false` if `k` is
    /// absent. Readers see the old value or the new one, never absence or a
    /// third value — and the batch is not copied.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let path = self.path_to(&k);
            let leaf = *path.last().expect("path includes leaf");
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_none() {
                return false;
            }
            let parent = path[path.len() - 2];
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                if p.removed.load() {
                    return false;
                }
                let slot = p.route(&k2);
                if p.children[slot].load() != sp_l.ptr() {
                    return false; // leaf replaced under us: re-plan
                }
                let Some(pos) = l.find(&k2) else { return false };
                l.vals[pos].set(v2.clone());
                true
            });
            match outcome {
                Some(true) => return true,
                Some(false) => {}         // validation failed: re-plan now
                None => backoff.snooze(), // parent lock busy
            }
        }
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count_entries((*self.anchor).children[0].load()) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count_entries(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            node.keys.len()
        } else {
            (0..=node.keys.len())
                .map(|i| unsafe { Self::count_entries(node.children[i].load()) })
                .sum()
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.anchor).children[0].load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node<K, V>, out: &mut Vec<(K, V)>) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.is_leaf {
            out.extend(node.leaf_entries());
        } else {
            for i in 0..=node.keys.len() {
                unsafe { Self::walk(node.children[i].load(), out) };
            }
        }
    }

    /// Quiescent invariant check: separator routing, sorted leaves, arity.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.anchor).children[0].load(), None, None);
        }
    }

    unsafe fn check(n: *mut Node<K, V>, lo: Option<&K>, hi: Option<&K>) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        assert!(!node.removed.load(), "removed node reachable");
        assert!(node.keys.len() <= B);
        let in_bounds = |k: &K| {
            if let Some(lo) = lo {
                assert!(k >= lo, "key below bound");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "key above bound");
            }
        };
        if node.is_leaf {
            assert!(node.keys.windows(2).all(|w| w[0] < w[1]), "unsorted leaf");
            for k in &node.keys {
                in_bounds(k);
            }
        } else {
            assert!(!node.keys.is_empty(), "internal node without separators");
            assert!(
                node.keys.windows(2).all(|w| w[0] < w[1]),
                "unsorted separators"
            );
            for s in &node.keys {
                in_bounds(s);
            }
            for i in 0..=node.keys.len() {
                let clo = if i == 0 { lo } else { Some(&node.keys[i - 1]) };
                let chi = if i == node.keys.len() {
                    hi
                } else {
                    Some(&node.keys[i])
                };
                unsafe { Self::check(node.children[i].load(), clo, chi) };
            }
        }
    }
}

/// Send+Sync wrapper for a vector of node pointers captured by thunks
/// (pointer payloads are epoch-protected; see `flock_core::Sp`).
struct SendPtrs<K: Key, V: Value>(Vec<*mut Node<K, V>>);
// SAFETY: plain addresses; validity via the epoch collector.
unsafe impl<K: Key, V: Value> Send for SendPtrs<K, V> {}
unsafe impl<K: Key, V: Value> Sync for SendPtrs<K, V> {}

impl<K: Key, V: Value> Drop for ABTree<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                if !(*n).is_leaf {
                    for i in 0..=(*n).keys.len() {
                        free((*n).children[i].load());
                    }
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.anchor).children[0].load());
            flock_epoch::free_now(self.anchor);
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for ABTree<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        ABTree::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        ABTree::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        ABTree::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        ABTree::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        self.label
    }
    fn update(&self, key: K, value: V) -> bool {
        ABTree::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key, V: Value> flock_api::OrderedMap<K, V> for ABTree<K, V> {
    fn range(&self, lo: std::ops::Bound<&K>, hi: std::ops::Bound<&K>) -> Vec<(K, V)> {
        ABTree::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            assert!(t.insert(5, 50));
            assert!(!t.insert(5, 51));
            assert!(t.insert(3, 30));
            assert!(t.insert(8, 80));
            assert_eq!(t.collect(), vec![(3, 30), (5, 50), (8, 80)]);
            assert!(t.remove(5));
            assert!(!t.remove(5));
            assert_eq!(t.get(8), Some(80));
            t.check_invariants();
        });
    }

    #[test]
    fn grows_past_many_splits() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            for k in 0..2_000 {
                assert!(t.insert(k, k * 3), "insert {k}");
            }
            assert_eq!(t.len(), 2_000);
            for k in 0..2_000 {
                assert_eq!(t.get(k), Some(k * 3), "get {k}");
            }
            t.check_invariants();
        });
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            for k in (0..1_000).rev() {
                assert!(t.insert(k, k));
            }
            // Interleave removes and re-inserts.
            for k in (0..1_000).step_by(3) {
                assert!(t.remove(k));
            }
            for k in (0..1_000).step_by(3) {
                assert!(t.insert(k, k + 7));
            }
            assert_eq!(t.len(), 1_000);
            t.check_invariants();
        });
    }

    #[test]
    fn drain_to_empty() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            for k in 0..500 {
                assert!(t.insert(k, k));
            }
            for k in 0..500 {
                assert!(t.remove(k), "remove {k}");
            }
            assert!(t.is_empty());
            assert!(t.insert(1, 2));
            assert_eq!(t.get(1), Some(2));
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            assert!(!t.update(1, 10), "update of an absent key refused");
            // Enough keys for several splits, so updates hit deep leaves.
            for k in 0..200 {
                assert!(t.insert(k, k));
            }
            for k in 0..200 {
                assert!(t.update(k, k + 1000));
            }
            for k in 0..200 {
                assert_eq!(t.get(k), Some(k + 1000));
            }
            assert_eq!(t.len(), 200, "update must not change the count");
            assert!(t.remove(7));
            assert!(!t.update(7, 1));
            t.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            testutil::oracle_check(&t, 4_000, 512, 21);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t: ABTree<u64, u64> = ABTree::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }
}
