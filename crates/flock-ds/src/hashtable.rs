//! Separate-chaining hash table with one Flock lock per bucket, generic
//! over `(K, V)` and the hash function.
//!
//! The paper's `hashtable` (§7): a fixed array of buckets, each an unsorted
//! singly-linked chain guarded by the bucket's lock. Lookups traverse the
//! chain without locking; updates take the single bucket lock, re-find the
//! key under the lock, and splice. Chains are short (the benchmarks size the
//! table to the key range), so critical sections are tiny — which is exactly
//! why the paper observes the *highest* relative logging overhead here: the
//! lock-free mode's descriptor + log cost is not amortized by any search
//! time.
//!
//! Two things distinguish this structure in the generic workspace:
//!
//! * **A real hasher seam.** Bucket selection goes through
//!   [`std::hash::BuildHasher`]; the default [`FlockHashBuilder`] is a
//!   deterministic FNV-1a/mix64 combination (benchmarks need run-to-run
//!   stable placement), and [`HashTable::with_capacity_and_hasher`] accepts
//!   any substitute.
//! * **A native atomic [`Map::update`]** — the structure that proved the
//!   pattern every Flock structure now shares: each node stores its value
//!   in a lock-word-adjacent [`ValueSlot<V>`] read-modify-written in-thunk
//!   under the bucket lock — one idempotent store, no remove/insert
//!   composite, no observable absence window
//!   ([`Map::has_atomic_update`] returns `true`; the conformance harness
//!   verifies the claim). Fat (`Indirect`) values ride behind an
//!   epoch-managed pointer the store machinery retires exactly once.
//!   Because values live in a packed slot, inline `u64`/`usize` values
//!   inherit the workspace-wide 48-bit payload contract (debug-asserted;
//!   use `Indirect<u64>` for full-range values) — see [`flock_api::Value`].
//!
//! Note on thunk results: thunks communicate **only** through their boolean
//! return value and the shared structure. Capturing a pointer to the
//! caller's stack would be a use-after-return hazard, because a helper can
//! still be replaying the thunk after the owner's call has returned — the
//! same reason the paper's C++ lambdas must capture by value.

use std::hash::{BuildHasher, Hasher};

use flock_api::{Key, Map, Value};
use flock_core::{Admission, Lock, Mutable, Sp, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

use crate::mix64;

/// Deterministic default hasher: FNV-1a over the key's `Hash` bytes with a
/// mix64 finalizer. Stable across runs and processes (unlike
/// `RandomState`), which keeps benchmark bucket placement reproducible.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlockHashBuilder;

impl BuildHasher for FlockHashBuilder {
    type Hasher = FlockHasher;
    fn build_hasher(&self) -> FlockHasher {
        FlockHasher(0xCBF2_9CE4_8422_2325)
    }
}

/// Hasher produced by [`FlockHashBuilder`].
#[derive(Clone, Copy, Debug)]
pub struct FlockHasher(u64);

impl Hasher for FlockHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.0)
    }
}

struct Node<K: Key, V: Value> {
    next: Mutable<*mut Node<K, V>>,
    key: K,
    /// Lock-word-adjacent value slot: mutable in place under the bucket
    /// lock (native `update`), snapshot-readable without it.
    value: ValueSlot<V>,
}

struct Bucket<K: Key, V: Value> {
    lock: Lock,
    head: Mutable<*mut Node<K, V>>,
}

/// Fixed-capacity separate-chaining hash map.
pub struct HashTable<K: Key, V: Value, S = FlockHashBuilder> {
    buckets: Box<[Bucket<K, V>]>,
    mask: u64,
    hasher: S,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
}

// SAFETY: mutation via per-bucket Flock locks + epoch reclamation; the
// hasher is only read.
unsafe impl<K: Key, V: Value, S: Send> Send for HashTable<K, V, S> {}
unsafe impl<K: Key, V: Value, S: Sync> Sync for HashTable<K, V, S> {}

impl<K: Key, V: Value> HashTable<K, V> {
    /// A table with at least `capacity` buckets (rounded up to a power of
    /// two) and the default deterministic hasher. Size it to the expected
    /// element count for O(1) chains.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_hasher(capacity, FlockHashBuilder)
    }

    /// A table with at least `capacity` buckets whose bucket locks all use
    /// `admission` (see [`flock_core::admission`]).
    pub fn with_capacity_and_admission(capacity: usize, admission: Admission) -> Self {
        Self::with_capacity_hasher_admission(capacity, FlockHashBuilder, admission)
    }
}

impl<K: Key, V: Value, S: BuildHasher + Send + Sync + 'static> HashTable<K, V, S> {
    /// A table with at least `capacity` buckets and a caller-supplied
    /// hash-function family (the hasher seam).
    pub fn with_capacity_and_hasher(capacity: usize, hasher: S) -> Self {
        Self::with_capacity_hasher_admission(capacity, hasher, flock_core::default_admission())
    }

    /// The fully explicit constructor: capacity, hasher family, and the
    /// [`Admission`] policy stamped on every bucket lock. All bucket locks
    /// exist for the table's whole lifetime, so admission is decided here
    /// once, not per node.
    pub fn with_capacity_hasher_admission(
        capacity: usize,
        hasher: S,
        admission: Admission,
    ) -> Self {
        let n = capacity.next_power_of_two().max(16);
        let buckets = (0..n)
            .map(|_| Bucket {
                lock: Lock::new_with(admission),
                head: Mutable::new(std::ptr::null_mut()),
            })
            .collect();
        Self {
            buckets,
            mask: (n - 1) as u64,
            hasher,
            count: ApproxLen::new(),
        }
    }

    #[inline]
    fn bucket(&self, k: &K) -> &Bucket<K, V> {
        &self.buckets[(self.hasher.hash_one(k) & self.mask) as usize]
    }

    /// Find `k` in the chain starting at `head`. Returns the node, if any.
    ///
    /// # Safety
    ///
    /// Caller must be epoch-pinned (or inside a thunk, where the loads are
    /// logged and the chain is protected by the bucket lock).
    unsafe fn chain_find(head: &Mutable<*mut Node<K, V>>, k: &K) -> *mut Node<K, V> {
        let mut p = head.load();
        while !p.is_null() {
            // SAFETY: epoch-pinned per contract.
            let n = unsafe { &*p };
            if n.key == *k {
                return p;
            }
            p = n.next.load();
        }
        std::ptr::null_mut()
    }

    /// Optimistic [`HashTable::chain_find`]: plain `Acquire` pointer loads,
    /// no thunk-log traffic. Only for bucket-lock version-validated read
    /// windows ([`flock_core::read_validated`]).
    ///
    /// # Safety
    ///
    /// Caller must be epoch-pinned and outside any thunk.
    unsafe fn chain_find_acquire(head: &Mutable<*mut Node<K, V>>, k: &K) -> *mut Node<K, V> {
        let mut p = head.load_acquire();
        while !p.is_null() {
            // SAFETY: epoch-pinned per contract.
            let n = unsafe { &*p };
            if n.key == *k {
                return p;
            }
            p = n.next.load_acquire();
        }
        std::ptr::null_mut()
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(&k);
        let mut backoff = Backoff::new();
        loop {
            // Check outside the lock; also the loop's termination path when
            // the thunk observes the key under the lock.
            // SAFETY: pinned above.
            if !unsafe { Self::chain_find(&b.head, &k) }.is_null() {
                return false;
            }
            let head =
                Sp(&b.head as *const Mutable<*mut Node<K, V>> as *mut Mutable<*mut Node<K, V>>);
            let (k2, v2) = (k.clone(), v.clone());
            match b.lock.try_lock(move || {
                // SAFETY: the bucket array lives as long as the table; every
                // runner of this thunk is epoch-protected.
                let head = unsafe { head.as_ref() };
                // Re-find under the lock: the chain is now stable.
                // SAFETY: under the bucket lock + epoch protection.
                if !unsafe { Self::chain_find(head, &k2) }.is_null() {
                    return false; // already present: retry loop re-checks
                }
                let old_head = head.load();
                let newn = flock_core::alloc(|| Node {
                    next: Mutable::new(old_head),
                    key: k2.clone(),
                    value: ValueSlot::new(v2.clone()),
                });
                head.store(newn);
                true
            }) {
                Some(true) => {
                    self.count.inc();
                    return true;
                }
                Some(false) => {}         // key appeared under the lock: re-check
                None => backoff.snooze(), // bucket lock busy
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(&k);
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: pinned above.
            if unsafe { Self::chain_find(&b.head, &k) }.is_null() {
                return false;
            }
            let head =
                Sp(&b.head as *const Mutable<*mut Node<K, V>> as *mut Mutable<*mut Node<K, V>>);
            let k2 = k.clone();
            match b.lock.try_lock(move || {
                // SAFETY: see insert.
                let head = unsafe { head.as_ref() };
                // Walk with the current "previous pointer cell" in hand so
                // the matching node can be spliced out.
                let mut prev_cell: &Mutable<*mut Node<K, V>> = head;
                let mut p = prev_cell.load();
                while !p.is_null() {
                    // SAFETY: under the bucket lock + epoch protection.
                    let n = unsafe { &*p };
                    if n.key == k2 {
                        prev_cell.store(n.next.load());
                        // SAFETY: unlinked above; idempotent retire.
                        unsafe { flock_core::retire(p) };
                        return true;
                    }
                    prev_cell = &n.next;
                    p = prev_cell.load();
                }
                false // vanished between check and lock: retry loop re-checks
            }) {
                Some(true) => {
                    self.count.dec();
                    return true;
                }
                Some(false) => {}         // key vanished under the lock: re-check
                None => backoff.snooze(), // bucket lock busy
            }
        }
    }

    /// Native atomic update: replace the value stored under `k` in place,
    /// under the bucket lock — one idempotent slot store, no remove/insert
    /// composite, no absence window. Returns `false` (storing nothing) if
    /// `k` is absent.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(&k);
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: pinned above.
            if unsafe { Self::chain_find(&b.head, &k) }.is_null() {
                return false;
            }
            let head =
                Sp(&b.head as *const Mutable<*mut Node<K, V>> as *mut Mutable<*mut Node<K, V>>);
            let (k2, v2) = (k.clone(), v.clone());
            match b.lock.try_lock(move || {
                // SAFETY: see insert.
                let head = unsafe { head.as_ref() };
                // SAFETY: under the bucket lock + epoch protection.
                let p = unsafe { Self::chain_find(head, &k2) };
                if p.is_null() {
                    return false; // vanished between check and lock: re-check
                }
                // SAFETY: found under the lock; stable while we hold it.
                let n = unsafe { &*p };
                // In-thunk read-modify-write through the shared value-slot
                // primitive: the idempotent store keeps helpers agreeing on
                // one new encoding and retires the displaced one exactly
                // once (indirect values).
                n.value.set(v2.clone());
                true
            }) {
                Some(true) => return true,
                Some(false) => {}         // key vanished under the lock: re-check
                None => backoff.snooze(), // bucket lock busy
            }
        }
    }

    /// Wait-free lookup. Optimistic first: the chain walk and the value
    /// snapshot run under the bucket lock's version
    /// ([`flock_core::read_validated`]) with plain `Acquire` loads; a
    /// window in which a bucket critical section committed is discarded
    /// and, after the bounded retries, the committed-read path decides.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        let b = self.bucket(&k);
        b.lock.read_validated(
            || {
                // SAFETY: pinned above; outside any thunk (the combinator
                // routes in-thunk callers to the fallback).
                let p = unsafe { Self::chain_find_acquire(&b.head, &k) };
                // SAFETY: non-null node found while pinned.
                (!p.is_null()).then(|| unsafe { &*p }.value.read_acquire())
            },
            || {
                // SAFETY: pinned above.
                let p = unsafe { Self::chain_find(&b.head, &k) };
                // SAFETY: non-null node found while pinned; the value slot
                // load snapshots under the same pin.
                (!p.is_null()).then(|| unsafe { &*p }.value.read())
            },
        )
    }

    /// Presence check that never materializes the value: the chain walk
    /// stops at key equality and the value slot is never decoded — routing
    /// through [`HashTable::get`] would clone a fat (`Indirect`) value just
    /// to drop it. Same optimistic/committed bracket as `get`.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(k);
        b.lock.read_validated(
            // SAFETY: pinned above; outside any thunk (combinator contract).
            || !unsafe { Self::chain_find_acquire(&b.head, k) }.is_null(),
            // SAFETY: pinned above.
            || !unsafe { Self::chain_find(&b.head, k) }.is_null(),
        )
    }

    /// Buckets walked per epoch pin in [`HashTable::len`]: long enough to
    /// amortize the pin, short enough that reclamation is never stalled for
    /// the whole O(buckets + n) scan.
    const LEN_CHUNK_BUCKETS: usize = 64;

    /// Element count (O(buckets + n); tests/diagnostics).
    ///
    /// The walk is chunked: every [`Self::LEN_CHUNK_BUCKETS`] buckets the
    /// epoch pin is dropped and re-taken, so a concurrent writer's retired
    /// nodes can be reclaimed *during* the scan instead of piling up behind
    /// one scan-long reservation. The count stays what it always was — a
    /// racy snapshot summed bucket by bucket.
    pub fn len(&self) -> usize {
        self.len_chunked(|| {})
    }

    /// [`HashTable::len`] with a test observation hook: `between_chunks`
    /// runs after each chunk **while this thread holds no epoch pin**, which
    /// is what makes the periodic-repin behavior assertable via
    /// [`flock_epoch::epoch_stats`].
    fn len_chunked(&self, mut between_chunks: impl FnMut()) -> usize {
        let mut n = 0;
        for chunk in self.buckets.chunks(Self::LEN_CHUNK_BUCKETS) {
            {
                let _g = flock_epoch::pin();
                for b in chunk {
                    let mut p = b.head.load();
                    while !p.is_null() {
                        n += 1;
                        // SAFETY: pinned walk.
                        p = unsafe { &*p }.next.load();
                    }
                }
            }
            between_chunks();
        }
        n
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Key, V: Value, S> Drop for HashTable<K, V, S> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe {
            for b in self.buckets.iter() {
                let mut p = b.head.load();
                while !p.is_null() {
                    let next = (*p).next.load();
                    flock_epoch::free_now(p);
                    p = next;
                }
            }
        }
    }
}

impl<K: Key, V: Value, S: BuildHasher + Send + Sync + 'static> Map<K, V> for HashTable<K, V, S> {
    fn insert(&self, key: K, value: V) -> bool {
        HashTable::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        HashTable::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        HashTable::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        HashTable::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "hashtable"
    }
    fn update(&self, key: K, value: V) -> bool {
        HashTable::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let h: HashTable<u64, u64> = HashTable::with_capacity(64);
            assert!(h.insert(1, 10));
            assert!(!h.insert(1, 11));
            assert_eq!(h.get(1), Some(10));
            assert!(h.remove(1));
            assert!(!h.remove(1));
            assert_eq!(h.get(1), None);
        });
    }

    #[test]
    fn colliding_keys_share_chain() {
        testutil::both_modes(|| {
            // Tiny table forces collisions.
            let h: HashTable<u64, u64> = HashTable::with_capacity(1);
            for k in 0..64 {
                assert!(h.insert(k, k * 10));
            }
            assert_eq!(h.len(), 64);
            for k in 0..64 {
                assert_eq!(h.get(k), Some(k * 10));
            }
            for k in (0..64).step_by(2) {
                assert!(h.remove(k));
            }
            assert_eq!(h.len(), 32);
            for k in 0..64 {
                assert_eq!(h.get(k), (k % 2 == 1).then_some(k * 10));
            }
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let h: HashTable<u64, u64> = HashTable::with_capacity(16);
            assert!(!h.update(1, 10), "update of an absent key refused");
            assert!(h.insert(1, 10));
            assert!(h.update(1, 11));
            assert_eq!(h.get(1), Some(11));
            assert_eq!(h.len(), 1, "update must not change the count");
            assert!(h.remove(1));
            assert!(!h.update(1, 12));
        });
    }

    #[test]
    fn native_update_fat_values() {
        testutil::both_modes(|| {
            use flock_core::Indirect;
            let h: HashTable<u64, Indirect<Vec<u64>>> = HashTable::with_capacity(16);
            assert!(h.insert(1, Indirect(vec![1, 2, 3])));
            assert!(h.update(1, Indirect(vec![4, 5, 6, 7])));
            assert_eq!(h.get(1), Some(Indirect(vec![4, 5, 6, 7])));
            assert!(h.remove(1));
            drop(h);
            flock_epoch::flush_all();
        });
    }

    #[test]
    fn custom_hasher_seam() {
        testutil::exclusive(|| {
            // A pathological single-bucket hasher still yields a correct
            // (if slow) table: everything collides into one chain.
            #[derive(Clone, Default)]
            struct OneBucket;
            impl std::hash::BuildHasher for OneBucket {
                type Hasher = Constant;
                fn build_hasher(&self) -> Constant {
                    Constant
                }
            }
            struct Constant;
            impl std::hash::Hasher for Constant {
                fn write(&mut self, _bytes: &[u8]) {}
                fn finish(&self) -> u64 {
                    0
                }
            }
            let h: HashTable<u64, u64, OneBucket> =
                HashTable::with_capacity_and_hasher(64, OneBucket);
            for k in 0..32 {
                assert!(h.insert(k, k + 1));
            }
            for k in 0..32 {
                assert_eq!(h.get(k), Some(k + 1));
            }
            assert_eq!(h.len(), 32);
        });
    }

    /// Satellite regression: `len` used to hold one epoch pin across the
    /// whole O(buckets + n) walk, stalling reclamation for its duration.
    /// The chunked walk provably drops the pin between chunks (thread-local
    /// `pinned_epoch` observation — immune to other test threads' pins) and
    /// lets the collector free garbage retired mid-scan *before* `len`
    /// returns.
    #[test]
    fn len_repins_between_chunks() {
        testutil::exclusive(|| {
            // 512 buckets → 8 chunk boundaries at 64 buckets/chunk.
            let h: HashTable<u64, u64> = HashTable::with_capacity(512);
            for k in 0..256 {
                assert!(h.insert(k, k));
            }
            let freed_before = flock_epoch::collector_stats().freed;
            let boundaries = std::cell::Cell::new(0usize);
            let freed_mid_walk = std::cell::Cell::new(false);
            let n = h.len_chunked(|| {
                boundaries.set(boundaries.get() + 1);
                assert_eq!(
                    flock_epoch::pinned_epoch(),
                    None,
                    "len still holds its epoch pin at a chunk boundary"
                );
                // Feed the collector at the first boundary, then let it run:
                // the freed counter moving while the walk is still in
                // progress is the observable improvement.
                if boundaries.get() == 1 {
                    let garbage = flock_epoch::alloc(0u64);
                    // SAFETY: fresh private allocation, never shared.
                    unsafe { flock_epoch::retire_orphan(garbage) };
                }
                flock_epoch::try_advance();
                flock_epoch::flush_all();
                freed_mid_walk.set(
                    freed_mid_walk.get() | (flock_epoch::collector_stats().freed > freed_before),
                );
            });
            assert_eq!(n, 256);
            assert!(
                boundaries.get() >= 8,
                "expected ≥ 8 chunk boundaries, saw {}",
                boundaries.get()
            );
            assert!(
                freed_mid_walk.get(),
                "reclamation made no progress while len was walking"
            );
        });
    }

    /// `contains` never decodes the value slot (presence-only read path).
    #[test]
    fn contains_presence_only() {
        testutil::both_modes(|| {
            let h: HashTable<u64, u64> = HashTable::with_capacity(16);
            assert!(!h.contains(&1));
            assert!(h.insert(1, 10));
            assert!(h.contains(&1));
            assert!(h.remove(1));
            assert!(!h.contains(&1));
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let h: HashTable<u64, u64> = HashTable::with_capacity(32);
            testutil::oracle_check(&h, 3_000, 128, 99);
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let h: HashTable<u64, u64> = HashTable::with_capacity(512);
            testutil::partition_stress(&h, 4, 1_500);
        });
    }
}
