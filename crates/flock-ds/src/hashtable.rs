//! Separate-chaining hash table with one Flock lock per bucket.
//!
//! The paper's `hashtable` (§7): a fixed array of buckets, each an unsorted
//! singly-linked chain guarded by the bucket's lock. Lookups traverse the
//! chain without locking; updates take the single bucket lock, re-find the
//! key under the lock, and splice. Chains are short (the benchmarks size the
//! table to the key range), so critical sections are tiny — which is exactly
//! why the paper observes the *highest* relative logging overhead here: the
//! lock-free mode's descriptor + log cost is not amortized by any search
//! time.
//!
//! Note on thunk results: thunks communicate **only** through their boolean
//! return value and the shared structure. Capturing a pointer to the
//! caller's stack would be a use-after-return hazard, because a helper can
//! still be replaying the thunk after the owner's call has returned — the
//! same reason the paper's C++ lambdas must capture by value.

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp};
use flock_sync::Backoff;

use crate::mix64;

struct Node {
    next: Mutable<*mut Node>,
    key: u64,
    value: u64,
}

struct Bucket {
    lock: Lock,
    head: Mutable<*mut Node>,
}

/// Fixed-capacity separate-chaining hash map.
pub struct HashTable {
    buckets: Box<[Bucket]>,
    mask: u64,
}

// SAFETY: mutation via per-bucket Flock locks + epoch reclamation.
unsafe impl Send for HashTable {}
unsafe impl Sync for HashTable {}

impl HashTable {
    /// A table with at least `capacity` buckets (rounded up to a power of
    /// two). Size it to the expected element count for O(1) chains.
    pub fn with_capacity(capacity: usize) -> Self {
        let n = capacity.next_power_of_two().max(16);
        let buckets = (0..n)
            .map(|_| Bucket {
                lock: Lock::new(),
                head: Mutable::new(std::ptr::null_mut()),
            })
            .collect();
        Self {
            buckets,
            mask: (n - 1) as u64,
        }
    }

    #[inline]
    fn bucket(&self, k: u64) -> &Bucket {
        &self.buckets[(mix64(k) & self.mask) as usize]
    }

    /// Find `k` in the chain starting at `head`. Returns the node, if any.
    ///
    /// # Safety
    ///
    /// Caller must be epoch-pinned (or inside a thunk, where the loads are
    /// logged and the chain is protected by the bucket lock).
    unsafe fn chain_find(head: &Mutable<*mut Node>, k: u64) -> *mut Node {
        let mut p = head.load();
        while !p.is_null() {
            // SAFETY: epoch-pinned per contract.
            let n = unsafe { &*p };
            if n.key == k {
                return p;
            }
            p = n.next.load();
        }
        std::ptr::null_mut()
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(k);
        let mut backoff = Backoff::new();
        loop {
            // Check outside the lock; also the loop's termination path when
            // the thunk observes the key under the lock.
            // SAFETY: pinned above.
            if !unsafe { Self::chain_find(&b.head, k) }.is_null() {
                return false;
            }
            let head = Sp(&b.head as *const Mutable<*mut Node> as *mut Mutable<*mut Node>);
            match b.lock.try_lock(move || {
                // SAFETY: the bucket array lives as long as the table; every
                // runner of this thunk is epoch-protected.
                let head = unsafe { head.as_ref() };
                // Re-find under the lock: the chain is now stable.
                // SAFETY: under the bucket lock + epoch protection.
                if !unsafe { Self::chain_find(head, k) }.is_null() {
                    return false; // already present: retry loop re-checks
                }
                let old_head = head.load();
                let newn = flock_core::alloc(|| Node {
                    next: Mutable::new(old_head),
                    key: k,
                    value: v,
                });
                head.store(newn);
                true
            }) {
                Some(true) => return true,
                Some(false) => {}         // key appeared under the lock: re-check
                None => backoff.snooze(), // bucket lock busy
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let b = self.bucket(k);
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: pinned above.
            if unsafe { Self::chain_find(&b.head, k) }.is_null() {
                return false;
            }
            let head = Sp(&b.head as *const Mutable<*mut Node> as *mut Mutable<*mut Node>);
            match b.lock.try_lock(move || {
                // SAFETY: see insert.
                let head = unsafe { head.as_ref() };
                // Walk with the current "previous pointer cell" in hand so
                // the matching node can be spliced out.
                let mut prev_cell: &Mutable<*mut Node> = head;
                let mut p = prev_cell.load();
                while !p.is_null() {
                    // SAFETY: under the bucket lock + epoch protection.
                    let n = unsafe { &*p };
                    if n.key == k {
                        prev_cell.store(n.next.load());
                        // SAFETY: unlinked above; idempotent retire.
                        unsafe { flock_core::retire(p) };
                        return true;
                    }
                    prev_cell = &n.next;
                    p = prev_cell.load();
                }
                false // vanished between check and lock: retry loop re-checks
            }) {
                Some(true) => return true,
                Some(false) => {}         // key vanished under the lock: re-check
                None => backoff.snooze(), // bucket lock busy
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let b = self.bucket(k);
        // SAFETY: pinned above.
        let p = unsafe { Self::chain_find(&b.head, k) };
        // SAFETY: non-null node found while pinned.
        (!p.is_null()).then(|| unsafe { &*p }.value)
    }

    /// Element count (O(buckets + n); tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        let mut n = 0;
        for b in self.buckets.iter() {
            let mut p = b.head.load();
            while !p.is_null() {
                n += 1;
                // SAFETY: pinned walk.
                p = unsafe { &*p }.next.load();
            }
        }
        n
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for HashTable {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe {
            for b in self.buckets.iter() {
                let mut p = b.head.load();
                while !p.is_null() {
                    let next = (*p).next.load();
                    flock_epoch::free_now(p);
                    p = next;
                }
            }
        }
    }
}

impl Map<u64, u64> for HashTable {
    fn insert(&self, key: u64, value: u64) -> bool {
        HashTable::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        HashTable::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        HashTable::get(self, key)
    }
    fn name(&self) -> &'static str {
        "hashtable"
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let h = HashTable::with_capacity(64);
            assert!(h.insert(1, 10));
            assert!(!h.insert(1, 11));
            assert_eq!(h.get(1), Some(10));
            assert!(h.remove(1));
            assert!(!h.remove(1));
            assert_eq!(h.get(1), None);
        });
    }

    #[test]
    fn colliding_keys_share_chain() {
        testutil::both_modes(|| {
            // Tiny table forces collisions.
            let h = HashTable::with_capacity(1);
            for k in 0..64 {
                assert!(h.insert(k, k * 10));
            }
            assert_eq!(h.len(), 64);
            for k in 0..64 {
                assert_eq!(h.get(k), Some(k * 10));
            }
            for k in (0..64).step_by(2) {
                assert!(h.remove(k));
            }
            assert_eq!(h.len(), 32);
            for k in 0..64 {
                assert_eq!(h.get(k), (k % 2 == 1).then_some(k * 10));
            }
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let h = HashTable::with_capacity(32);
            testutil::oracle_check(&h, 3_000, 128, 99);
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let h = HashTable::with_capacity(512);
            testutil::partition_stress(&h, 4, 1_500);
        });
    }
}
