//! # flock-ds — concurrent data structures built on Flock lock-free locks
//!
//! Every structure here is written the way a systems programmer would write
//! it with fine-grained optimistic locks — traverse without locks, lock a
//! small neighborhood, validate, mutate — and inherits lock-freedom (or
//! classic blocking behavior) from `flock-core`'s runtime lock mode. This is
//! the paper's §7 collection:
//!
//! | module | structure | paper name |
//! |---|---|---|
//! | [`dlist`] | sorted doubly-linked list (Algorithm 1) | `dlist` |
//! | [`lazylist`] | sorted singly-linked lazy list | `lazylist` |
//! | [`hashtable`] | separate-chaining hash table | `hashtable` |
//! | [`leaftree`] | leaf-oriented unbalanced BST | `leaftree` |
//! | [`leaftreap`] | leaf-oriented treap, multi-entry leaves | `leaftreap` |
//! | [`abtree`] | (a,b)-tree | `abtree` |
//! | [`arttree`] | adaptive radix tree | `arttree` |
//!
//! All implement the [`ConcurrentMap`] trait (insert / remove / get) over
//! `u64` keys and values, the shape the paper's evaluation uses (8-byte keys
//! and values).

#![warn(missing_docs)]

pub mod abtree;
pub mod arttree;
pub mod dlist;
pub mod hashtable;
pub mod lazylist;
pub mod leaftree;
pub mod leaftreap;

/// Common interface for the benchmarkable set data structures.
///
/// Keys and values are `u64`, as in the paper's evaluation (8-byte keys and
/// values). Implementations are safe to share across threads (`Sync`) and
/// all operations are linearizable.
pub trait ConcurrentMap: Send + Sync {
    /// Insert `(key, value)`. Returns `false` if `key` was already present
    /// (the map is unchanged in that case).
    fn insert(&self, key: u64, value: u64) -> bool;
    /// Remove `key`. Returns `false` if it was not present.
    fn remove(&self, key: u64) -> bool;
    /// Look up `key`.
    fn get(&self, key: u64) -> Option<u64>;
    /// A short name for reports (e.g. `"dlist"`).
    fn name(&self) -> &'static str;
}

/// Mix a key into a pseudo-random u64 (splitmix64 finalizer). Used for treap
/// priorities and hash-table bucket selection.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::ConcurrentMap;
    use std::collections::BTreeMap;

    /// Single-threaded differential test against a BTreeMap oracle.
    pub fn oracle_check<M: ConcurrentMap>(map: &M, ops: usize, key_range: u64, seed: u64) {
        let mut oracle = BTreeMap::new();
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..ops {
            let k = rng() % key_range;
            let v = i as u64;
            match rng() % 3 {
                0 => {
                    let expect = !oracle.contains_key(&k);
                    if expect {
                        oracle.insert(k, v);
                    }
                    assert_eq!(
                        map.insert(k, v),
                        expect,
                        "insert({k}) disagreed with oracle at op {i}"
                    );
                }
                1 => {
                    let expect = oracle.remove(&k).is_some();
                    assert_eq!(
                        map.remove(k),
                        expect,
                        "remove({k}) disagreed with oracle at op {i}"
                    );
                }
                _ => {
                    assert_eq!(
                        map.get(k),
                        oracle.get(&k).copied(),
                        "get({k}) disagreed with oracle at op {i}"
                    );
                }
            }
        }
        // Final sweep: every oracle key must be present with the right value.
        for (k, v) in &oracle {
            assert_eq!(map.get(*k), Some(*v), "final sweep mismatch at key {k}");
        }
    }

    /// Multi-threaded smoke test: per-key-partition determinism.
    ///
    /// Each thread owns a disjoint key partition (key % threads == tid), so
    /// per-thread sequential semantics must hold exactly even under full
    /// concurrency.
    pub fn partition_stress<M: ConcurrentMap>(map: &M, threads: u64, ops: usize) {
        std::thread::scope(|s| {
            for t in 0..threads {
                let map = &*map;
                s.spawn(move || {
                    let mut present = std::collections::BTreeMap::new();
                    let mut state = (t + 1) * 0x9E37_79B9;
                    let mut rng = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state
                    };
                    for i in 0..ops {
                        let k = (rng() % 512) * threads + t;
                        let v = i as u64;
                        match rng() % 3 {
                            0 => {
                                let expect = !present.contains_key(&k);
                                if expect {
                                    present.insert(k, v);
                                }
                                assert_eq!(map.insert(k, v), expect, "t{t} insert({k}) op {i}");
                            }
                            1 => {
                                let expect = present.remove(&k).is_some();
                                assert_eq!(map.remove(k), expect, "t{t} remove({k}) op {i}");
                            }
                            _ => {
                                assert_eq!(
                                    map.get(k),
                                    present.get(&k).copied(),
                                    "t{t} get({k}) op {i}"
                                );
                            }
                        }
                    }
                    for (k, v) in &present {
                        assert_eq!(map.get(*k), Some(*v), "t{t} final sweep key {k}");
                    }
                });
            }
        });
    }

    /// Process-wide lock serializing tests that touch the global lock mode:
    /// switching modes while another test's operations are in flight is
    /// unsupported (as in the paper's library), so mode-sensitive tests must
    /// not overlap.
    static MODE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Run a closure in both lock modes, restoring lock-free afterwards.
    pub fn both_modes(test: impl Fn()) {
        use flock_core::{set_lock_mode, LockMode};
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for mode in [LockMode::LockFree, LockMode::Blocking] {
            set_lock_mode(mode);
            test();
        }
        set_lock_mode(LockMode::LockFree);
    }

    /// Run a closure that relies on the (default) lock-free mode while
    /// holding the same exclusion as [`both_modes`].
    pub fn exclusive(test: impl Fn()) {
        let _guard = MODE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        flock_core::set_lock_mode(flock_core::LockMode::LockFree);
        test();
    }
}
