//! # flock-ds — concurrent data structures built on Flock lock-free locks
//!
//! Every structure here is written the way a systems programmer would write
//! it with fine-grained optimistic locks — traverse without locks, lock a
//! small neighborhood, validate, mutate — and inherits lock-freedom (or
//! classic blocking behavior) from `flock-core`'s runtime lock mode. This is
//! the paper's §7 collection:
//!
//! | module | structure | paper name |
//! |---|---|---|
//! | [`dlist`] | sorted doubly-linked list (Algorithm 1) | `dlist` |
//! | [`lazylist`] | sorted singly-linked lazy list | `lazylist` |
//! | [`hashtable`] | separate-chaining hash table | `hashtable` |
//! | [`leaftree`] | leaf-oriented unbalanced BST | `leaftree` |
//! | [`leaftreap`] | leaf-oriented treap, multi-entry leaves | `leaftreap` |
//! | [`abtree`] | (a,b)-tree | `abtree` |
//! | [`arttree`] | adaptive radix tree | `arttree` |
//!
//! All implement [`flock_api::Map`] **generically over `(K, V)`**: keys are
//! anything `Clone + Ord + Hash` (the radix tree additionally needs a
//! [`arttree::RadixKey`] image; the hash table hashes through a pluggable
//! [`hashtable::FlockHashBuilder`]-style seam), and values go through the
//! `ValueRepr` layer — inline when they fit the 48-bit packed payload,
//! heap-indirected via `flock_core::Indirect<T>` when they don't. The
//! paper's evaluation shape `Map<u64, u64>` is just one instantiation; the
//! conformance suite also pins `(u32, u16)` and `(u64, Indirect<[u64; 4]>)`
//! for every structure.
//!
//! All seven maintain a striped element counter (`flock_sync::ApproxLen`)
//! behind `Map::len_approx` — bumped *outside* the thunks (a helped thunk
//! replays, so an in-thunk counter bump would double-count; exactly one
//! caller observes success per applied operation). All seven also override
//! `Map::update` with a **native in-place atomic update**
//! (`has_atomic_update() == true`): each value lives in a per-node
//! `flock_core::ValueSlot` read-modify-written inside the thunk of the
//! lock whose holder could remove the node — see each module's `update`
//! docs for the owning lock and EXPERIMENTS.md §7 for the placement table.
//!
//! Update operations use `try_lock`'s typed result to separate their retry
//! reasons: `None` (lock busy) backs off before retrying, `Some(false)`
//! (neighborhood validation failed) re-traverses immediately.

#![warn(missing_docs)]

pub mod abtree;
pub mod arttree;
pub mod dlist;
pub mod hashtable;
pub mod lazylist;
pub mod leaftreap;
pub mod leaftree;

pub use arttree::RadixKey;
pub use flock_api::Map;
pub use hashtable::FlockHashBuilder;

/// Mix a key into a pseudo-random u64 (splitmix64 finalizer). Used for the
/// default hasher's finalizer and the workload's key sparsifier.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
