//! Leaf-oriented balanced BST (treap) with multi-entry leaves — the paper's
//! `leaftreap` (§7): "a leaf-oriented balanced BST with an optimization that
//! stores a batch of key-value pairs (up to 2 cachelines worth) in each leaf
//! to minimize height".
//!
//! * **Leaves** hold up to [`LEAF_CAP`] sorted key-value pairs and are
//!   immutable: every modification copies the leaf and swings the parent's
//!   child pointer (one idempotent store) — so readers always see a
//!   consistent batch.
//! * **Internal (routing) nodes** carry a routing key and a *priority*
//!   (a hash of the key). Max-heap order on priorities makes the tree a
//!   treap: expected `O(log n)` height regardless of insertion order.
//! * **Rebalancing**: when a leaf split introduces a routing node whose
//!   priority beats its parent's, a separate fix-up loop rotates it upward,
//!   one rotation at a time, each under grandparent→parent→child locks
//!   (ancestor-first, so the simply-nested decreasing-order discipline the
//!   lock-freedom theorem needs is respected). Rotations are copy-on-write:
//!   fresh nodes replace the rotated pair, old ones are retired.

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp, UpdateOnce};
use flock_sync::Backoff;

use crate::mix64;

/// Entries per leaf: 2 cachelines of 8-byte keys / 8-byte values.
pub const LEAF_CAP: usize = 8;

const KIND_INTERNAL: u8 = 0;
const KIND_LEAF: u8 = 1;

struct Node {
    left: Mutable<*mut Node>,
    right: Mutable<*mut Node>,
    removed: UpdateOnce<bool>,
    lock: Lock,
    /// Routing key (internal) — leaves route by their first key.
    key: u64,
    /// Treap priority (internal only).
    prio: u64,
    kind: u8,
    is_root: bool,
    /// Sorted batch (leaves only); immutable after construction.
    len: usize,
    keys: [u64; LEAF_CAP],
    vals: [u64; LEAF_CAP],
}

impl Node {
    fn internal(key: u64, left: *mut Node, right: *mut Node) -> Self {
        Self {
            left: Mutable::new(left),
            right: Mutable::new(right),
            removed: UpdateOnce::new(false),
            lock: Lock::new(),
            key,
            prio: mix64(key),
            kind: KIND_INTERNAL,
            is_root: false,
            len: 0,
            keys: [0; LEAF_CAP],
            vals: [0; LEAF_CAP],
        }
    }

    fn leaf(entries: &[(u64, u64)]) -> Self {
        debug_assert!(entries.len() <= LEAF_CAP);
        let mut keys = [0; LEAF_CAP];
        let mut vals = [0; LEAF_CAP];
        for (i, (k, v)) in entries.iter().enumerate() {
            keys[i] = *k;
            vals[i] = *v;
        }
        Self {
            left: Mutable::new(std::ptr::null_mut()),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new(),
            key: 0,
            prio: 0,
            kind: KIND_LEAF,
            is_root: false,
            len: entries.len(),
            keys,
            vals,
        }
    }

    #[inline]
    fn child_for(&self, k: u64) -> &Mutable<*mut Node> {
        if self.is_root || k < self.key {
            &self.left
        } else {
            &self.right
        }
    }

    /// Position of `k` in this leaf's batch, if present.
    #[inline]
    fn find(&self, k: u64) -> Option<usize> {
        self.keys[..self.len].iter().position(|&x| x == k)
    }

    /// The batch as a vector of pairs.
    fn entries(&self) -> Vec<(u64, u64)> {
        (0..self.len)
            .map(|i| (self.keys[i], self.vals[i]))
            .collect()
    }
}

/// Leaf-oriented treap map with batched leaves.
pub struct LeafTreap {
    root: *mut Node,
}

// SAFETY: mutation via Flock locks + epoch reclamation; root immutable.
unsafe impl Send for LeafTreap {}
unsafe impl Sync for LeafTreap {}

impl Default for LeafTreap {
    fn default() -> Self {
        Self::new()
    }
}

impl LeafTreap {
    /// An empty treap.
    pub fn new() -> Self {
        let empty = flock_epoch::alloc(Node::leaf(&[]));
        let mut root = Node::internal(0, empty, std::ptr::null_mut());
        root.is_root = true;
        root.prio = u64::MAX; // root never loses a priority comparison
        Self {
            root: flock_epoch::alloc(root),
        }
    }

    /// Lock-free search: `(grandparent, parent, leaf)`; grandparent is null
    /// when the parent is the root.
    fn search(&self, k: u64) -> (*mut Node, *mut Node, *mut Node) {
        let mut g = std::ptr::null_mut();
        let mut p = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut c = unsafe { (*p).child_for(k).load() };
        while unsafe { &*c }.kind == KIND_INTERNAL {
            g = p;
            p = c;
            c = unsafe { &*c }.child_for(k).load();
        }
        (g, p, c)
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(k).is_some() {
                return false;
            }
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                let cell = p.child_for(k);
                if p.removed.load() || cell.load() != sp_l.ptr() {
                    return false; // validate
                }
                let mut entries = l.entries();
                let pos = entries.partition_point(|&(ek, _)| ek < k);
                entries.insert(pos, (k, v));
                if entries.len() <= LEAF_CAP {
                    let newl = flock_core::alloc(move || Node::leaf(&entries));
                    cell.store(newl);
                } else {
                    // Split into two half-leaves under a new routing node.
                    let mid = entries.len() / 2;
                    let split_key = entries[mid].0;
                    let lo = entries[..mid].to_vec();
                    let hi = entries[mid..].to_vec();
                    let newi = flock_core::alloc(move || {
                        let left = flock_epoch::alloc(Node::leaf(&lo));
                        let right = flock_epoch::alloc(Node::leaf(&hi));
                        Node::internal(split_key, left, right)
                    });
                    cell.store(newi);
                }
                // SAFETY: old leaf unlinked above; idempotent retire.
                unsafe { flock_core::retire(sp_l.ptr()) };
                true
            });
            match outcome {
                Some(true) => {
                    // A split may have violated heap order; bubble the new
                    // routing node up. Balance repair is separate from the
                    // insert's linearization point.
                    self.fix_priorities(k);
                    return true;
                }
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy
            }
        }
    }

    /// Restore the treap's max-heap priority order along `k`'s search path
    /// by rotating violating nodes upward, one COW rotation at a time.
    fn fix_priorities(&self, k: u64) {
        let mut backoff = Backoff::new();
        'outer: loop {
            // Find the first violation (child.prio > parent.prio) on the
            // path; the root's +inf priority stops the bubble at the top.
            let mut g = self.root;
            // SAFETY: pinned by callers of insert; nodes epoch-reclaimed.
            let mut p = unsafe { (*g).child_for(k).load() };
            if unsafe { &*p }.kind != KIND_INTERNAL {
                return;
            }
            loop {
                let c = unsafe { &*p }.child_for(k).load();
                // SAFETY: pinned.
                let c_ref = unsafe { &*c };
                if c_ref.kind != KIND_INTERNAL {
                    return; // reached the leaf: no violations on this path
                }
                if c_ref.prio > unsafe { &*p }.prio {
                    // Whether or not the rotation succeeds, re-walk: the
                    // neighborhood may have changed under us. Busy locks
                    // mean another repairer is in there — ease off first.
                    if self.rotate_up(g, p, c).is_none() {
                        backoff.snooze();
                    }
                    continue 'outer;
                }
                g = p;
                p = c;
            }
        }
    }

    /// One COW rotation lifting `c` above `p` under `g` (all validated under
    /// g → p → c locks). `None` = a lock on the path was busy;
    /// `Some(rotated)` otherwise.
    fn rotate_up(&self, g: *mut Node, p: *mut Node, c: *mut Node) -> Option<bool> {
        let (sp_g, sp_p, sp_c) = (Sp(g), Sp(p), Sp(c));
        // SAFETY: pinned by fix_priorities' caller.
        let outcome = unsafe { &*g }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let p_ref = unsafe { sp_p.as_ref() };
            p_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let c_ref2 = unsafe { sp_c.as_ref() };
                c_ref2.lock.try_lock(move || {
                    // SAFETY: as above.
                    let g = unsafe { sp_g.as_ref() };
                    let p = unsafe { sp_p.as_ref() };
                    let c = unsafe { sp_c.as_ref() };
                    if g.removed.load() || p.removed.load() || c.removed.load() {
                        return false;
                    }
                    let gcell = if g.left.load() == sp_p.ptr() {
                        &g.left
                    } else if g.right.load() == sp_p.ptr() {
                        &g.right
                    } else {
                        return false;
                    };
                    let c_is_left = if p.left.load() == sp_c.ptr() {
                        true
                    } else if p.right.load() == sp_c.ptr() {
                        false
                    } else {
                        return false;
                    };
                    if c.prio <= p.prio {
                        return false; // already fixed by someone else
                    }
                    let (pk, ck) = (p.key, c.key);
                    let (cl, cr) = (c.left.load(), c.right.load());
                    let p_other = if c_is_left {
                        p.right.load()
                    } else {
                        p.left.load()
                    };
                    let new_top = flock_core::alloc(move || {
                        if c_is_left {
                            // Right rotation: c' = (ck, c.left, p'),
                            // p' = (pk, c.right, p.right).
                            let new_p = flock_epoch::alloc(Node::internal(pk, cr, p_other));
                            Node::internal(ck, cl, new_p)
                        } else {
                            // Left rotation: c' = (ck, p', c.right),
                            // p' = (pk, p.left, c.left).
                            let new_p = flock_epoch::alloc(Node::internal(pk, p_other, cl));
                            Node::internal(ck, new_p, cr)
                        }
                    });
                    p.removed.store(true);
                    c.removed.store(true);
                    gcell.store(new_top);
                    // SAFETY: both replaced above; idempotent retires.
                    unsafe {
                        flock_core::retire(sp_p.ptr());
                        flock_core::retire(sp_c.ptr());
                    }
                    true
                })
            })
        });
        // Flatten the three lock layers: any missing layer is "busy".
        match outcome {
            Some(Some(Some(rotated))) => Some(rotated),
            _ => None,
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (gparent, parent, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(k).is_none() {
                return false;
            }
            let outcome = if leaf_ref.len > 1 || gparent.is_null() {
                // Shrink the batch (COW); also covers the directly-under-root
                // case, where an empty leaf may remain.
                let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
                // SAFETY: epoch-pinned.
                unsafe { &*parent }
                    .lock
                    .try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        let cell = p.child_for(k);
                        if p.removed.load() || cell.load() != sp_l.ptr() {
                            return false;
                        }
                        let Some(pos) = l.find(k) else { return false };
                        let mut entries = l.entries();
                        entries.remove(pos);
                        let newl = flock_core::alloc(move || Node::leaf(&entries));
                        cell.store(newl);
                        // SAFETY: unlinked above; idempotent retire.
                        unsafe { flock_core::retire(sp_l.ptr()) };
                        true
                    })
                    .map(Some)
            } else {
                // Last entry of a non-root leaf: splice leaf + parent out.
                let (sp_g, sp_p, sp_l) = (Sp(gparent), Sp(parent), Sp(leaf));
                // SAFETY: epoch-pinned.
                unsafe { &*gparent }.lock.try_lock(move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    p.lock.try_lock(move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        if l.find(k).is_none() {
                            return false;
                        }
                        let gcell = if g.left.load() == sp_p.ptr() {
                            &g.left
                        } else if g.right.load() == sp_p.ptr() {
                            &g.right
                        } else {
                            return false;
                        };
                        let sibling = if p.left.load() == sp_l.ptr() {
                            p.right.load()
                        } else if p.right.load() == sp_l.ptr() {
                            p.left.load()
                        } else {
                            return false;
                        };
                        p.removed.store(true);
                        gcell.store(sibling);
                        // SAFETY: both unlinked above; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => return true,
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // a lock on the path was busy
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let (_, _, leaf) = self.search(k);
        // SAFETY: epoch-pinned.
        let l = unsafe { &*leaf };
        l.find(k).map(|i| l.vals[i])
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count((*self.root).left.load()) }
    }

    /// Is the treap empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            node.len
        } else {
            unsafe { Self::count(node.left.load()) + Self::count(node.right.load()) }
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.root).left.load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node, out: &mut Vec<(u64, u64)>) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            out.extend(node.entries());
        } else {
            unsafe {
                Self::walk(node.left.load(), out);
                Self::walk(node.right.load(), out);
            }
        }
    }

    /// Quiescent invariant check: BST routing, heap priority order, sorted
    /// leaf batches within routing bounds.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.root).left.load(), None, None, u64::MAX);
        }
    }

    unsafe fn check(n: *mut Node, lo: Option<u64>, hi: Option<u64>, max_prio: u64) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            let e = node.entries();
            assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "unsorted leaf batch");
            for (k, _) in e {
                if let Some(lo) = lo {
                    assert!(k >= lo, "leaf key below bound");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "leaf key above bound");
                }
            }
        } else {
            assert!(!node.removed.load(), "removed routing node reachable");
            assert!(node.prio <= max_prio, "treap heap order violated");
            if let Some(lo) = lo {
                assert!(node.key >= lo);
            }
            if let Some(hi) = hi {
                assert!(node.key <= hi);
            }
            unsafe {
                Self::check(node.left.load(), lo, Some(node.key), node.prio);
                Self::check(node.right.load(), Some(node.key), hi, node.prio);
            }
        }
    }
}

impl Drop for LeafTreap {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free(n: *mut Node) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                if (*n).kind == KIND_INTERNAL {
                    free((*n).left.load());
                    free((*n).right.load());
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.root).left.load());
            flock_epoch::free_now(self.root);
        }
    }
}

impl Map<u64, u64> for LeafTreap {
    fn insert(&self, key: u64, value: u64) -> bool {
        LeafTreap::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        LeafTreap::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        LeafTreap::get(self, key)
    }
    fn name(&self) -> &'static str {
        "leaftreap"
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let t = LeafTreap::new();
            assert!(t.insert(5, 50));
            assert!(!t.insert(5, 51));
            assert!(t.insert(3, 30));
            assert!(t.insert(8, 80));
            assert_eq!(t.collect(), vec![(3, 30), (5, 50), (8, 80)]);
            assert!(t.remove(5));
            assert_eq!(t.get(5), None);
            assert_eq!(t.get(8), Some(80));
            t.check_invariants();
        });
    }

    #[test]
    fn splits_and_heap_order() {
        testutil::both_modes(|| {
            let t = LeafTreap::new();
            // Sequential keys are the adversarial case for an unbalanced
            // tree; the treap must stay heap-ordered and balanced.
            for k in 0..512 {
                assert!(t.insert(k, k * 2));
            }
            assert_eq!(t.len(), 512);
            for k in 0..512 {
                assert_eq!(t.get(k), Some(k * 2));
            }
            t.check_invariants();
        });
    }

    #[test]
    fn expected_logarithmic_depth() {
        testutil::exclusive(expected_logarithmic_depth_body);
    }

    fn expected_logarithmic_depth_body() {
        let t = LeafTreap::new();
        for k in 0..4096 {
            t.insert(k, k);
        }
        unsafe fn depth(n: *mut Node) -> usize {
            // SAFETY: quiescent per caller.
            let node = unsafe { &*n };
            if node.kind == KIND_LEAF {
                1
            } else {
                1 + unsafe { depth(node.left.load()).max(depth(node.right.load())) }
            }
        }
        // SAFETY: quiescent single-threaded test.
        let d = unsafe { depth((*t.root).left.load()) };
        // 4096/8 = 512+ leaves; a treap's expected depth is ~2·ln(512) ≈ 13.
        // A sorted-insert degenerate tree would be ~512. Allow generous slack.
        assert!(d < 64, "treap degenerated: depth {d}");
        t.check_invariants();
    }

    #[test]
    fn drain_and_refill() {
        testutil::both_modes(|| {
            let t = LeafTreap::new();
            for k in 0..256 {
                assert!(t.insert(k, k));
            }
            for k in 0..256 {
                assert!(t.remove(k), "remove {k}");
            }
            assert!(t.is_empty());
            for k in (0..256).rev() {
                assert!(t.insert(k, k + 1));
            }
            assert_eq!(t.len(), 256);
            t.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t = LeafTreap::new();
            testutil::oracle_check(&t, 4_000, 256, 11);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t = LeafTreap::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }
}
