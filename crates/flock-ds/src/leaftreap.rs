//! Leaf-oriented balanced BST (treap) with multi-entry leaves — the paper's
//! `leaftreap` (§7): "a leaf-oriented balanced BST with an optimization that
//! stores a batch of key-value pairs (up to 2 cachelines worth) in each leaf
//! to minimize height". Generic over `(K, V)`.
//!
//! * **Leaves** hold up to [`LEAF_CAP`] sorted key-value pairs and are
//!   immutable: every modification copies the leaf and swings the parent's
//!   child pointer (one idempotent store) — so readers always see a
//!   consistent batch. Fat values ride inside the copied batch (the batch
//!   is part of the epoch-reclaimed node).
//! * **Internal (routing) nodes** carry a routing key and a *priority*
//!   (a deterministic hash of the key). Max-heap order on priorities makes
//!   the tree a treap: expected `O(log n)` height regardless of insertion
//!   order.
//! * **Rebalancing**: when a leaf split introduces a routing node whose
//!   priority beats its parent's, a separate fix-up loop rotates it upward,
//!   one rotation at a time, each under grandparent→parent→child locks
//!   (ancestor-first, so the simply-nested decreasing-order discipline the
//!   lock-freedom theorem needs is respected). Rotations are copy-on-write:
//!   fresh nodes replace the rotated pair, old ones are retired.

use std::hash::BuildHasher;
use std::ops::Bound;

use flock_api::{Key, Map, OrderedMap, Value, key_above_lower, key_below_upper, key_in_range};
use flock_core::{Admission, Lock, Mutable, Sp, UpdateOnce, ValueSlot};
use flock_sync::{ApproxLen, Backoff};

use crate::hashtable::FlockHashBuilder;

/// Entries per leaf: 2 cachelines of 8-byte keys / 8-byte values.
pub const LEAF_CAP: usize = 8;

const KIND_INTERNAL: u8 = 0;
const KIND_LEAF: u8 = 1;

/// Deterministic treap priority for a routing key.
fn prio_of<K: Key>(k: &K) -> u64 {
    FlockHashBuilder.hash_one(k)
}

struct Node<K: Key, V: Value> {
    left: Mutable<*mut Node<K, V>>,
    right: Mutable<*mut Node<K, V>>,
    removed: UpdateOnce<bool>,
    lock: Lock,
    /// Routing key (internals; `None` on the root and on leaves — leaves
    /// are located by search position, not key).
    key: Option<K>,
    /// Treap priority (internal only).
    prio: u64,
    kind: u8,
    is_root: bool,
    /// Sorted batch (leaves only). The *key set* is immutable after
    /// construction (membership changes copy the leaf), but each entry's
    /// value lives in a [`ValueSlot`] mutable in place under the leaf's
    /// **parent** lock — native `update` without copying the batch.
    entries: Vec<(K, ValueSlot<V>)>,
}

impl<K: Key, V: Value> Node<K, V> {
    fn internal(
        key: K,
        left: *mut Node<K, V>,
        right: *mut Node<K, V>,
        admission: Admission,
    ) -> Self {
        let prio = prio_of(&key);
        Self {
            left: Mutable::new(left),
            right: Mutable::new(right),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: Some(key),
            prio,
            kind: KIND_INTERNAL,
            is_root: false,
            entries: Vec::new(),
        }
    }

    fn root(left: *mut Node<K, V>, admission: Admission) -> Self {
        Self {
            left: Mutable::new(left),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: None,
            prio: u64::MAX, // the root never loses a priority comparison
            kind: KIND_INTERNAL,
            is_root: true,
            entries: Vec::new(),
        }
    }

    fn leaf(entries: &[(K, V)], admission: Admission) -> Self {
        debug_assert!(entries.len() <= LEAF_CAP);
        Self {
            left: Mutable::new(std::ptr::null_mut()),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new_with(admission),
            key: None,
            prio: 0,
            kind: KIND_LEAF,
            is_root: false,
            entries: entries
                .iter()
                .map(|(k, v)| (k.clone(), ValueSlot::new(v.clone())))
                .collect(),
        }
    }

    #[inline]
    fn child_for(&self, k: &K) -> &Mutable<*mut Node<K, V>> {
        if self.is_root || self.key.as_ref().is_some_and(|x| k < x) {
            &self.left
        } else {
            &self.right
        }
    }

    /// Position of `k` in this leaf's batch, if present.
    #[inline]
    fn find(&self, k: &K) -> Option<usize> {
        self.entries.iter().position(|(x, _)| x == k)
    }

    /// Value snapshot of the batch (for copy-on-write paths). Inside a
    /// thunk every slot read is committed, so all runners copy the same
    /// batch.
    fn entries_snapshot(&self) -> Vec<(K, V)> {
        self.entries
            .iter()
            .map(|(k, s)| (k.clone(), s.read()))
            .collect()
    }
}

/// Leaf-oriented treap map with batched leaves.
pub struct LeafTreap<K: Key, V: Value> {
    root: *mut Node<K, V>,
    /// Admission policy stamped on every node lock this treap creates.
    admission: Admission,
    /// Maintained element count backing `len_approx`.
    count: ApproxLen,
}

// SAFETY: mutation via Flock locks + epoch reclamation; root immutable.
unsafe impl<K: Key, V: Value> Send for LeafTreap<K, V> {}
unsafe impl<K: Key, V: Value> Sync for LeafTreap<K, V> {}

impl<K: Key, V: Value> Default for LeafTreap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key, V: Value> LeafTreap<K, V> {
    /// An empty treap.
    pub fn new() -> Self {
        Self::with_admission(flock_core::default_admission())
    }

    /// An empty treap whose node locks all use `admission`
    /// (see [`flock_core::admission`]).
    pub fn with_admission(admission: Admission) -> Self {
        let empty = flock_epoch::alloc(Node::leaf(&[], admission));
        Self {
            root: flock_epoch::alloc(Node::root(empty, admission)),
            count: ApproxLen::new(),
            admission,
        }
    }

    /// Lock-free search: `(grandparent, parent, leaf)`; grandparent is null
    /// when the parent is the root.
    #[allow(clippy::type_complexity)]
    fn search(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>, *mut Node<K, V>) {
        let mut g = std::ptr::null_mut();
        let mut p = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut c = unsafe { (*p).child_for(k).load() };
        while unsafe { &*c }.kind == KIND_INTERNAL {
            g = p;
            p = c;
            c = unsafe { &*c }.child_for(k).load();
        }
        (g, p, c)
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let admission = self.admission;
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_some() {
                return false;
            }
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                let cell = p.child_for(&k2);
                if p.removed.load() || cell.load() != sp_l.ptr() {
                    return false; // validate
                }
                let mut entries = l.entries_snapshot();
                let pos = entries.partition_point(|(ek, _)| ek < &k2);
                entries.insert(pos, (k2.clone(), v2.clone()));
                if entries.len() <= LEAF_CAP {
                    let newl = flock_core::alloc(move || Node::leaf(&entries, admission));
                    cell.store(newl);
                } else {
                    // Split into two half-leaves under a new routing node.
                    // Three separate idempotent allocs: nesting the leaf
                    // allocations inside the routing node's init closure
                    // would leak both halves on every replayed run.
                    let mid = entries.len() / 2;
                    let split_key = entries[mid].0.clone();
                    let lo = entries[..mid].to_vec();
                    let hi = entries[mid..].to_vec();
                    let left = flock_core::alloc(|| Node::leaf(&lo, admission));
                    let right = flock_core::alloc(|| Node::leaf(&hi, admission));
                    let newi = flock_core::alloc(move || {
                        Node::internal(split_key.clone(), left, right, admission)
                    });
                    cell.store(newi);
                }
                // SAFETY: old leaf unlinked above; idempotent retire.
                unsafe { flock_core::retire(sp_l.ptr()) };
                true
            });
            match outcome {
                Some(true) => {
                    // A split may have violated heap order; bubble the new
                    // routing node up. Balance repair is separate from the
                    // insert's linearization point.
                    self.fix_priorities(&k);
                    self.count.inc();
                    return true;
                }
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy
            }
        }
    }

    /// Restore the treap's max-heap priority order along `k`'s search path
    /// by rotating violating nodes upward, one COW rotation at a time.
    fn fix_priorities(&self, k: &K) {
        let mut backoff = Backoff::new();
        'outer: loop {
            // Find the first violation (child.prio > parent.prio) on the
            // path; the root's +inf priority stops the bubble at the top.
            let mut g = self.root;
            // SAFETY: pinned by callers of insert; nodes epoch-reclaimed.
            let mut p = unsafe { (*g).child_for(k).load() };
            if unsafe { &*p }.kind != KIND_INTERNAL {
                return;
            }
            loop {
                let c = unsafe { &*p }.child_for(k).load();
                // SAFETY: pinned.
                let c_ref = unsafe { &*c };
                if c_ref.kind != KIND_INTERNAL {
                    return; // reached the leaf: no violations on this path
                }
                if c_ref.prio > unsafe { &*p }.prio {
                    // Whether or not the rotation succeeds, re-walk: the
                    // neighborhood may have changed under us. Busy locks
                    // mean another repairer is in there — ease off first.
                    if self.rotate_up(g, p, c).is_none() {
                        backoff.snooze();
                    }
                    continue 'outer;
                }
                g = p;
                p = c;
            }
        }
    }

    /// One COW rotation lifting `c` above `p` under `g` (all validated under
    /// g → p → c locks). `None` = a lock on the path was busy;
    /// `Some(rotated)` otherwise.
    fn rotate_up(
        &self,
        g: *mut Node<K, V>,
        p: *mut Node<K, V>,
        c: *mut Node<K, V>,
    ) -> Option<bool> {
        let admission = self.admission;
        let (sp_g, sp_p, sp_c) = (Sp(g), Sp(p), Sp(c));
        // SAFETY: pinned by fix_priorities' caller.
        let outcome = unsafe { &*g }.lock.try_lock(move || {
            // SAFETY: thunk runners hold epoch protection.
            let p_ref = unsafe { sp_p.as_ref() };
            p_ref.lock.try_lock(move || {
                // SAFETY: as above.
                let c_ref2 = unsafe { sp_c.as_ref() };
                c_ref2.lock.try_lock(move || {
                    // SAFETY: as above.
                    let g = unsafe { sp_g.as_ref() };
                    let p = unsafe { sp_p.as_ref() };
                    let c = unsafe { sp_c.as_ref() };
                    if g.removed.load() || p.removed.load() || c.removed.load() {
                        return false;
                    }
                    let gcell = if g.left.load() == sp_p.ptr() {
                        &g.left
                    } else if g.right.load() == sp_p.ptr() {
                        &g.right
                    } else {
                        return false;
                    };
                    let c_is_left = if p.left.load() == sp_c.ptr() {
                        true
                    } else if p.right.load() == sp_c.ptr() {
                        false
                    } else {
                        return false;
                    };
                    if c.prio <= p.prio {
                        return false; // already fixed by someone else
                    }
                    let pk = p.key.clone().expect("non-root internal has a key");
                    let ck = c.key.clone().expect("non-root internal has a key");
                    let (cl, cr) = (c.left.load(), c.right.load());
                    let p_other = if c_is_left {
                        p.right.load()
                    } else {
                        p.left.load()
                    };
                    // Two separate idempotent allocs (see insert's split):
                    // a nested plain alloc would leak `new_p` per replay.
                    let pk2 = pk.clone();
                    let new_p = flock_core::alloc(move || {
                        if c_is_left {
                            // Right rotation: p' = (pk, c.right, p.right).
                            Node::internal(pk2.clone(), cr, p_other, admission)
                        } else {
                            // Left rotation: p' = (pk, p.left, c.left).
                            Node::internal(pk2.clone(), p_other, cl, admission)
                        }
                    });
                    let new_top = flock_core::alloc(move || {
                        if c_is_left {
                            // c' = (ck, c.left, p').
                            Node::internal(ck.clone(), cl, new_p, admission)
                        } else {
                            // c' = (ck, p', c.right).
                            Node::internal(ck.clone(), new_p, cr, admission)
                        }
                    });
                    p.removed.store(true);
                    c.removed.store(true);
                    gcell.store(new_top);
                    // SAFETY: both replaced above; idempotent retires.
                    unsafe {
                        flock_core::retire(sp_p.ptr());
                        flock_core::retire(sp_c.ptr());
                    }
                    true
                })
            })
        });
        // Flatten the three lock layers: any missing layer is "busy".
        match outcome {
            Some(Some(Some(rotated))) => Some(rotated),
            _ => None,
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: K) -> bool {
        let _g = flock_epoch::pin();
        let admission = self.admission;
        let mut backoff = Backoff::new();
        loop {
            let (gparent, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_none() {
                return false;
            }
            let outcome = if leaf_ref.entries.len() > 1 || gparent.is_null() {
                // Shrink the batch (COW); also covers the directly-under-root
                // case, where an empty leaf may remain.
                let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
                let k2 = k.clone();
                // SAFETY: epoch-pinned.
                unsafe { &*parent }
                    .lock
                    .try_lock(move || {
                        // SAFETY: thunk runners hold epoch protection.
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        let cell = p.child_for(&k2);
                        if p.removed.load() || cell.load() != sp_l.ptr() {
                            return false;
                        }
                        let Some(pos) = l.find(&k2) else { return false };
                        let mut entries = l.entries_snapshot();
                        entries.remove(pos);
                        let newl = flock_core::alloc(move || Node::leaf(&entries, admission));
                        cell.store(newl);
                        // SAFETY: unlinked above; idempotent retire.
                        unsafe { flock_core::retire(sp_l.ptr()) };
                        true
                    })
                    .map(Some)
            } else {
                // Last entry of a non-root leaf: splice leaf + parent out.
                let (sp_g, sp_p, sp_l) = (Sp(gparent), Sp(parent), Sp(leaf));
                let k2 = k.clone();
                // SAFETY: epoch-pinned.
                unsafe { &*gparent }.lock.try_lock(move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    let k3 = k2.clone();
                    p.lock.try_lock(move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        let l = unsafe { sp_l.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        if l.find(&k3).is_none() {
                            return false;
                        }
                        let gcell = if g.left.load() == sp_p.ptr() {
                            &g.left
                        } else if g.right.load() == sp_p.ptr() {
                            &g.right
                        } else {
                            return false;
                        };
                        let sibling = if p.left.load() == sp_l.ptr() {
                            p.right.load()
                        } else if p.right.load() == sp_l.ptr() {
                            p.left.load()
                        } else {
                            return false;
                        };
                        p.removed.store(true);
                        gcell.store(sibling);
                        // SAFETY: both unlinked above; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => {
                    self.count.dec();
                    return true;
                }
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // a lock on the path was busy
            }
        }
    }

    /// Lock-free search with plain `Acquire` loads: `(parent, leaf)`.
    /// Used by the optimistic read paths, which never log their loads.
    fn search_acquire(&self, k: &K) -> (*mut Node<K, V>, *mut Node<K, V>) {
        let mut p = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut c = unsafe { (*p).child_for(k).load_acquire() };
        while unsafe { &*c }.kind == KIND_INTERNAL {
            p = c;
            c = unsafe { &*c }.child_for(k).load_acquire();
        }
        (p, c)
    }

    /// Wait-free lookup. Optimistic first: an unlogged `Acquire` descent,
    /// the value slot read bracketed by the leaf's **parent** lock version
    /// (every batch replacement *and* every in-place `update` of this
    /// leaf's slots runs under that lock; rotations mark the old parent
    /// `removed` inside its own critical section). After
    /// [`flock_core::OPTIMISTIC_READ_ATTEMPTS`] failed validations — or
    /// inside a thunk, where unlogged loads would desynchronize helpers —
    /// falls back to the committed-read descent.
    pub fn get(&self, k: K) -> Option<V> {
        let _g = flock_epoch::pin();
        flock_core::read_validated(
            || {
                let (parent, leaf) = self.search_acquire(&k);
                // SAFETY: epoch-pinned.
                let (p, l) = unsafe { (&*parent, &*leaf) };
                let v0 = p.lock.version()?;
                if p.removed.load() || p.child_for(&k).load_acquire() != leaf {
                    return None;
                }
                let v = l.find(&k).map(|i| l.entries[i].1.read_acquire());
                p.lock.validate(v0).then_some(v)
            },
            || {
                let (_, _, leaf) = self.search(&k);
                // SAFETY: epoch-pinned.
                let l = unsafe { &*leaf };
                l.find(&k).map(|i| l.entries[i].1.read())
            },
        )
    }

    /// Presence check without materializing the value — no slot read, no
    /// decode, no clone (for `Indirect` fat values `get` clones the boxed
    /// payload just to drop it). A leaf's key set is immutable after
    /// construction, so reaching the leaf is itself the linearization
    /// point: no version validation is needed.
    pub fn contains(&self, k: &K) -> bool {
        let _g = flock_epoch::pin();
        if flock_core::in_thunk() {
            // Inside a thunk every load must be logged for replay.
            let (_, _, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            return unsafe { &*leaf }.find(k).is_some();
        }
        let (_, leaf) = self.search_acquire(k);
        // SAFETY: epoch-pinned.
        unsafe { &*leaf }.find(k).is_some()
    }

    /// Ordered range scan over `[lo, hi]` bounds. Each leaf batch is
    /// snapshot under a parent-lock version bracket (committed per-slot
    /// reads after bounded validation failures), so every reported entry
    /// was simultaneously present at some instant during the scan; see
    /// [`OrderedMap`] for the cross-entry contract.
    pub fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk from the pseudo-root.
        unsafe {
            let first = (*self.root).left.load_acquire();
            self.range_walk(self.root, first, lo, hi, &mut out);
        }
        out
    }

    /// In-order walk pruned by the routing keys (left subtree `< x`,
    /// right subtree `>= x`). `parent` is the internal node whose child
    /// cell yielded `n` — its lock owns `n`'s slots when `n` is a leaf.
    unsafe fn range_walk(
        &self,
        parent: *mut Node<K, V>,
        n: *mut Node<K, V>,
        lo: Bound<&K>,
        hi: Bound<&K>,
        out: &mut Vec<(K, V)>,
    ) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            // SAFETY: pinned per caller.
            let p = unsafe { &*parent };
            let snap = flock_core::read_validated(
                || {
                    let v0 = p.lock.version()?;
                    if p.removed.load() {
                        return None;
                    }
                    let snap: Vec<(K, V)> = node
                        .entries
                        .iter()
                        .map(|(k, s)| (k.clone(), s.read_acquire()))
                        .collect();
                    p.lock.validate(v0).then_some(snap)
                },
                || {
                    node.entries
                        .iter()
                        .map(|(k, s)| (k.clone(), s.read()))
                        .collect()
                },
            );
            out.extend(snap.into_iter().filter(|(k, _)| key_in_range(k, lo, hi)));
            return;
        }
        let x = node.key.as_ref().expect("non-root internal has a key");
        if key_above_lower(x, lo) {
            // Left subtree holds keys `< x`; skip it when they all fall
            // below the lower bound.
            let l = node.left.load_acquire();
            unsafe { self.range_walk(n, l, lo, hi, out) };
        }
        if key_below_upper(x, hi) {
            let r = node.right.load_acquire();
            unsafe { self.range_walk(n, r, lo, hi, out) };
        }
    }

    /// Native atomic update: replace the value stored under `k` in place —
    /// one idempotent slot store under the leaf's **parent** lock (the lock
    /// every copy-on-write replacement of this leaf takes), with the parent
    /// link validated under it. Returns `false` if `k` is absent. Readers
    /// see the old value or the new one, never absence or a third value —
    /// and the batch is not copied.
    pub fn update(&self, k: K, v: V) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(&k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.find(&k).is_none() {
                return false;
            }
            let (sp_p, sp_l) = (Sp(parent), Sp(leaf));
            let (k2, v2) = (k.clone(), v.clone());
            // SAFETY: epoch-pinned.
            let outcome = unsafe { &*parent }.lock.try_lock(move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_p.as_ref() };
                let l = unsafe { sp_l.as_ref() };
                let cell = p.child_for(&k2);
                if p.removed.load() || cell.load() != sp_l.ptr() {
                    return false; // leaf replaced under us: re-search
                }
                let Some(pos) = l.find(&k2) else { return false };
                l.entries[pos].1.set(v2.clone());
                true
            });
            match outcome {
                Some(true) => return true,
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy
            }
        }
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned walk.
        unsafe { Self::count_entries((*self.root).left.load()) }
    }

    /// Is the treap empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count_entries(n: *mut Node<K, V>) -> usize {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            node.entries.len()
        } else {
            unsafe {
                Self::count_entries(node.left.load()) + Self::count_entries(node.right.load())
            }
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(K, V)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.root).left.load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node<K, V>, out: &mut Vec<(K, V)>) {
        // SAFETY: pinned per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            out.extend(node.entries_snapshot());
        } else {
            unsafe {
                Self::walk(node.left.load(), out);
                Self::walk(node.right.load(), out);
            }
        }
    }

    /// Quiescent invariant check: BST routing, heap priority order, sorted
    /// leaf batches within routing bounds.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.root).left.load(), None, None, u64::MAX);
        }
    }

    unsafe fn check(n: *mut Node<K, V>, lo: Option<&K>, hi: Option<&K>, max_prio: u64) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        if node.kind == KIND_LEAF {
            let e = &node.entries;
            assert!(e.windows(2).all(|w| w[0].0 < w[1].0), "unsorted leaf batch");
            for (k, _) in e {
                if let Some(lo) = lo {
                    assert!(k >= lo, "leaf key below bound");
                }
                if let Some(hi) = hi {
                    assert!(k < hi, "leaf key above bound");
                }
            }
        } else {
            assert!(!node.removed.load(), "removed routing node reachable");
            assert!(node.prio <= max_prio, "treap heap order violated");
            let k = node.key.as_ref().expect("non-root internal has a key");
            if let Some(lo) = lo {
                assert!(k >= lo);
            }
            if let Some(hi) = hi {
                assert!(k <= hi);
            }
            unsafe {
                Self::check(node.left.load(), lo, Some(k), node.prio);
                Self::check(node.right.load(), Some(k), hi, node.prio);
            }
        }
    }
}

impl<K: Key, V: Value> Drop for LeafTreap<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free<K: Key, V: Value>(n: *mut Node<K, V>) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                if (*n).kind == KIND_INTERNAL {
                    free((*n).left.load());
                    free((*n).right.load());
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.root).left.load());
            flock_epoch::free_now(self.root);
        }
    }
}

impl<K: Key, V: Value> Map<K, V> for LeafTreap<K, V> {
    fn insert(&self, key: K, value: V) -> bool {
        LeafTreap::insert(self, key, value)
    }
    fn remove(&self, key: K) -> bool {
        LeafTreap::remove(self, key)
    }
    fn get(&self, key: K) -> Option<V> {
        LeafTreap::get(self, key)
    }
    fn contains(&self, key: K) -> bool {
        LeafTreap::contains(self, &key)
    }
    fn name(&self) -> &'static str {
        "leaftreap"
    }
    fn update(&self, key: K, value: V) -> bool {
        LeafTreap::update(self, key, value)
    }
    fn has_atomic_update(&self) -> bool {
        true
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.count.get())
    }
}

impl<K: Key, V: Value> OrderedMap<K, V> for LeafTreap<K, V> {
    fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(K, V)> {
        LeafTreap::range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            assert!(t.insert(5, 50));
            assert!(!t.insert(5, 51));
            assert!(t.insert(3, 30));
            assert!(t.insert(8, 80));
            assert_eq!(t.collect(), vec![(3, 30), (5, 50), (8, 80)]);
            assert!(t.remove(5));
            assert_eq!(t.get(5), None);
            assert_eq!(t.get(8), Some(80));
            t.check_invariants();
        });
    }

    #[test]
    fn splits_and_heap_order() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            // Sequential keys are the adversarial case for an unbalanced
            // tree; the treap must stay heap-ordered and balanced.
            for k in 0..512 {
                assert!(t.insert(k, k * 2));
            }
            assert_eq!(t.len(), 512);
            for k in 0..512 {
                assert_eq!(t.get(k), Some(k * 2));
            }
            t.check_invariants();
        });
    }

    #[test]
    fn expected_logarithmic_depth() {
        testutil::exclusive(expected_logarithmic_depth_body);
    }

    fn expected_logarithmic_depth_body() {
        let t: LeafTreap<u64, u64> = LeafTreap::new();
        for k in 0..4096 {
            t.insert(k, k);
        }
        unsafe fn depth(n: *mut Node<u64, u64>) -> usize {
            // SAFETY: quiescent per caller.
            let node = unsafe { &*n };
            if node.kind == KIND_LEAF {
                1
            } else {
                1 + unsafe { depth(node.left.load()).max(depth(node.right.load())) }
            }
        }
        // SAFETY: quiescent single-threaded test.
        let d = unsafe { depth((*t.root).left.load()) };
        // 4096/8 = 512+ leaves; a treap's expected depth is ~2·ln(512) ≈ 13.
        // A sorted-insert degenerate tree would be ~512. Allow generous slack.
        assert!(d < 64, "treap degenerated: depth {d}");
        t.check_invariants();
    }

    #[test]
    fn drain_and_refill() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            for k in 0..256 {
                assert!(t.insert(k, k));
            }
            for k in 0..256 {
                assert!(t.remove(k), "remove {k}");
            }
            assert!(t.is_empty());
            for k in (0..256).rev() {
                assert!(t.insert(k, k + 1));
            }
            assert_eq!(t.len(), 256);
            t.check_invariants();
        });
    }

    #[test]
    fn native_update_in_place() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            assert!(!t.update(1, 10), "update of an absent key refused");
            // Fill past one leaf so updates hit interior leaves too.
            for k in 0..64 {
                assert!(t.insert(k, k));
            }
            for k in 0..64 {
                assert!(t.update(k, k + 1000));
            }
            for k in 0..64 {
                assert_eq!(t.get(k), Some(k + 1000));
            }
            assert_eq!(t.len(), 64, "update must not change the count");
            assert!(t.remove(7));
            assert!(!t.update(7, 1));
            t.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            testutil::oracle_check(&t, 4_000, 256, 11);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t: LeafTreap<u64, u64> = LeafTreap::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }
}
