//! Leaf-oriented (external) unbalanced binary search tree with optimistic
//! fine-grained locking — the paper's `leaftree` (§7) and the subject of its
//! Figure 4 try-lock vs strict-lock comparison.
//!
//! All keys live in leaves; internal nodes carry routing keys (left subtree
//! `< key`, right subtree `>= key`). Searches are lock-free. An insert locks
//! the leaf's parent, validates, and swings the child pointer to a fresh
//! internal node with two leaves. A remove locks grandparent then parent
//! (ancestor-first, satisfying the decreasing-lock-order requirement for
//! lock-freedom), validates, and splices the parent out, replacing it with
//! the leaf's sibling.
//!
//! Both locking disciplines of the paper are provided: [`LeafTree::new`]
//! uses try-locks (restart on busy), [`LeafTree::new_strict`] uses strict
//! locks (wait for the holder — helping it first in lock-free mode).

use flock_api::Map;
use flock_core::{Lock, Mutable, Sp, UpdateOnce};
use flock_sync::Backoff;

const KIND_INTERNAL: u8 = 0;
const KIND_LEAF: u8 = 1;
/// Placeholder leaf for an empty tree (no key).
const KIND_EMPTY: u8 = 2;

struct Node {
    // Internal-node fields (unused in leaves).
    left: Mutable<*mut Node>,
    right: Mutable<*mut Node>,
    removed: UpdateOnce<bool>,
    lock: Lock,
    /// Routing key for internals; element key for leaves.
    key: u64,
    /// Element value (leaves only).
    value: u64,
    kind: u8,
    /// The root internal node routes everything left (acts as +inf).
    is_root: bool,
}

impl Node {
    fn internal(key: u64, left: *mut Node, right: *mut Node) -> Self {
        Self {
            left: Mutable::new(left),
            right: Mutable::new(right),
            removed: UpdateOnce::new(false),
            lock: Lock::new(),
            key,
            value: 0,
            kind: KIND_INTERNAL,
            is_root: false,
        }
    }

    fn leaf(key: u64, value: u64) -> Self {
        Self {
            left: Mutable::new(std::ptr::null_mut()),
            right: Mutable::new(std::ptr::null_mut()),
            removed: UpdateOnce::new(false),
            lock: Lock::new(),
            key,
            value,
            kind: KIND_LEAF,
            is_root: false,
        }
    }

    fn empty_leaf() -> Self {
        let mut n = Self::leaf(0, 0);
        n.kind = KIND_EMPTY;
        n
    }

    /// Which child does `k` route to?
    #[inline]
    fn child_for(&self, k: u64) -> &Mutable<*mut Node> {
        if self.is_root || k < self.key {
            &self.left
        } else {
            &self.right
        }
    }
}

/// Leaf-oriented unbalanced BST map.
pub struct LeafTree {
    root: *mut Node,
    strict: bool,
    label: &'static str,
}

// SAFETY: mutation via Flock locks + epoch reclamation; root immutable.
unsafe impl Send for LeafTree {}
unsafe impl Sync for LeafTree {}

impl Default for LeafTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Acquire `lock` with the structure's discipline and run `f`.
///
/// Strict locks always acquire (waiting/helping), so they can never report
/// busy; the try-lock discipline surfaces busy as `None`.
#[inline]
fn acquire<R, F>(lock: &Lock, strict: bool, f: F) -> Option<R>
where
    R: Send + 'static,
    F: Fn() -> R + Send + Sync + 'static,
{
    if strict {
        Some(lock.lock(f))
    } else {
        lock.try_lock(f)
    }
}

impl LeafTree {
    /// An empty tree using try-locks (the paper's preferred discipline).
    pub fn new() -> Self {
        Self::build(false, "leaftree")
    }

    /// An empty tree using strict locks (waits instead of restarting).
    pub fn new_strict() -> Self {
        Self::build(true, "leaftree-strict")
    }

    fn build(strict: bool, label: &'static str) -> Self {
        let empty = flock_epoch::alloc(Node::empty_leaf());
        let mut root = Node::internal(0, empty, std::ptr::null_mut());
        root.is_root = true;
        Self {
            root: flock_epoch::alloc(root),
            strict,
            label,
        }
    }

    /// Lock-free search: returns `(grandparent, parent, leaf)` for `k`.
    /// `grandparent` is null when `parent` is the root.
    fn search(&self, k: u64) -> (*mut Node, *mut Node, *mut Node) {
        let mut gparent = std::ptr::null_mut();
        let mut parent = self.root;
        // SAFETY: caller pinned; nodes epoch-reclaimed.
        let mut cur = unsafe { (*parent).child_for(k).load() };
        while unsafe { &*cur }.kind == KIND_INTERNAL {
            gparent = parent;
            parent = cur;
            cur = unsafe { &*cur }.child_for(k).load();
        }
        (gparent, parent, cur)
    }

    /// Insert; `false` if present.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (_, parent, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.kind == KIND_LEAF && leaf_ref.key == k {
                return false;
            }
            let (sp_parent, sp_leaf) = (Sp(parent), Sp(leaf));
            // SAFETY: epoch-pinned.
            let outcome = acquire(&unsafe { &*parent }.lock, self.strict, move || {
                // SAFETY: thunk runners hold epoch protection.
                let p = unsafe { sp_parent.as_ref() };
                let l = unsafe { sp_leaf.as_ref() };
                let cell = p.child_for(k);
                if p.removed.load() || cell.load() != sp_leaf.ptr() {
                    return false; // validate
                }
                if l.kind == KIND_EMPTY {
                    // Empty slot: replace placeholder with the new leaf.
                    let newl = flock_core::alloc(|| Node::leaf(k, v));
                    cell.store(newl);
                    // SAFETY: placeholder unlinked above; retired once.
                    unsafe { flock_core::retire(sp_leaf.ptr()) };
                    return true;
                }
                // Split: new internal with the old leaf and the new leaf.
                let lk = l.key;
                let newn = flock_core::alloc(|| {
                    let new_leaf = flock_epoch::alloc(Node::leaf(k, v));
                    if k < lk {
                        Node::internal(lk, new_leaf, sp_leaf.ptr())
                    } else {
                        Node::internal(k, sp_leaf.ptr(), new_leaf)
                    }
                });
                cell.store(newn);
                true
            });
            match outcome {
                Some(true) => return true,
                Some(false) => {}         // validation failed: re-search now
                None => backoff.snooze(), // parent lock busy (try-lock mode)
            }
        }
    }

    /// Remove; `false` if absent.
    pub fn remove(&self, k: u64) -> bool {
        let _g = flock_epoch::pin();
        let mut backoff = Backoff::new();
        loop {
            let (gparent, parent, leaf) = self.search(k);
            // SAFETY: epoch-pinned.
            let leaf_ref = unsafe { &*leaf };
            if leaf_ref.kind != KIND_LEAF || leaf_ref.key != k {
                return false;
            }
            let outcome = if gparent.is_null() {
                // Leaf hangs directly off the root: swap in a placeholder.
                let (sp_parent, sp_leaf) = (Sp(parent), Sp(leaf));
                // SAFETY: epoch-pinned; parent == root.
                acquire(&unsafe { &*parent }.lock, self.strict, move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_parent.as_ref() };
                    let cell = p.child_for(k);
                    if cell.load() != sp_leaf.ptr() {
                        return false;
                    }
                    let empty = flock_core::alloc(Node::empty_leaf);
                    cell.store(empty);
                    // SAFETY: unlinked above; idempotent retire.
                    unsafe { flock_core::retire(sp_leaf.ptr()) };
                    true
                })
                .map(Some)
            } else {
                let (sp_g, sp_p, sp_l) = (Sp(gparent), Sp(parent), Sp(leaf));
                let strict = self.strict;
                // Ancestor-first lock order: grandparent, then parent.
                // SAFETY: epoch-pinned.
                acquire(&unsafe { &*gparent }.lock, strict, move || {
                    // SAFETY: thunk runners hold epoch protection.
                    let p = unsafe { sp_p.as_ref() };
                    acquire(&p.lock, strict, move || {
                        // SAFETY: as above.
                        let g = unsafe { sp_g.as_ref() };
                        let p = unsafe { sp_p.as_ref() };
                        if g.removed.load() || p.removed.load() {
                            return false;
                        }
                        // Validate the two links and find which side of g
                        // the parent hangs on.
                        let gcell = if g.left.load() == sp_p.ptr() {
                            &g.left
                        } else if g.right.load() == sp_p.ptr() {
                            &g.right
                        } else {
                            return false;
                        };
                        let (pcell, sibling) = if p.left.load() == sp_l.ptr() {
                            (&p.left, p.right.load())
                        } else if p.right.load() == sp_l.ptr() {
                            (&p.right, p.left.load())
                        } else {
                            return false;
                        };
                        let _ = pcell;
                        p.removed.store(true);
                        gcell.store(sibling); // splice parent + leaf out
                        // SAFETY: both unlinked above; idempotent retires.
                        unsafe {
                            flock_core::retire(sp_p.ptr());
                            flock_core::retire(sp_l.ptr());
                        }
                        true
                    })
                })
            };
            match outcome {
                Some(Some(true)) => return true,
                Some(Some(false)) => {} // validation failed: re-search now
                _ => backoff.snooze(),  // an ancestor lock was busy
            }
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, k: u64) -> Option<u64> {
        let _g = flock_epoch::pin();
        let (_, _, leaf) = self.search(k);
        // SAFETY: epoch-pinned.
        let l = unsafe { &*leaf };
        (l.kind == KIND_LEAF && l.key == k).then_some(l.value)
    }

    /// Element count (O(n) walk; tests/diagnostics).
    pub fn len(&self) -> usize {
        let _g = flock_epoch::pin();
        // SAFETY: pinned; quiescent callers get exact counts.
        unsafe { Self::count((*self.root).left.load()) }
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    unsafe fn count(n: *mut Node) -> usize {
        // SAFETY: pinned walk per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_LEAF => 1,
            KIND_EMPTY => 0,
            _ => unsafe { Self::count(node.left.load()) + Self::count(node.right.load()) },
        }
    }

    /// Ordered snapshot — single-threaded use.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let _g = flock_epoch::pin();
        let mut out = Vec::new();
        // SAFETY: pinned walk.
        unsafe { Self::walk((*self.root).left.load(), &mut out) };
        out
    }

    unsafe fn walk(n: *mut Node, out: &mut Vec<(u64, u64)>) {
        // SAFETY: pinned walk per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_LEAF => out.push((node.key, node.value)),
            KIND_EMPTY => {}
            _ => unsafe {
                Self::walk(node.left.load(), out);
                Self::walk(node.right.load(), out);
            },
        }
    }

    /// Quiescent invariant check: BST routing holds, all leaves reachable on
    /// the correct side, no removed internals linked.
    pub fn check_invariants(&self) {
        // SAFETY: quiescent per contract.
        unsafe {
            Self::check((*self.root).left.load(), None, None);
        }
    }

    unsafe fn check(n: *mut Node, lo: Option<u64>, hi: Option<u64>) {
        // SAFETY: quiescent per caller.
        let node = unsafe { &*n };
        match node.kind {
            KIND_EMPTY => {}
            KIND_LEAF => {
                if let Some(lo) = lo {
                    assert!(node.key >= lo, "leaf key below routing bound");
                }
                if let Some(hi) = hi {
                    assert!(node.key < hi, "leaf key above routing bound");
                }
            }
            _ => {
                assert!(!node.removed.load(), "removed internal reachable");
                if let Some(lo) = lo {
                    assert!(node.key >= lo);
                }
                if let Some(hi) = hi {
                    assert!(node.key <= hi);
                }
                unsafe {
                    Self::check(node.left.load(), lo, Some(node.key));
                    Self::check(node.right.load(), Some(node.key), hi);
                }
            }
        }
    }
}

impl Drop for LeafTree {
    fn drop(&mut self) {
        // SAFETY: exclusive access; retired nodes belong to the collector.
        unsafe fn free(n: *mut Node) {
            if n.is_null() {
                return;
            }
            // SAFETY: exclusive teardown.
            unsafe {
                let node = &*n;
                if node.kind == KIND_INTERNAL {
                    free(node.left.load());
                    free(node.right.load());
                }
                flock_epoch::free_now(n);
            }
        }
        // SAFETY: exclusive access.
        unsafe {
            free((*self.root).left.load());
            flock_epoch::free_now(self.root);
        }
    }
}

impl Map<u64, u64> for LeafTree {
    fn insert(&self, key: u64, value: u64) -> bool {
        LeafTree::insert(self, key, value)
    }
    fn remove(&self, key: u64) -> bool {
        LeafTree::remove(self, key)
    }
    fn get(&self, key: u64) -> Option<u64> {
        LeafTree::get(self, key)
    }
    fn name(&self) -> &'static str {
        self.label
    }
    fn len_approx(&self) -> Option<usize> {
        Some(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flock_api::testing as testutil;

    #[test]
    fn basic_ops() {
        testutil::both_modes(|| {
            for t in [LeafTree::new(), LeafTree::new_strict()] {
                assert!(t.is_empty());
                assert!(t.insert(5, 50));
                assert!(!t.insert(5, 51));
                assert!(t.insert(3, 30));
                assert!(t.insert(8, 80));
                assert!(t.insert(1, 10));
                assert_eq!(t.collect(), vec![(1, 10), (3, 30), (5, 50), (8, 80)]);
                assert!(t.remove(3));
                assert!(!t.remove(3));
                assert_eq!(t.get(3), None);
                assert_eq!(t.get(8), Some(80));
                t.check_invariants();
            }
        });
    }

    #[test]
    fn remove_down_to_empty_and_refill() {
        testutil::both_modes(|| {
            let t = LeafTree::new();
            for k in 0..32 {
                assert!(t.insert(k, k));
            }
            for k in 0..32 {
                assert!(t.remove(k));
            }
            assert!(t.is_empty());
            for k in 0..32 {
                assert!(t.insert(k, k + 100));
            }
            assert_eq!(t.len(), 32);
            t.check_invariants();
        });
    }

    #[test]
    fn oracle() {
        testutil::both_modes(|| {
            let t = LeafTree::new();
            testutil::oracle_check(&t, 4_000, 256, 5);
            t.check_invariants();
        });
    }

    #[test]
    fn oracle_strict() {
        testutil::both_modes(|| {
            let t = LeafTree::new_strict();
            testutil::oracle_check(&t, 4_000, 256, 6);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned() {
        testutil::both_modes(|| {
            let t = LeafTree::new();
            testutil::partition_stress(&t, 4, 1_500);
            t.check_invariants();
        });
    }

    #[test]
    fn concurrent_partitioned_strict() {
        testutil::both_modes(|| {
            let t = LeafTree::new_strict();
            testutil::partition_stress(&t, 4, 1_000);
            t.check_invariants();
        });
    }
}
